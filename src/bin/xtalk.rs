//! `xtalk` — command-line front end to the crosstalk-mitigation toolchain.
//!
//! ```text
//! xtalk devices
//! xtalk characterize --device poughkeepsie [--policy all|onehop|binpacked] [--seqs N] [--shots N]
//! xtalk schedule <input.qasm> --device poughkeepsie [--scheduler xtalk|par|serial] [--omega W] [-o out.qasm]
//! xtalk run <input.qasm> --device poughkeepsie [--scheduler ...] [--shots N]
//! xtalk compare <input.qasm> --device poughkeepsie [--shots N]
//! xtalk swap-demo --device poughkeepsie --from 0 --to 13
//! ```
//!
//! Circuits are read and written as OpenQASM 2.0. Every verb drives the
//! typed pass pipeline ([`Compiler`]): non-hardware-compliant inputs are
//! lowered, placed and routed (greedy layout + shortest path SWAP
//! insertion) before scheduling, and intermediate artifacts are
//! content-addressed so `compare` shares the lower/place/route prefix
//! across its three schedulers.

use crosstalk_mitigation::charac::policy::TimeModel;
use crosstalk_mitigation::charac::{characterize, CharacterizationPolicy, RbConfig};
use crosstalk_mitigation::budget::Budget;
use crosstalk_mitigation::core::{
    Compiler, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use crosstalk_mitigation::device::Device;
use crosstalk_mitigation::ir::{qasm, Circuit};
use crosstalk_mitigation::obs;
use crosstalk_mitigation::fault;
use crosstalk_mitigation::serve::{Client, Json, RetryPolicy, ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "devices" => cmd_devices(),
        "characterize" => cmd_characterize(rest),
        "schedule" => cmd_schedule(rest),
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "swap-demo" => cmd_swap_demo(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "cancel" => cmd_cancel(rest),
        "profile" => cmd_profile(rest),
        "profile-check" => cmd_profile_check(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
xtalk — crosstalk characterization and adaptive scheduling (ASPLOS'20 reproduction)

USAGE:
    xtalk devices
    xtalk characterize --device <name> [--policy all|onehop|binpacked] [--seqs N] [--shots N] [--seed N]
    xtalk schedule <input.qasm> --device <name> [--scheduler xtalk|par|serial] [--omega W] [-o <out.qasm>]
    xtalk run <input.qasm> --device <name> [--scheduler xtalk|par|serial] [--omega W] [--shots N] [--seed N] [--threads N] [--budget-ms N] [--profile]
    xtalk compare <input.qasm> --device <name> [--omega W] [--shots N] [--seed N] [--threads N] [--profile]
    xtalk swap-demo --device <name> --from A --to B [--shots N]
    xtalk serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N] [--device-seed N] [--profile]
                [--stale-ttl N] [--faults SPEC] [--fault-seed N]
    xtalk profile <fig5|charac> [--shots N] [--seed N] [--threads N] [--text]
    xtalk profile-check <snapshot.json>
    xtalk submit <type> [input.qasm] [--addr HOST:PORT] [--device <name>] [--scheduler S] [--policy P]
                 [--shots N] [--seed N] [--threads N] [--omega W] [--from A --to B] [--ms N]
                 [--budget-ms N] [--job LABEL] [--deadline-ms N] [--retries N] [--retry-seed N]
    xtalk cancel <job-label> [--addr HOST:PORT] [--deadline-ms N]

SUBMIT TYPES: ping, stats, shutdown, advance_day, sleep, characterize, schedule, run, swap_demo
BUDGETS: --budget-ms is the server-side end-to-end deadline (queue wait included); an expired
    job returns `ok` with `budget_exhausted: true` plus exact progress (shots_completed, ...).
    --job labels the submission so `xtalk cancel <label>` can stop it mid-flight.
    --deadline-ms bounds this CLI's own connect/read/write I/O, independent of the budget.
DEVICES: poughkeepsie, johannesburg, boeblingen (20-qubit IBMQ models)
FAULT SPECS: comma-separated `point:action:prob[:ms]` with action panic|err|delay, e.g.
    --faults \"pool.job:panic:0.01,codec.read:err:0.05\" (or env XTALK_FAULTS / XTALK_FAULT_SEED);
    points: codec.read codec.write pool.spawn pool.job cache.lookup charac.run sim.batch";

/// Minimal flag parser: `--key value` pairs plus positional arguments.
/// Flags listed in [`BOOL_FLAGS`] take no value.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

/// Flags that are switches rather than `--key value` pairs.
const BOOL_FLAGS: &[&str] = &["profile", "text"];

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    pairs.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                pairs.push((key.to_string(), value.clone()));
            } else if a == "-o" {
                let value = it.next().ok_or("-o needs a path")?;
                pairs.push(("out".to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }
}

fn device_from(flags: &Flags) -> Result<Device, String> {
    let seed = flags.get_parse("seed", 7u64)?;
    match flags.get("device").unwrap_or("poughkeepsie") {
        "poughkeepsie" => Ok(Device::poughkeepsie(seed)),
        "johannesburg" => Ok(Device::johannesburg(seed)),
        "boeblingen" => Ok(Device::boeblingen(seed)),
        other => Err(format!("unknown device `{other}` (try `xtalk devices`)")),
    }
}

fn scheduler_from(flags: &Flags) -> Result<Box<dyn Scheduler>, String> {
    let omega = flags.get_parse("omega", 0.5f64)?;
    if !(0.0..=1.0).contains(&omega) {
        return Err(format!("--omega must be in [0,1], got {omega}"));
    }
    Ok(match flags.get("scheduler").unwrap_or("xtalk") {
        "xtalk" => Box::new(XtalkSched::new(omega)),
        "par" => Box::new(ParSched::new()),
        "serial" => Box::new(SerialSched::new()),
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

fn cmd_devices() -> Result<(), String> {
    for device in Device::all_ibmq(7) {
        println!("{device}");
        let high = device.crosstalk().high_unordered_pairs(3.0);
        println!("  high-crosstalk pairs (ground truth):");
        for (a, b) in high {
            println!(
                "    {a} | {b}  ({:.1}x / {:.1}x)",
                device.crosstalk().factor(a, b),
                device.crosstalk().factor(b, a)
            );
        }
    }
    Ok(())
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let device = device_from(&flags)?;
    let config = RbConfig {
        seqs_per_length: flags.get_parse("seqs", 5usize)?,
        shots: flags.get_parse("shots", 192u64)?,
        seed: flags.get_parse("seed", 7u64)?,
        ..Default::default()
    };
    let policy = match flags.get("policy").unwrap_or("binpacked") {
        "all" => CharacterizationPolicy::AllPairs,
        "onehop" => CharacterizationPolicy::OneHop,
        "binpacked" => CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
        other => return Err(format!("unknown policy `{other}`")),
    };
    println!("characterizing {} with policy `{}`…", device.name(), policy.name());
    let (charac, report) = characterize(&device, &policy, &config, &TimeModel::default());
    println!(
        "{} experiments over {} pairs ({} executions; {:.2} h at this scale)",
        report.num_experiments, report.num_pairs, report.executions, report.machine_time_hours
    );
    println!("detected high-crosstalk pairs (>3x):");
    for (a, b) in charac.high_pairs(3.0) {
        let ia = charac.independent(a);
        let cab = charac.conditional(a, b).unwrap_or(ia);
        println!("  {a} | {b}: E({a})={ia:.4}, E({a}|{b})={cab:.4}");
    }
    Ok(())
}

/// Reads a QASM file and runs the scheduler-independent pass prefix
/// (lower → place → route) through `compiler`, reporting any routing
/// that was needed.
fn load_and_prepare(path: &str, compiler: &Compiler<'_>) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let circuit = qasm::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let routed = compiler.prepare(&circuit).map_err(|e| e.to_string())?;
    if routed.swaps_inserted > 0 {
        println!(
            "(routed: {} SWAPs inserted, layout {:?})",
            routed.swaps_inserted,
            routed.initial_layout.mapping()
        );
    }
    Ok(routed.circuit.clone())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags.positional.first().ok_or("schedule needs an input .qasm file")?;
    let device = device_from(&flags)?;
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);
    let circuit = load_and_prepare(path, &compiler)?;
    let scheduler = scheduler_from(&flags)?;

    let artifact = compiler.schedule(&circuit, scheduler.as_ref()).map_err(|e| e.to_string())?;
    println!("{}", artifact.sched);
    if let Some(report) = &artifact.report {
        println!(
            "candidates: {}, serializations: {:?}, objective {:.4}",
            report.candidate_pairs, report.serializations, report.cost
        );
    }
    if let Some(out) = flags.get("out") {
        let realized = compiler.realize_export(&artifact).map_err(|e| e.to_string())?;
        std::fs::write(out, qasm::dump(&realized.circuit)).map_err(|e| e.to_string())?;
        println!("wrote barriered executable to {out}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.has("profile") {
        obs::set_enabled(true);
    }
    let path = flags.positional.first().ok_or("run needs an input .qasm file")?;
    let device = device_from(&flags)?;
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);
    // Preparation runs unbudgeted — a dead deadline still yields a valid
    // circuit so the schedule/run stages can answer honestly below.
    let circuit = load_and_prepare(path, &compiler)?;
    let scheduler = scheduler_from(&flags)?;
    let shots = flags.get_parse("shots", 2048u64)?;
    let seed = flags.get_parse("seed", 7u64)?;
    let threads = flags.get_parse("threads", 0usize)?;
    let budget = match flags.get("budget-ms") {
        Some(_) => {
            let ms: u64 = flags.get_parse("budget-ms", 0u64)?;
            Budget::with_deadline(Duration::from_millis(ms))
        }
        None => Budget::unlimited(),
    };

    // The budget spans scheduling *and* simulation: an exhausted search
    // falls back to a ParSched-equivalent schedule, an exhausted executor
    // stops at a batch boundary with exact shots_completed provenance.
    let compiler = compiler.with_budget(budget.clone());
    let artifact = compiler.schedule(&circuit, scheduler.as_ref()).map_err(|e| e.to_string())?;
    let search_truncated = artifact.report.as_ref().is_some_and(|r| !r.complete);
    if let Some(report) = artifact.report.as_ref().filter(|r| !r.complete) {
        println!(
            "(search truncated by budget after {} leaves{})",
            report.leaves,
            if report.fallback { "; using crosstalk-unaware fallback" } else { "" }
        );
    }
    let sched = &artifact.sched;
    let outcome = compiler.run(sched, shots, seed, threads).map_err(|e| e.to_string())?;
    let counts = &outcome.counts;
    println!(
        "{} | scheduler {} | makespan {} ns | {}/{} shots",
        device.name(),
        scheduler.name(),
        sched.makespan(),
        outcome.shots_completed,
        outcome.shots_requested
    );
    if !outcome.complete || search_truncated {
        let reason = budget
            .exhausted()
            .map(|r| r.as_str())
            .unwrap_or("deadline");
        println!("(budget exhausted: {reason}; counts cover the completed prefix of shots)");
    }
    let completed = outcome.shots_completed.max(1);
    let mut entries: Vec<(u64, u64)> = counts.iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (outcome, count) in entries.into_iter().take(16) {
        println!(
            "  {outcome:0width$b}: {count} ({:.3})",
            count as f64 / completed as f64,
            width = counts.num_bits()
        );
    }
    if flags.has("profile") {
        print!("{}", obs::snapshot().to_text());
    }
    Ok(())
}

fn cmd_swap_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let device = device_from(&flags)?;
    let ctx = SchedulerContext::from_ground_truth(&device);
    let from = flags.get_parse("from", 0u32)?;
    let to = flags.get_parse("to", 13u32)?;
    let shots = flags.get_parse("shots", 512u64)?;
    println!("SWAP benchmark {from} <-> {to} on {}", device.name());
    println!("{:<14} {:>12} {:>14}", "scheduler", "error rate", "duration (ns)");
    let compiler = Compiler::new(&device, ctx);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ];
    for s in &schedulers {
        let out = compiler
            .swap_bell_error(s.as_ref(), from, to, shots, 42, 1)
            .map_err(|e| e.to_string())?;
        println!("{:<14} {:>12.4} {:>14}", s.name(), out.error_rate, out.duration_ns);
    }
    Ok(())
}

/// Compiles one circuit with all three scheduling policies through a
/// *single* compiler, so the lower/place/route prefix is computed once
/// and served from the artifact cache for the second and third policies.
/// Reports per-policy makespan, search cost and a mitigated
/// cross-entropy error against the noise-free ideal, then the cache's
/// hit/miss counters proving the prefix was shared.
fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.has("profile") {
        obs::set_enabled(true);
    }
    let path = flags.positional.first().ok_or("compare needs an input .qasm file")?;
    let device = device_from(&flags)?;
    let ctx = SchedulerContext::from_ground_truth(&device);
    let omega = flags.get_parse("omega", 0.5f64)?;
    if !(0.0..=1.0).contains(&omega) {
        return Err(format!("--omega must be in [0,1], got {omega}"));
    }
    let shots = flags.get_parse("shots", 1024u64)?;
    let seed = flags.get_parse("seed", 7u64)?;

    let compiler = Compiler::new(&device, ctx);
    let circuit = load_and_prepare(path, &compiler)?;
    println!("comparing schedulers on {} ({shots} shots, seed {seed})", device.name());
    println!(
        "{:<14} {:>13} {:>12} {:>12}",
        "scheduler", "makespan (ns)", "search cost", "xent error"
    );
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(omega)),
    ];
    for s in &schedulers {
        let artifact = compiler.schedule(&circuit, s.as_ref()).map_err(|e| e.to_string())?;
        let xent = compiler
            .qaoa_cross_entropy(s.as_ref(), &circuit, shots, seed)
            .map_err(|e| e.to_string())?;
        let cost = artifact
            .report
            .as_ref()
            .map_or_else(|| "-".to_string(), |r| format!("{:.4}", r.cost));
        println!(
            "{:<14} {:>13} {:>12} {:>12.4}",
            s.name(),
            artifact.sched.makespan(),
            cost,
            xent
        );
    }
    let cache = compiler.cache();
    println!(
        "artifact cache: {} hits, {} misses, {} artifacts (lower/place/route shared across schedulers)",
        cache.hits(),
        cache.misses(),
        cache.len()
    );
    if flags.has("profile") {
        print!("{}", obs::snapshot().to_text());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let mut config = ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_string();
    }
    config.workers = flags.get_parse("workers", config.workers)?;
    config.queue_cap = flags.get_parse("queue", config.queue_cap)?;
    let timeout_ms: u64 = flags.get_parse("timeout-ms", config.job_timeout.as_millis() as u64)?;
    config.job_timeout = Duration::from_millis(timeout_ms.max(1));
    config.device_seed = flags.get_parse("device-seed", config.device_seed)?;
    config.profile = flags.has("profile");
    config.stale_ttl_epochs = flags.get_parse("stale-ttl", config.stale_ttl_epochs)?;

    // Fault injection: an explicit --faults wins over the environment.
    if let Some(spec) = flags.get("faults") {
        let seed = flags.get_parse("fault-seed", 0u64)?;
        fault::install_spec(spec, seed).map_err(|e| format!("--faults: {e}"))?;
    } else {
        fault::install_from_env().map_err(|e| format!("XTALK_FAULTS: {e}"))?;
    }
    if let Some(plan) = fault::active() {
        println!("fault injection active: {plan}");
    }

    let workers = config.effective_workers();
    let server = Server::start(config).map_err(|e| format!("cannot bind: {e}"))?;
    println!(
        "xtalk serve listening on {} ({} workers); stop with `xtalk submit shutdown --addr {}`",
        server.local_addr(),
        workers,
        server.local_addr()
    );
    // Runs until a client sends `{"type":"shutdown"}`.
    let summary = server.join();
    println!("{summary}");
    Ok(())
}

/// Runs a fixed profiling workload with the obs layer enabled and emits
/// the snapshot as JSON (or a text table with `--text`). The `fig5`
/// bench exercises every pipeline stage: characterization (per-bin SRB
/// cost), layout + routing, crosstalk-adaptive scheduling, and the
/// parallel simulator — so the export carries per-stage spans suitable
/// for `BENCH_*.json` trajectories.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let bench = flags.positional.first().map(String::as_str).unwrap_or("fig5");
    let seed = flags.get_parse("seed", 7u64)?;
    let shots = flags.get_parse("shots", 256u64)?;
    let threads = flags.get_parse("threads", 2usize)?;

    obs::set_enabled(true);
    obs::reset();
    match bench {
        "fig5" => {
            let device = Device::poughkeepsie(seed);
            let ctx = SchedulerContext::from_ground_truth(&device);

            // Characterization cost on a small planted-crosstalk line,
            // keeping the bench fast while exercising every bin kind.
            let charac_device = Device::line(6, seed.wrapping_add(2));
            let rb = RbConfig {
                lengths: vec![2, 8, 16],
                seqs_per_length: 2,
                shots: 64,
                seed,
            };
            let _ = characterize(
                &charac_device,
                &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
                &rb,
                &TimeModel::default(),
            );

            // Compile a hot-region GHZ through the pass pipeline (lower →
            // place → route → schedule), then simulate in parallel. Every
            // stage shows up both as its own span (layout, routing,
            // sched.*) and as a managed `pass.<id>` span with
            // `pass.cache.hit`/`miss` counters.
            let compiler = Compiler::new(&device, ctx);
            let circuit = crosstalk_mitigation::core::bench_circuits::ghz(
                20,
                &[5, 10, 11, 12, 15],
            );
            let routed = compiler.prepare(&circuit).map_err(|e| e.to_string())?;
            let artifact = compiler
                .schedule(&routed.circuit, &XtalkSched::new(0.5))
                .map_err(|e| e.to_string())?;
            let _ = compiler
                .run(&artifact.sched, shots, seed, threads)
                .map_err(|e| e.to_string())?;

            // The full Figure-5 style metric across the 11x hot spot.
            let _ = compiler
                .swap_bell_error(&XtalkSched::new(0.5), 0, 13, shots.min(128), seed, threads)
                .map_err(|e| e.to_string())?;
        }
        "charac" => {
            let device = Device::poughkeepsie(seed);
            let rb = RbConfig {
                seqs_per_length: 2,
                shots: shots.clamp(16, 128),
                seed,
                ..Default::default()
            };
            let _ = characterize(
                &device,
                &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
                &rb,
                &TimeModel::default(),
            );
        }
        other => return Err(format!("unknown profile bench `{other}` (try fig5, charac)")),
    }
    let snap = obs::snapshot();
    if flags.has("text") {
        print!("{}", snap.to_text());
    } else {
        println!("{}", snap.to_json());
    }
    Ok(())
}

/// Validates a `xtalk profile` JSON export: it must parse with the
/// server's own JSON codec and carry spans for every pipeline stage.
/// Used by CI as a smoke check.
fn cmd_profile_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("profile-check needs a JSON file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(text.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    if json.get("enabled").and_then(Json::as_bool) != Some(true) {
        return Err("profile snapshot was taken with profiling disabled".to_string());
    }
    let spans = json
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing `spans` array")?;
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    // `sim.run` matches both `sim.run_parallel` and `sim.run_budgeted`,
    // so budget-aware profiles validate with the same check. `pass.`
    // asserts the workload went through the managed pass pipeline.
    for required in ["layout", "routing", "sched.", "realize", "sim.run", "charac.", "pass."] {
        if !names.iter().any(|n| n.contains(required)) {
            return Err(format!("no span matching `{required}` in {names:?}"));
        }
    }
    let counters = json
        .get("counters")
        .and_then(Json::as_arr)
        .ok_or("missing `counters` array")?;
    if counters.is_empty() {
        return Err("no counters recorded".to_string());
    }
    println!("profile ok: {} spans, {} counters", names.len(), counters.len());
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let kind = flags
        .positional
        .first()
        .map(String::as_str)
        .ok_or("submit needs a request type (e.g. `xtalk submit run circuit.qasm`)")?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");

    let mut fields: Vec<(&str, Json)> = vec![("type", kind.into())];
    if let Some(path) = flags.positional.get(1) {
        let qasm = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        fields.push(("qasm", qasm.into()));
    }
    // Forward every recognised option verbatim; the server applies its
    // own defaults for anything omitted.
    for key in ["device", "scheduler", "policy"] {
        if let Some(v) = flags.get(key) {
            fields.push((key, v.into()));
        }
    }
    for key in ["shots", "seed", "threads", "seqs", "from", "to", "ms"] {
        if let Some(v) = flags.get(key) {
            let n: u64 = v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`"))?;
            fields.push((key, n.into()));
        }
    }
    if let Some(v) = flags.get("omega") {
        let w: f64 = v.parse().map_err(|_| format!("--omega: cannot parse `{v}`"))?;
        fields.push(("omega", w.into()));
    }
    // Server-side budget: the wire field is `deadline_ms` (pinned at
    // arrival, so queue wait counts against it); `job` labels the
    // submission for `xtalk cancel`.
    if let Some(v) = flags.get("budget-ms") {
        let n: u64 = v.parse().map_err(|_| format!("--budget-ms: cannot parse `{v}`"))?;
        fields.push(("deadline_ms", n.into()));
    }
    if let Some(v) = flags.get("job") {
        fields.push(("job", v.into()));
    }
    let request = Json::Obj(
        fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    );

    // The deadline bounds the connect and both socket directions, so a
    // stalled server can never hang the CLI; retries ride the client's
    // seeded decorrelated-jitter backoff.
    let deadline = Duration::from_millis(flags.get_parse("deadline-ms", 120_000u64)?.max(1));
    let policy = RetryPolicy {
        max_attempts: flags.get_parse("retries", 5u32)?.max(1),
        seed: flags.get_parse("retry-seed", 0u64)?,
        ..RetryPolicy::default()
    };
    let mut client =
        Client::connect_with_deadline(addr, deadline).map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client
        .request_with_retry(&request, &policy)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("{}", response.dump());
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string())
    }
}

/// Cancels an in-flight (or still-queued) job by its `--job` label. The
/// job's worker observes the tripped token at its next checkpoint and
/// answers the original submitter with a flagged partial result.
fn cmd_cancel(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let label = flags
        .positional
        .first()
        .ok_or("cancel needs a job label (the submit's --job value)")?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let deadline = Duration::from_millis(flags.get_parse("deadline-ms", 10_000u64)?.max(1));
    let mut client =
        Client::connect_with_deadline(addr, deadline).map_err(|e| format!("connect {addr}: {e}"))?;
    let cancelled = client.cancel(label).map_err(|e| format!("cancel failed: {e}"))?;
    if cancelled {
        println!("cancelled job `{label}`");
        Ok(())
    } else {
        Err(format!("no in-flight job labelled `{label}`"))
    }
}
