//! # crosstalk-mitigation
//!
//! A reproduction of *"Software Mitigation of Crosstalk on Noisy
//! Intermediate-Scale Quantum Computers"* (Murali, McKay, Martonosi,
//! Javadi-Abhari — ASPLOS 2020) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`ir`] — circuit IR (gates, circuits, dependency DAGs, schedules).
//! * [`device`] — hardware models of the three 20-qubit IBMQ systems
//!   (topology, calibration, ground-truth crosstalk).
//! * [`clifford`] — stabilizer formalism used by randomized benchmarking.
//! * [`sim`] — noisy trajectory simulator standing in for real hardware.
//! * [`smt`] — the optimizing constraint solver used by the scheduler.
//! * [`charac`] — fast crosstalk characterization (paper Section 5).
//! * [`core`] — the crosstalk-adaptive scheduler and baselines
//!   (paper Sections 6–7), plus the [`core::Compiler`] entry point over
//!   the managed pass pipeline.
//! * [`pass`] — the typed pass manager: content hashing (FNV-1a over
//!   structure), the epoch-keyed artifact cache, and the uniform
//!   span/fault/budget harness every compile pass runs under.
//! * [`serve`] — a multi-threaded TCP job service wrapping the
//!   characterize → schedule → run pipeline (line-delimited JSON,
//!   bounded worker pool, drift-aware characterization cache).
//! * [`obs`] — opt-in tracing spans, counters and latency histograms
//!   used by `xtalk run --profile` / `xtalk profile`.
//! * [`budget`] — cooperative execution budgets (wall-clock deadline +
//!   cancel token + work quota) threaded through the solver, simulator,
//!   characterization and serve layers for end-to-end deadlines with
//!   best-effort partial results.
//! * [`fault`] — deterministic fault injection: seeded decision streams
//!   behind named points (`codec.read`, `pool.job`, `charac.run`,
//!   `sim.batch`, ...) driving the serve stack's chaos tests and the
//!   `xtalk serve --faults` flag.
//!
//! # Quickstart
//!
//! ```
//! use crosstalk_mitigation::device::Device;
//! use crosstalk_mitigation::core::{Compiler, SchedulerContext, XtalkSched};
//! use crosstalk_mitigation::core::routing::swap_circuit_between;
//!
//! // A 20-qubit IBMQ Poughkeepsie model with ground-truth crosstalk.
//! let device = Device::poughkeepsie(7);
//!
//! // A SWAP program routing qubit 0 next to qubit 13.
//! let circuit = swap_circuit_between(device.topology(), 0, 13).unwrap();
//!
//! // Compile it through the managed pass pipeline with perfect
//! // characterization knowledge; repeat compiles hit the artifact cache.
//! let ctx = SchedulerContext::from_ground_truth(&device);
//! let compiler = Compiler::new(&device, ctx);
//! let artifact = compiler.compile(&circuit, &XtalkSched::new(0.5)).unwrap();
//! assert!(artifact.sched.makespan() > 0);
//! ```

pub use xtalk_budget as budget;
pub use xtalk_charac as charac;
pub use xtalk_clifford as clifford;
pub use xtalk_fault as fault;
pub use xtalk_core as core;
pub use xtalk_device as device;
pub use xtalk_ir as ir;
pub use xtalk_obs as obs;
pub use xtalk_pass as pass;
pub use xtalk_serve as serve;
pub use xtalk_sim as sim;
pub use xtalk_smt as smt;
