#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run locally before pushing;
# CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== observability suites =="
# The toggle is process-global, so these live in dedicated test binaries:
# determinism with profiling ON, overhead budget with profiling OFF.
cargo test -q -p xtalk-obs
cargo test -q -p xtalk-sim --test determinism_profile
cargo test -q -p xtalk-sim --test obs_overhead
cargo test -q -p xtalk-serve --test json_props
cargo test -q -p xtalk-charac --test fit_regression

echo "== xtalk profile smoke =="
# End-to-end: the profiled pipeline must emit a snapshot that parses as
# JSON and covers every instrumented stage.
snapshot="$(mktemp)"
target/release/xtalk profile fig5 --seed 3 --shots 128 --threads 2 > "$snapshot"
target/release/xtalk profile-check "$snapshot"
rm -f "$snapshot"

echo "== chaos suite =="
# Fault plans are process-global; the suite serializes internally.
cargo test -q -p xtalk-serve --test chaos

echo "== xtalk serve --faults smoke =="
# End-to-end chaos: a server with 2% worker deaths and 5% torn codec
# reads (fixed seed — deterministic) must answer every retried submit
# and shut down with a clean summary.
serve_log="$(mktemp)"
target/release/xtalk serve --addr 127.0.0.1:0 --workers 2 \
    --faults "pool.job:panic:0.02,codec.read:err:0.05" --fault-seed 42 \
    > "$serve_log" &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "listening on" "$serve_log" && break
    sleep 0.1
done
addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$serve_log" | head -n1)"
[ -n "$addr" ] || { echo "serve did not report an address"; cat "$serve_log"; exit 1; }
for i in 1 2 3 4 5 6; do
    target/release/xtalk submit sleep --ms 5 --addr "$addr" \
        --deadline-ms 20000 --retries 15 --retry-seed "$i" > /dev/null
done
target/release/xtalk submit stats --addr "$addr" --deadline-ms 20000 --retries 15 > /dev/null
target/release/xtalk submit shutdown --addr "$addr" --deadline-ms 20000 --retries 15 > /dev/null
wait "$serve_pid"
grep -q "served .* requests" "$serve_log" || { echo "no shutdown summary"; cat "$serve_log"; exit 1; }
rm -f "$serve_log"

echo "ci: all green"
