#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run locally before pushing;
# CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== observability suites =="
# The toggle is process-global, so these live in dedicated test binaries:
# determinism with profiling ON, overhead budget with profiling OFF.
cargo test -q -p xtalk-obs
cargo test -q -p xtalk-sim --test determinism_profile
cargo test -q -p xtalk-sim --test obs_overhead
cargo test -q -p xtalk-serve --test json_props
cargo test -q -p xtalk-charac --test fit_regression

echo "== pass-manager & artifact-cache suites =="
# Content-hash properties, golden determinism against the pre-refactor
# compile flow, and the obs-verified zero-redundant-prefix acceptance
# test (the last owns the process-global obs toggle, hence its own
# binary).
cargo test -q -p xtalk-pass
cargo test -q -p xtalk-core --test pass_determinism
cargo test -q -p xtalk-core --test compare_cache_obs

echo "== xtalk compare cache smoke =="
# The compare verb compiles one circuit under all three schedulers over
# a shared artifact cache: the scheduler-independent prefix must be
# reused (fixed hit/miss ledger) and the whole report must be
# bit-identical across repeated runs.
compare_qasm="$(mktemp --suffix=.qasm)"
printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n' > "$compare_qasm"
compare_a="$(target/release/xtalk compare "$compare_qasm" --device poughkeepsie)"
compare_b="$(target/release/xtalk compare "$compare_qasm" --device poughkeepsie)"
[ "$compare_a" = "$compare_b" ] || { echo "compare is nondeterministic across runs"; exit 1; }
echo "$compare_a" | grep -q "artifact cache: 3 hits, 6 misses" \
    || { echo "compare did not share the pass prefix:"; echo "$compare_a"; exit 1; }
rm -f "$compare_qasm"

echo "== xtalk profile smoke =="
# End-to-end: the profiled pipeline must emit a snapshot that parses as
# JSON and covers every instrumented stage.
snapshot="$(mktemp)"
target/release/xtalk profile fig5 --seed 3 --shots 128 --threads 2 > "$snapshot"
target/release/xtalk profile-check "$snapshot"
rm -f "$snapshot"

echo "== chaos suite =="
# Fault plans are process-global; the suite serializes internally.
cargo test -q -p xtalk-serve --test chaos

echo "== budget & fault-grammar suites =="
# End-to-end deadlines: cooperative cancellation, admission control,
# prefix-deterministic partials; plus the fault-spec grammar properties.
cargo test -q -p xtalk-serve --test budget_chaos
cargo test -q -p xtalk-fault --test spec_props

echo "== xtalk serve --faults smoke =="
# End-to-end chaos: a server with 2% worker deaths and 5% torn codec
# reads (fixed seed — deterministic) must answer every retried submit
# and shut down with a clean summary.
serve_log="$(mktemp)"
target/release/xtalk serve --addr 127.0.0.1:0 --workers 2 \
    --faults "pool.job:panic:0.02,codec.read:err:0.05" --fault-seed 42 \
    > "$serve_log" &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q "listening on" "$serve_log" && break
    sleep 0.1
done
addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$serve_log" | head -n1)"
[ -n "$addr" ] || { echo "serve did not report an address"; cat "$serve_log"; exit 1; }
for i in 1 2 3 4 5 6; do
    target/release/xtalk submit sleep --ms 5 --addr "$addr" \
        --deadline-ms 20000 --retries 15 --retry-seed "$i" > /dev/null
done
target/release/xtalk submit stats --addr "$addr" --deadline-ms 20000 --retries 15 > /dev/null
target/release/xtalk submit shutdown --addr "$addr" --deadline-ms 20000 --retries 15 > /dev/null
wait "$serve_pid"
grep -q "served .* requests" "$serve_log" || { echo "no shutdown summary"; cat "$serve_log"; exit 1; }
rm -f "$serve_log"

echo "== budget e2e smoke =="
# End-to-end deadlines: under an injected 450ms-per-batch executor stall,
# a 400ms budget yields a flagged partial (exactly one 64-shot batch),
# then an ample budget succeeds in full on the same undrained pool.
budget_log="$(mktemp)"
bell_qasm="$(mktemp --suffix=.qasm)"
printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n' > "$bell_qasm"
target/release/xtalk serve --addr 127.0.0.1:0 --workers 1 \
    --faults "sim.batch:delay:1.0:450" --fault-seed 1 \
    > "$budget_log" &
budget_pid=$!
for _ in $(seq 1 50); do
    grep -q "listening on" "$budget_log" && break
    sleep 0.1
done
addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$budget_log" | head -n1)"
[ -n "$addr" ] || { echo "serve did not report an address"; cat "$budget_log"; exit 1; }
partial="$(target/release/xtalk submit run "$bell_qasm" --addr "$addr" \
    --scheduler par --policy truth --shots 256 --seed 7 --threads 1 \
    --budget-ms 400 --deadline-ms 20000)"
echo "$partial" | grep -q '"budget_exhausted":true' \
    || { echo "tiny budget did not yield a flagged partial: $partial"; exit 1; }
echo "$partial" | grep -q '"shots_completed":64' \
    || { echo "partial is not the expected one-batch prefix: $partial"; exit 1; }
full="$(target/release/xtalk submit run "$bell_qasm" --addr "$addr" \
    --scheduler par --policy truth --shots 64 --seed 7 --threads 1 \
    --budget-ms 60000 --deadline-ms 20000)"
if echo "$full" | grep -q '"budget_exhausted"'; then
    echo "ample budget was wrongly truncated: $full"; exit 1
fi
echo "$full" | grep -q '"shots_completed":64' \
    || { echo "ample budget did not complete: $full"; exit 1; }
target/release/xtalk submit shutdown --addr "$addr" --deadline-ms 20000 > /dev/null
wait "$budget_pid"
grep -q "1 partial" "$budget_log" || { echo "summary missing the partial tally"; cat "$budget_log"; exit 1; }
rm -f "$budget_log" "$bell_qasm"

echo "ci: all green"
