#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run locally before pushing;
# CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== observability suites =="
# The toggle is process-global, so these live in dedicated test binaries:
# determinism with profiling ON, overhead budget with profiling OFF.
cargo test -q -p xtalk-obs
cargo test -q -p xtalk-sim --test determinism_profile
cargo test -q -p xtalk-sim --test obs_overhead
cargo test -q -p xtalk-serve --test json_props
cargo test -q -p xtalk-charac --test fit_regression

echo "== xtalk profile smoke =="
# End-to-end: the profiled pipeline must emit a snapshot that parses as
# JSON and covers every instrumented stage.
snapshot="$(mktemp)"
target/release/xtalk profile fig5 --seed 3 --shots 128 --threads 2 > "$snapshot"
target/release/xtalk profile-check "$snapshot"
rm -f "$snapshot"

echo "ci: all green"
