#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run locally before pushing;
# CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
