//! Hidden Shift sensitivity to the crosstalk weight factor, with and
//! without redundant CNOTs (miniature of the paper's Figure 9).
//!
//! ```text
//! cargo run --release --example hidden_shift
//! ```

use crosstalk_mitigation::core::bench_circuits::hidden_shift;
use crosstalk_mitigation::core::{Compiler, SchedulerContext, XtalkSched};
use crosstalk_mitigation::device::Device;

fn main() {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);
    let region = [5u32, 10, 11, 12];
    let shift = 0b1010u8;

    for redundant in [false, true] {
        let circuit = hidden_shift(20, &region, shift, redundant);
        println!(
            "\nHidden Shift on {region:?}, shift {shift:#06b}, redundant CNOTs: {redundant} \
             ({} CNOTs)",
            circuit.count_gate("cx")
        );
        println!("{:>6} {:>12}", "omega", "error rate");
        for omega in [0.0, 0.2, 0.35, 0.5, 0.75, 1.0] {
            let err = compiler
                .hidden_shift_error(&XtalkSched::new(omega), &circuit, shift as u64, 2048, 9)
                .expect("scheduling succeeds");
            println!("{omega:>6.2} {err:>12.4}");
        }
    }

    println!(
        "\nWith redundant CNOTs the benchmark spends much longer in overlapping \
         windows, so moderate ω already beats ω = 0 — the paper's Figure 9b."
    );
}
