//! Characterize a device's crosstalk with each of the paper's policies
//! and compare cost vs. what they find.
//!
//! ```text
//! cargo run --release --example characterize_device
//! ```

use crosstalk_mitigation::charac::policy::TimeModel;
use crosstalk_mitigation::charac::{characterize, CharacterizationPolicy, RbConfig};
use crosstalk_mitigation::device::Device;

fn main() {
    let device = Device::poughkeepsie(7);
    println!("characterizing {device}\n");

    // Scaled-down RB so this example runs in seconds; the machine-time
    // column is nevertheless reported at the paper's full scale
    // (100 sequences x 1024 trials per experiment).
    let config = RbConfig { seqs_per_length: 3, shots: 96, ..Default::default() };
    let full_scale_executions = RbConfig::paper_scale().executions();
    let time_model = TimeModel::default();

    let truth: Vec<_> = device.crosstalk().high_unordered_pairs(3.0);
    println!("ground truth: {} high-crosstalk pairs", truth.len());
    for (a, b) in &truth {
        println!("  {a} | {b}");
    }

    let policies = [
        CharacterizationPolicy::OneHop,
        CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
    ];
    for policy in policies {
        let (charac, report) = characterize(&device, &policy, &config, &time_model);
        let found = charac.high_pairs(3.0);
        let hit = truth.iter().filter(|p| found.contains(p)).count();
        println!(
            "\n{:<32} experiments: {:>3}   machine time at paper scale: {:>5.2} h",
            report.policy,
            report.num_experiments,
            time_model.hours(report.num_experiments, full_scale_executions),
        );
        println!(
            "  detected {}/{} planted pairs ({} measured conditionals)",
            hit,
            truth.len(),
            charac.num_conditional()
        );
        for (a, b) in &found {
            let marker = if truth.contains(&(*a, *b)) { "true positive" } else { "spurious" };
            println!("    {a} | {b}   [{marker}]");
        }
    }

    println!(
        "\nOnce yesterday's high pairs are known, daily runs use the \
         HighCrosstalkOnly policy, reducing machine time to minutes."
    );
}
