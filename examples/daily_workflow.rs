//! The operational loop the paper proposes: once the expensive 1-hop
//! characterization has been done, each day re-measures only the known
//! high-crosstalk pairs (minutes of machine time), refreshes the
//! scheduler's inputs, and compiles the day's workloads against them.
//!
//! ```text
//! cargo run --release --example daily_workflow
//! ```

use crosstalk_mitigation::charac::policy::TimeModel;
use crosstalk_mitigation::charac::{characterize, CharacterizationPolicy, RbConfig};
use crosstalk_mitigation::core::{Compiler, ParSched, SchedulerContext, XtalkSched};
use crosstalk_mitigation::device::Device;

fn main() {
    let base = Device::poughkeepsie(7);
    let rb = RbConfig { seqs_per_length: 4, shots: 128, ..Default::default() };
    let tm = TimeModel::default();

    // Day 0: the full (bin-packed, 1-hop) sweep discovers the hot pairs.
    println!("day 0: full one-hop sweep…");
    let (initial, report) = characterize(
        &base,
        &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
        &rb,
        &tm,
    );
    let known = initial.high_pairs(3.0);
    println!(
        "  {} experiments; {} high pairs found: {:?}\n",
        report.num_experiments,
        known.len(),
        known.iter().map(|(a, b)| format!("{a}|{b}")).collect::<Vec<_>>()
    );

    println!(
        "{:<5} {:>12} {:>14} {:>12} {:>12} {:>8}",
        "day", "experiments", "machine (min)", "par error", "xtalk error", "gain"
    );
    for day in 1..=5u32 {
        let device = base.on_day(day);
        // Daily refresh: only yesterday's hot pairs.
        let policy = CharacterizationPolicy::HighCrosstalkOnly {
            k_hops: 2,
            known_pairs: known.clone(),
        };
        let (charac, report) = characterize(&device, &policy, &rb, &tm);
        let ctx = SchedulerContext::new(&device, charac);

        // Compile & run the day's workload with the fresh estimates. A
        // per-day compiler mirrors the epoch-keyed serving cache: a new
        // calibration day means a new artifact space.
        let compiler = Compiler::new(&device, ctx);
        let par = compiler.swap_bell_error(&ParSched::new(), 0, 13, 384, u64::from(day), 1).unwrap();
        let xt = compiler
            .swap_bell_error(&XtalkSched::new(0.5), 0, 13, 384, u64::from(day), 1)
            .unwrap();
        println!(
            "{:<5} {:>12} {:>14.1} {:>12.4} {:>12.4} {:>7.2}x",
            day,
            report.num_experiments,
            // Machine time at the paper's full RB scale.
            tm.hours(report.num_experiments, RbConfig::paper_scale().executions()) * 60.0,
            par.error_rate,
            xt.error_rate,
            par.error_rate / xt.error_rate.max(1e-4)
        );
    }

    println!(
        "\nDaily refresh costs ~10 minutes of machine time and keeps the\n\
         scheduler's conditional-error inputs current as the hardware drifts."
    );
}
