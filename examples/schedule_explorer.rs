//! Inspect the schedules the three algorithms produce for the paper's
//! Figure 6 case study (SWAP path 0 ↔ 13 on Poughkeepsie), including the
//! barriered executable and its OpenQASM form.
//!
//! ```text
//! cargo run --release --example schedule_explorer
//! ```

use crosstalk_mitigation::core::routing::swap_benchmark;
use crosstalk_mitigation::core::{
    to_barriered_circuit, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use crosstalk_mitigation::device::Device;
use crosstalk_mitigation::ir::qasm;

fn main() {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let bench = swap_benchmark(device.topology(), 0, 13).expect("path exists");
    println!(
        "SWAP path {:?}, Bell pair on ({}, {})",
        bench.path, bench.bell_pair.0, bench.bell_pair.1
    );

    for (name, sched) in [
        ("SerialSched", SerialSched::new().schedule(&bench.circuit, &ctx).unwrap()),
        ("ParSched", ParSched::new().schedule(&bench.circuit, &ctx).unwrap()),
    ] {
        println!("\n=== {name} (makespan {} ns) ===", sched.makespan());
        println!("{sched}");
    }

    let xtalk = XtalkSched::new(0.5);
    let (sched, report) = xtalk
        .schedule_with_report(&bench.circuit, &ctx)
        .expect("scheduling succeeds");
    println!(
        "\n=== XtalkSched ω=0.5 (makespan {} ns, {} candidate pairs, {} leaves) ===",
        sched.makespan(),
        report.candidate_pairs,
        report.leaves
    );
    println!("{sched}");
    println!("serializations chosen: {:?}", report.serializations);

    let barriered = to_barriered_circuit(&sched, &report.serializations);
    println!("\nexecutable with barriers:\n{barriered}");
    println!("OpenQASM 2.0:\n{}", qasm::dump(&barriered));
}
