//! Talking to the `xtalk serve` job service from Rust.
//!
//! Starts an in-process server on an ephemeral port (a real deployment
//! would run `xtalk serve` separately and connect by address), submits a
//! Bell circuit twice to show the characterization cache, drifts the
//! calibration day, and reads the metrics.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use crosstalk_mitigation::serve::json::obj;
use crosstalk_mitigation::serve::{Client, Json, ServeConfig, Server};

const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

fn main() -> std::io::Result<()> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(), // ephemeral port
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(config)?;
    println!("server on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())?;

    // A run job: schedule with XtalkSched, execute 1024 trajectories.
    // Fixed seed => bit-identical counts on every invocation.
    let resp = client.run_qasm(BELL, "poughkeepsie", "xtalk", 1024, 7)?;
    println!("\nrun #1: {}", resp.dump());

    // The same device/policy/seed again: the scheduler's characterization
    // now comes from the cache ("cached":true in the response).
    let resp = client.run_qasm(BELL, "poughkeepsie", "xtalk", 1024, 7)?;
    println!("run #2 (cache hit): {}", resp.dump());

    // Advance the simulated calibration day: the fleet drifts and the
    // characterization cache is invalidated.
    let epoch = client.advance_day()?;
    let resp = client.run_qasm(BELL, "poughkeepsie", "xtalk", 1024, 7)?;
    println!("run #3 (epoch {epoch}, cache invalidated): {}", resp.dump());

    // A schedule-only request, with explicit options.
    let resp = client.request(&obj([
        ("type", "schedule".into()),
        ("qasm", BELL.into()),
        ("device", "boeblingen".into()),
        ("scheduler", "xtalk".into()),
        ("omega", 0.5.into()),
    ]))?;
    println!("\nschedule: {}", resp.dump());

    let stats = client.stats()?;
    println!("\nstats: {}", stats.dump());
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));

    client.shutdown()?;
    println!("\n{}", server.join());
    Ok(())
}
