//! The full compiler pipeline on an abstract (unmapped) program: lower to
//! the native gate set, place and route onto the device, schedule with
//! each algorithm, and execute — the complete Figure-2 toolflow of the
//! paper.
//!
//! ```text
//! cargo run --release --example transpile_and_run
//! ```

use crosstalk_mitigation::core::{
    Compiler, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use crosstalk_mitigation::device::Device;
use crosstalk_mitigation::ir::Circuit;
use crosstalk_mitigation::sim::{ideal, metrics};

fn main() {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);

    // An abstract 6-qubit program with all-to-all-ish interactions: a GHZ
    // ladder plus long-range CNOTs that force routing.
    let mut program = Circuit::new(6, 6);
    program.h(0);
    for q in 0..5u32 {
        program.cx(q, q + 1);
    }
    program.cx(0, 5).cz(1, 4).t(2).swap(2, 3);
    program.measure_all();

    println!("abstract program: {} instructions, depth {}", program.len(), program.depth());

    // 1–2. Lower to the IBMQ native basis, then place and route onto the
    //      20-qubit device — the scheduler-independent pass prefix,
    //      cached by content so later schedulers reuse it.
    let native = compiler.lower(&program).expect("lowering is total");
    println!(
        "lowered: {} instructions ({} CNOTs)",
        native.circuit.len(),
        native.circuit.count_gate("cx")
    );
    let routed = compiler.prepare(&program).expect("device connected");
    println!(
        "routed: {} instructions, {} SWAPs inserted, initial layout {:?}",
        routed.circuit.len(),
        routed.swaps_inserted,
        routed.initial_layout.mapping()
    );

    // 3. Schedule and execute with each algorithm; score against the
    //    ideal distribution of the abstract program (routing preserves
    //    the classical-bit semantics, so the reference is unchanged).
    let reference = ideal::distribution(&program);
    println!("\n{:<14} {:>10} {:>16} {:>14}", "scheduler", "TVD", "cross entropy", "makespan (ns)");
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ];
    for sched in &schedulers {
        let artifact =
            compiler.schedule(&routed.circuit, sched.as_ref()).expect("compliant after routing");
        let outcome = compiler.run(&artifact.sched, 4096, 11, 1).expect("unbudgeted run");
        let dist = outcome.counts.distribution();
        let tvd = metrics::total_variation(&reference, &dist);
        let ce = metrics::cross_entropy(&reference, &dist, 0.5 / 4096.0);
        println!(
            "{:<14} {:>10.4} {:>16.4} {:>14}",
            sched.name(),
            tvd,
            ce,
            artifact.sched.makespan()
        );
    }

    println!(
        "\nEvery stage is a cached pass: swap the router, re-characterize, or\n\
         sweep omega without recomputing the rest of the pipeline\n\
         (this run: {} cache hits, {} misses).",
        compiler.cache().hits(),
        compiler.cache().misses()
    );
}
