//! Quickstart: route a SWAP path across IBMQ Poughkeepsie's worst
//! crosstalk hot spot and compare the three schedulers on real
//! (simulated) hardware runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crosstalk_mitigation::core::{
    Compiler, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use crosstalk_mitigation::device::Device;

fn main() {
    // A 20-qubit Poughkeepsie model; its ground-truth crosstalk includes
    // the paper's 11x pair CX10,15 | CX11,12 and a low-coherence qubit 10.
    let device = Device::poughkeepsie(7);
    println!("device: {device}");

    // Perfect characterization knowledge (see the `characterize_device`
    // example for the measured version). One compiler serves all three
    // schedulers, so the tomography circuits' lower/place/route prefix is
    // compiled once and cached.
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);

    // The paper's Figure 6 case study: communicate qubit 0 with qubit 13.
    let (a, b) = (0, 13);
    println!("\nSWAP benchmark {a} <-> {b} (meet-in-the-middle, Bell-state tomography)\n");
    println!("{:<14} {:>12} {:>14}", "scheduler", "error rate", "duration (ns)");

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ];
    for sched in &schedulers {
        let out = compiler
            .swap_bell_error(sched.as_ref(), a, b, 512, 42, 1)
            .expect("routing and scheduling succeed on this device");
        println!("{:<14} {:>12.4} {:>14}", sched.name(), out.error_rate, out.duration_ns);
    }

    println!(
        "\nXtalkSched serializes the interfering SWAPs (and orders them to \
         spare the low-coherence qubit) while keeping everything else parallel."
    );
}
