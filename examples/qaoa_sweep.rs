//! Sweep the crosstalk weight factor ω on a QAOA instance over a
//! crosstalk-prone region (miniature of the paper's Figure 8).
//!
//! ```text
//! cargo run --release --example qaoa_sweep
//! ```

use crosstalk_mitigation::core::bench_circuits::qaoa_ansatz;
use crosstalk_mitigation::core::{Compiler, SchedulerContext, XtalkSched};
use crosstalk_mitigation::device::Device;
use crosstalk_mitigation::sim::{ideal, metrics};

fn main() {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    // One compiler across the whole ω sweep: each ω is a distinct
    // schedule-pass fingerprint, but readout calibration and the shared
    // pass prefix stay cached.
    let compiler = Compiler::new(&device, ctx);

    // A 4-qubit region that crosses the planted (5,10) | (11,12) pair.
    let region = [5u32, 10, 11, 12];
    let circuit = qaoa_ansatz(20, &region, 11);
    let floor = metrics::entropy(&ideal::distribution(&circuit));
    println!("QAOA on region {region:?} — noise-free cross entropy floor: {floor:.4}\n");
    println!("{:>6} {:>16}", "omega", "cross entropy");

    for omega in [0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let ce = compiler
            .qaoa_cross_entropy(&XtalkSched::new(omega), &circuit, 2048, 3)
            .expect("scheduling succeeds");
        println!("{omega:>6.2} {ce:>16.4}");
    }

    println!(
        "\nω = 0 reproduces ParSched (max parallelism), ω = 1 SerialSched-like \
         behaviour; intermediate ω wins, as in the paper's Figure 8."
    );
}
