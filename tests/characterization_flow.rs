//! Integration tests of the characterization stack: policies, bin
//! packing, SRB detection quality, and cost accounting across all three
//! device models.

use crosstalk_mitigation::charac::policy::TimeModel;
use crosstalk_mitigation::charac::{characterize, CharacterizationPolicy, RbConfig};
use crosstalk_mitigation::device::Device;

fn rb_config() -> RbConfig {
    RbConfig { seqs_per_length: 4, shots: 128, seed: 11, ..Default::default() }
}

#[test]
fn policies_form_a_strict_cost_hierarchy() {
    for device in Device::all_ibmq(3) {
        let topo = device.topology();
        let known = device.crosstalk().high_unordered_pairs(3.0);
        let all = CharacterizationPolicy::AllPairs.experiments(topo, 1).len();
        let one = CharacterizationPolicy::OneHop.experiments(topo, 1).len();
        let packed =
            CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }.experiments(topo, 1).len();
        let high = CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known }
            .experiments(topo, 1)
            .len();
        assert!(all > one, "{}: {all} !> {one}", device.name());
        assert!(one > packed, "{}: {one} !> {packed}", device.name());
        assert!(packed > high, "{}: {packed} !> {high}", device.name());
        // The paper's headline: 35-73x fewer experiments than all-pairs.
        let reduction = all as f64 / high as f64;
        assert!(reduction > 20.0, "{}: only {reduction:.0}x reduction", device.name());
    }
}

#[test]
fn paper_scale_time_budget_matches_figure_10() {
    // All-pairs at paper scale is the "over 8 hours" budget; the full
    // optimized flow fits in minutes.
    let tm = TimeModel::default();
    let full = RbConfig::paper_scale().executions();
    let device = Device::johannesburg(3);
    let all = CharacterizationPolicy::AllPairs.experiments(device.topology(), 1).len();
    assert!(tm.hours(all, full) > 7.0);
    let known = device.crosstalk().high_unordered_pairs(3.0);
    let high = CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known }
        .experiments(device.topology(), 1)
        .len();
    assert!(tm.hours(high, full) < 0.25, "daily budget must be under 15 minutes");
}

#[test]
fn one_hop_characterization_finds_planted_pairs_on_every_device() {
    for device in Device::all_ibmq(7) {
        let (charac, _) = characterize(
            &device,
            &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
            &rb_config(),
            &TimeModel::default(),
        );
        let truth = device.crosstalk().high_unordered_pairs(3.0);
        let found = charac.high_pairs(3.0);
        let hits = truth.iter().filter(|p| found.contains(p)).count();
        assert!(
            hits * 10 >= truth.len() * 8,
            "{}: recall {hits}/{} too low ({found:?})",
            device.name(),
            truth.len()
        );
    }
}

#[test]
fn daily_recharacterization_tracks_drift() {
    let base = Device::poughkeepsie(7);
    let known = base.crosstalk().high_unordered_pairs(3.0);
    let policy = CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known };
    let mut estimates = Vec::new();
    for day in [0u32, 3] {
        let device = base.on_day(day);
        let (charac, report) = characterize(&device, &policy, &rb_config(), &TimeModel::default());
        assert!(report.num_experiments <= 4);
        let e = charac
            .conditional(
                crosstalk_mitigation::device::Edge::new(10, 15),
                crosstalk_mitigation::device::Edge::new(11, 12),
            )
            .expect("tracked pair measured");
        estimates.push(e);
    }
    // Drifted days give different (but same-ballpark) conditionals.
    assert_ne!(estimates[0], estimates[1]);
    let ratio = estimates[0].max(estimates[1]) / estimates[0].min(estimates[1]);
    assert!(ratio < 4.0, "day-to-day ratio {ratio} too wild");
}

#[test]
fn conditional_estimates_scale_with_planted_factor() {
    // The measured conditional of the 11x pair exceeds that of the 6.5x
    // pair on the same device. The 11x conditional decays at ~0.165 per
    // Clifford, so long sequences sit on the noise floor and bias the
    // fit; sample short lengths where the decay is still resolvable.
    let device = Device::poughkeepsie(7);
    let config = RbConfig { lengths: vec![1, 2, 4, 8, 12], ..rb_config() };
    let (charac, _) = characterize(
        &device,
        &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
        &config,
        &TimeModel::default(),
    );
    let big = charac
        .conditional(
            crosstalk_mitigation::device::Edge::new(10, 15),
            crosstalk_mitigation::device::Edge::new(11, 12),
        )
        .unwrap();
    let small = charac
        .conditional(
            crosstalk_mitigation::device::Edge::new(5, 10),
            crosstalk_mitigation::device::Edge::new(11, 12),
        )
        .unwrap();
    assert!(big > small, "11x pair ({big}) should read above 6.5x pair ({small})");
}
