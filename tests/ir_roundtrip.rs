//! Property-based tests of the IR layer: QASM round-trips, DAG
//! consistency, and schedule-slot algebra on arbitrary circuits.

use crosstalk_mitigation::ir::{qasm, Circuit, Gate, ScheduleSlot, ScheduledCircuit};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    H(u32),
    X(u32),
    S(u32),
    Rz(f64, u32),
    U3(f64, f64, f64, u32),
    Cx(u32, u32),
    Barrier(u32, u32),
    Measure(u32, u32),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n).prop_map(Op::H),
        (0..n).prop_map(Op::X),
        (0..n).prop_map(Op::S),
        ((-3.0..3.0f64), 0..n).prop_map(|(a, q)| Op::Rz(a, q)),
        ((-3.0..3.0f64), (-3.0..3.0f64), (-3.0..3.0f64), 0..n)
            .prop_map(|(t, p, l, q)| Op::U3(t, p, l, q)),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Op::Cx(a, b))),
        (0..n, 0..n)
            .prop_filter_map("distinct", |(a, b)| (a != b).then_some(Op::Barrier(a, b))),
        (0..n, 0..n).prop_map(|(q, c)| Op::Measure(q, c)),
    ]
}

fn circuit_strategy(n: u32) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(op_strategy(n), 0..30).prop_map(move |ops| {
        let mut c = Circuit::new(n as usize, n as usize);
        let mut measured = vec![false; n as usize];
        for op in ops {
            match op {
                Op::H(q) => {
                    c.h(q);
                }
                Op::X(q) => {
                    c.x(q);
                }
                Op::S(q) => {
                    c.s(q);
                }
                Op::Rz(a, q) => {
                    c.rz(a, q);
                }
                Op::U3(t, p, l, q) => {
                    c.u3(t, p, l, q);
                }
                Op::Cx(a, b) => {
                    c.cx(a, b);
                }
                Op::Barrier(a, b) => {
                    c.barrier([a, b]);
                }
                Op::Measure(q, clbit) => {
                    if !measured[clbit as usize] {
                        measured[clbit as usize] = true;
                        c.measure(q, clbit);
                    }
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qasm_roundtrip(c in circuit_strategy(5)) {
        let text = qasm::dump(&c);
        let back = qasm::parse(&text).expect("dump output parses");
        // Round-trip is exact except angles print at 12 decimals.
        prop_assert_eq!(back.len(), c.len());
        for (a, b) in back.iter().zip(c.iter()) {
            prop_assert_eq!(a.qubits(), b.qubits());
            prop_assert_eq!(a.gate().name(), b.gate().name());
            for (x, y) in a.gate().params().iter().zip(b.gate().params()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dag_overlap_is_symmetric_and_antireflexive(c in circuit_strategy(5)) {
        let dag = c.dag();
        for i in 0..c.len() {
            prop_assert!(!dag.can_overlap(i, i));
            for j in 0..c.len() {
                prop_assert_eq!(dag.can_overlap(i, j), dag.can_overlap(j, i));
                // Dependency and overlap are mutually exclusive.
                if dag.depends_on(i, j) {
                    prop_assert!(!dag.can_overlap(i, j));
                    prop_assert!(!dag.depends_on(j, i) || i == j);
                }
            }
        }
    }

    #[test]
    fn layers_partition_and_respect_dependencies(c in circuit_strategy(5)) {
        let dag = c.dag();
        let layers = dag.layers();
        let total: usize = layers.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, c.len());
        // Every dependency crosses from a lower to a strictly higher layer.
        let mut layer_of = vec![0usize; c.len()];
        for (k, layer) in layers.iter().enumerate() {
            for &i in layer {
                layer_of[i] = k;
            }
        }
        for j in 0..c.len() {
            for &i in dag.predecessors(j) {
                prop_assert!(layer_of[i] < layer_of[j]);
            }
        }
    }

    #[test]
    fn sequential_schedule_always_validates(c in circuit_strategy(4)) {
        // Assign strictly sequential slots: always legal.
        let mut t = 0u64;
        let slots: Vec<ScheduleSlot> = c
            .iter()
            .map(|ins| {
                let d = if ins.gate().is_virtual() { 0 } else { 100 };
                let s = ScheduleSlot::new(t, d);
                t += d.max(1);
                s
            })
            .collect();
        let sched = ScheduledCircuit::new(c, slots).unwrap();
        prop_assert!(sched.validate().is_ok());
        prop_assert!(sched.overlapping_two_qubit_pairs().is_empty());
    }

    #[test]
    fn inverse_of_clifford_circuits_is_identity_depth(c in circuit_strategy(4)) {
        // Restrict to invertible subset: drop measurements.
        let mut u = Circuit::new(c.num_qubits(), c.num_clbits());
        for ins in c.iter().filter(|i| !i.gate().is_measurement()) {
            u.push(ins.clone());
        }
        let inv = u.inverse().expect("measurement-free circuits invert");
        prop_assert_eq!(inv.len(), u.len());
        // Inverting twice restores gate names in order.
        let back = inv.inverse().unwrap();
        let names: Vec<_> = back.iter().map(|i| i.gate().name()).collect();
        let orig: Vec<_> = u.iter().map(|i| i.gate().name()).collect();
        prop_assert_eq!(names, orig);
    }

    #[test]
    fn depth_bounds(c in circuit_strategy(5)) {
        let non_barrier = c.iter().filter(|i| !i.gate().is_barrier()).count();
        let depth = c.depth();
        prop_assert!(depth <= non_barrier);
        if non_barrier > 0 {
            prop_assert!(depth >= 1);
            prop_assert!(depth >= non_barrier.div_ceil(c.num_qubits().max(1)));
        }
    }
}

#[test]
fn gate_inverses_compose_to_identity_matrix() {
    use crosstalk_mitigation::sim::StateVector;
    // For every invertible 1q gate: U⁻¹ U |ψ⟩ = |ψ⟩ on a random state.
    let gates = [
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::U1(0.37),
        Gate::U2(0.9, -0.4),
        Gate::U3(1.1, 0.2, -0.8),
        Gate::Rx(0.5),
        Gate::Ry(-1.2),
        Gate::Rz(2.2),
    ];
    for g in gates {
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::U3(0.8, 0.1, 0.2), &[0]);
        let reference = s.clone();
        s.apply_gate(&g, &[0]);
        s.apply_gate(&g.inverse().unwrap(), &[0]);
        assert!(
            s.fidelity(&reference) > 1.0 - 1e-9,
            "{g} inverse is wrong: fidelity {}",
            s.fidelity(&reference)
        );
    }
}
