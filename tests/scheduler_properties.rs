//! Property-based tests of the scheduling stack: every scheduler must
//! produce valid schedules on arbitrary hardware-compliant circuits, and
//! XtalkSched must never lose to the baselines on its own objective.

use crosstalk_mitigation::core::sched::schedule_cost;
use crosstalk_mitigation::core::{
    realize, to_barriered_circuit, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use crosstalk_mitigation::device::{CrosstalkMap, Device, Edge};
use crosstalk_mitigation::ir::Circuit;
use proptest::prelude::*;

/// A random hardware-compliant circuit on a line of `n` qubits.
fn line_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    // Each op: 0..n-1 → cx(q, q+1); n.. → h(q - (n-1)).
    let n_edges = n - 1;
    prop::collection::vec(0..(n_edges + n), 1..40).prop_map(move |ops| {
        let mut c = Circuit::new(n, n);
        for op in ops {
            if op < n_edges {
                c.cx(op as u32, op as u32 + 1);
            } else {
                c.h((op - n_edges) as u32);
            }
        }
        c.measure_all();
        c
    })
}

fn hot_line_device(n: usize, seed: u64) -> Device {
    let mut device = Device::line(n, seed);
    let mut xt = CrosstalkMap::new();
    // Plant crosstalk between alternating edges where possible.
    if n >= 4 {
        xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), 8.0, 6.0);
    }
    if n >= 6 {
        xt.set_symmetric(Edge::new(2, 3), Edge::new(4, 5), 5.0, 4.0);
    }
    device = device.with_crosstalk(xt);
    device
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_produce_valid_schedules(c in line_circuit(6), seed in 0u64..50) {
        let device = hot_line_device(6, seed);
        let ctx = SchedulerContext::from_ground_truth(&device);
        for sched in [&ParSched::new() as &dyn Scheduler, &SerialSched::new(), &XtalkSched::new(0.5)] {
            let s = sched.schedule(&c, &ctx).expect("line circuits are compliant");
            s.validate().expect("schedule must be valid");
            prop_assert_eq!(s.circuit().len(), c.len());
        }
    }

    #[test]
    fn xtalksched_objective_dominates_baselines(c in line_circuit(6), omega in 0.05f64..0.95) {
        let device = hot_line_device(6, 3);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let (_, report) = XtalkSched::new(omega).schedule_with_report(&c, &ctx).unwrap();
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        let ser = SerialSched::new().schedule(&c, &ctx).unwrap();
        prop_assert!(report.cost <= schedule_cost(&par, &ctx, omega) + 1e-9);
        prop_assert!(report.cost <= schedule_cost(&ser, &ctx, omega) + 1e-9);
    }

    #[test]
    fn serialsched_never_overlaps(c in line_circuit(5)) {
        let device = Device::line(5, 0);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let s = SerialSched::new().schedule(&c, &ctx).unwrap();
        prop_assert!(s.overlapping_two_qubit_pairs().is_empty());
    }

    #[test]
    fn parsched_is_makespan_minimal(c in line_circuit(5)) {
        // No scheduler may beat ParSched's makespan (it is the ASAP/ALAP
        // optimum under the dependency constraints alone).
        let device = hot_line_device(5, 1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        for sched in [&SerialSched::new() as &dyn Scheduler, &XtalkSched::new(0.7)] {
            let s = sched.schedule(&c, &ctx).unwrap();
            prop_assert!(s.makespan() >= par.makespan());
        }
    }

    #[test]
    fn realize_is_deterministic(c in line_circuit(5)) {
        let device = Device::line(5, 0);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let a = realize(&c, &ctx, &[]).unwrap();
        let b = realize(&c, &ctx, &[]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn barriered_circuit_preserves_gate_multiset(c in line_circuit(5)) {
        let device = hot_line_device(5, 2);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let (s, report) = XtalkSched::new(0.5).schedule_with_report(&c, &ctx).unwrap();
        let barriered = to_barriered_circuit(&s, &report.serializations);
        // Same ops modulo added barriers.
        let mut before = c.count_ops();
        before.remove("barrier");
        let mut after = barriered.count_ops();
        after.remove("barrier");
        prop_assert_eq!(before, after);
        // And the barriered circuit's own dependencies forbid the
        // serialized overlaps.
        let dag = barriered.dag();
        for w in barriered.instructions().windows(1) {
            let _ = w; // dag built without panic is the core assertion
        }
        prop_assert!(dag.len() >= c.len());
    }

    #[test]
    fn schedule_cost_monotone_in_omega_terms(c in line_circuit(5), omega in 0.0f64..1.0) {
        // cost(ω) must interpolate between the pure terms: for any
        // schedule, cost = ω·gate + (1−ω)·deco.
        let device = hot_line_device(5, 4);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let s = ParSched::new().schedule(&c, &ctx).unwrap();
        let gate = schedule_cost(&s, &ctx, 1.0);
        let deco = schedule_cost(&s, &ctx, 0.0);
        let mix = schedule_cost(&s, &ctx, omega);
        prop_assert!((mix - (omega * gate + (1.0 - omega) * deco)).abs() < 1e-9);
    }
}
