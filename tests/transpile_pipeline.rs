//! Property tests of the compiler front end: lowering, fusion, placement
//! and routing must preserve program semantics on arbitrary circuits, and
//! their outputs must feed the schedulers cleanly.

use crosstalk_mitigation::core::layout::{route_with_greedy_layout, Layout};
use crosstalk_mitigation::core::optimize::fuse_single_qubit_gates;
use crosstalk_mitigation::core::transpile::{is_native, lower_to_native};
use crosstalk_mitigation::core::{ParSched, Scheduler, SchedulerContext};
use crosstalk_mitigation::device::Device;
use crosstalk_mitigation::ir::Circuit;
use crosstalk_mitigation::sim::{ideal, metrics};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    H(u32),
    T(u32),
    S(u32),
    Rx(f64, u32),
    Rz(f64, u32),
    Cx(u32, u32),
    Cz(u32, u32),
    Swap(u32, u32),
}

fn ops_strategy(n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..n).prop_map(Op::H),
            (0..n).prop_map(Op::T),
            (0..n).prop_map(Op::S),
            ((-3.0..3.0f64), 0..n).prop_map(|(a, q)| Op::Rx(a, q)),
            ((-3.0..3.0f64), 0..n).prop_map(|(a, q)| Op::Rz(a, q)),
            (0..n, 1..n).prop_map(move |(a, d)| Op::Cx(a, (a + d) % n)),
            (0..n, 1..n).prop_map(move |(a, d)| Op::Cz(a, (a + d) % n)),
            (0..n, 1..n).prop_map(move |(a, d)| Op::Swap(a, (a + d) % n)),
        ],
        1..len,
    )
}

fn build(n: u32, ops: &[Op], measure: bool) -> Circuit {
    let mut c = Circuit::new(n as usize, n as usize);
    for op in ops {
        match *op {
            Op::H(q) => {
                c.h(q);
            }
            Op::T(q) => {
                c.t(q);
            }
            Op::S(q) => {
                c.s(q);
            }
            Op::Rx(a, q) => {
                c.rx(a, q);
            }
            Op::Rz(a, q) => {
                c.rz(a, q);
            }
            Op::Cx(a, b) => {
                c.cx(a, b);
            }
            Op::Cz(a, b) => {
                c.cz(a, b);
            }
            Op::Swap(a, b) => {
                c.swap(a, b);
            }
        }
    }
    if measure {
        c.measure_all();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lowering_preserves_state(ops in ops_strategy(4, 18)) {
        let c = build(4, &ops, false);
        let lowered = lower_to_native(&c);
        prop_assert!(is_native(&lowered));
        let f = ideal::final_state(&c).fidelity(&ideal::final_state(&lowered));
        prop_assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn fusion_preserves_state_and_shrinks(ops in ops_strategy(4, 18)) {
        let c = build(4, &ops, false);
        let fused = fuse_single_qubit_gates(&c);
        prop_assert!(fused.len() <= c.len());
        let f = ideal::final_state(&c).fidelity(&ideal::final_state(&fused));
        prop_assert!(f > 1.0 - 1e-9, "fidelity {f}");
        // Fused circuits have no adjacent same-qubit 1q pairs left.
        let dag = fused.dag();
        for (i, ins) in fused.iter().enumerate() {
            if !ins.gate().is_single_qubit() { continue; }
            for &s in dag.successors(i) {
                prop_assert!(
                    !fused.instructions()[s].gate().is_single_qubit()
                        || fused.instructions()[s].qubits() != ins.qubits(),
                    "unfused 1q chain at {i}→{s}"
                );
            }
        }
    }

    #[test]
    fn routing_preserves_measured_distribution(ops in ops_strategy(5, 14)) {
        let device = Device::poughkeepsie(7);
        let logical = build(5, &ops, true);
        let native = lower_to_native(&logical);
        // Pad to device width before routing.
        let mut padded = Circuit::new(20, native.num_clbits());
        padded.try_extend(&native).unwrap();
        let routed = route_with_greedy_layout(&padded, device.topology()).unwrap();
        let want = ideal::distribution(&logical);
        let got = ideal::distribution(&routed.circuit);
        let tvd = metrics::total_variation(&want, &got);
        prop_assert!(tvd < 1e-9, "routing changed semantics: tvd {tvd}");
        // And the routed circuit schedules cleanly.
        let ctx = SchedulerContext::from_ground_truth(&device);
        let sched = ParSched::new().schedule(&routed.circuit, &ctx).unwrap();
        sched.validate().unwrap();
    }

    #[test]
    fn full_pipeline_composes(ops in ops_strategy(4, 12)) {
        // lower → fuse → route → schedule: semantics intact end to end.
        let device = Device::boeblingen(3);
        let logical = build(4, &ops, true);
        let staged = fuse_single_qubit_gates(&lower_to_native(&logical));
        let mut padded = Circuit::new(20, staged.num_clbits());
        padded.try_extend(&staged).unwrap();
        let routed = route_with_greedy_layout(&padded, device.topology()).unwrap();
        let tvd = metrics::total_variation(
            &ideal::distribution(&logical),
            &ideal::distribution(&routed.circuit),
        );
        prop_assert!(tvd < 1e-9, "pipeline changed semantics: tvd {tvd}");
    }

    #[test]
    fn arbitrary_layouts_route_correctly(ops in ops_strategy(4, 10), perm in 0usize..24) {
        // Any initial placement of 4 logical qubits on a line of 6.
        let device = Device::line(6, 2);
        let logical = build(4, &ops, true);
        let native = lower_to_native(&logical);
        let mut padded = Circuit::new(6, native.num_clbits());
        padded.try_extend(&native).unwrap();
        // perm indexes one of the 4! placements onto physical {0,2,3,5}.
        let sites = [0u32, 2, 3, 5];
        let mut order: Vec<u32> = sites.to_vec();
        let mut k = perm;
        let mut mapping = Vec::new();
        for i in (1..=4usize).rev() {
            mapping.push(order.remove(k % i));
            k /= i;
        }
        // Idle logical qubits 4,5 go to the leftover sites.
        let mut used: Vec<u32> = mapping.clone();
        for p in 0..6u32 {
            if !used.contains(&p) {
                mapping.push(p);
                used.push(p);
            }
        }
        let layout = Layout::from_mapping(&mapping, 6).unwrap();
        let routed = crosstalk_mitigation::core::layout::route(
            &padded, device.topology(), layout,
        ).unwrap();
        let tvd = metrics::total_variation(
            &ideal::distribution(&logical),
            &ideal::distribution(&routed.circuit),
        );
        prop_assert!(tvd < 1e-9, "layout {mapping:?}: tvd {tvd}");
    }
}
