//! The optimizing solver must agree with brute-force enumeration on every
//! random small instance: same minimal objective over all boolean
//! assignments that satisfy the propositional structure and whose active
//! difference constraints are feasible.

use crosstalk_mitigation::smt::{
    DiffConstraint, DifferenceLogic, Model, Objective, Optimizer, RealVar,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    n_real: usize,
    n_bool: usize,
    /// Hard `x − y ≥ c` constraints (indices into reals; y == x means
    /// `x ≥ c`).
    hard: Vec<(usize, usize, i64)>,
    guarded: Vec<(usize, usize, usize, i64)>, // (bool, x, y, c)
    amo: Vec<Vec<usize>>,
    conflicts: Vec<(usize, usize)>,
    implications: Vec<(usize, usize)>,
    /// Objective weights: per-bool cost plus per-real time weight.
    bool_cost: Vec<i64>,
    time_weight: Vec<i64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    let n_real = 3usize;
    let n_bool = 5usize;
    (
        prop::collection::vec((0..n_real, 0..n_real, -50i64..200), 0..4),
        prop::collection::vec((0..n_bool, 0..n_real, 0..n_real, -50i64..200), 0..6),
        prop::collection::vec(prop::collection::vec(0..n_bool, 2..4), 0..2),
        prop::collection::vec((0..n_bool, 0..n_bool), 0..2),
        prop::collection::vec((0..n_bool, 0..n_bool), 0..2),
        prop::collection::vec(-5i64..6, n_bool),
        prop::collection::vec(0i64..3, n_real),
    )
        .prop_map(
            move |(hard, guarded, amo, conflicts, implications, bool_cost, time_weight)| {
                Instance {
                    n_real,
                    n_bool,
                    hard,
                    guarded,
                    amo: amo
                        .into_iter()
                        .map(|mut g| {
                            g.sort_unstable();
                            g.dedup();
                            g
                        })
                        .filter(|g| g.len() >= 2)
                        .collect(),
                    conflicts: conflicts.into_iter().filter(|(a, b)| a != b).collect(),
                    implications: implications.into_iter().filter(|(a, b)| a != b).collect(),
                    bool_cost,
                    time_weight,
                }
            },
        )
}

struct LinearObjective {
    bool_cost: Vec<i64>,
    time_weight: Vec<i64>,
}

impl Objective for LinearObjective {
    fn evaluate(&self, bools: &[bool], times: &[i64]) -> f64 {
        let b: i64 = bools
            .iter()
            .zip(&self.bool_cost)
            .map(|(&x, &w)| if x { w } else { 0 })
            .sum();
        let t: i64 = times.iter().zip(&self.time_weight).map(|(&x, &w)| x * w).sum();
        (b + t) as f64
    }
}

/// Brute force: enumerate all 2^n_bool assignments, check the boolean
/// structure, solve the active difference system, take the best cost.
fn brute_force(inst: &Instance, vars: &[RealVar]) -> Option<f64> {
    let obj = LinearObjective {
        bool_cost: inst.bool_cost.clone(),
        time_weight: inst.time_weight.clone(),
    };
    let mut best: Option<f64> = None;
    'assign: for mask in 0u32..(1 << inst.n_bool) {
        let bools: Vec<bool> = (0..inst.n_bool).map(|i| mask >> i & 1 == 1).collect();
        for group in &inst.amo {
            if group.iter().filter(|&&v| bools[v]).count() > 1 {
                continue 'assign;
            }
        }
        for &(a, b) in &inst.conflicts {
            if bools[a] && bools[b] {
                continue 'assign;
            }
        }
        for &(a, b) in &inst.implications {
            if bools[a] && !bools[b] {
                continue 'assign;
            }
        }
        let mut dl = DifferenceLogic::new(inst.n_real);
        for &(x, y, c) in &inst.hard {
            dl.add(constraint(vars, x, y, c));
        }
        for &(g, x, y, c) in &inst.guarded {
            if bools[g] {
                dl.add(constraint(vars, x, y, c));
            }
        }
        let Some(times) = dl.earliest() else {
            continue 'assign;
        };
        let cost = obj.evaluate(&bools, &times);
        if best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

fn constraint(vars: &[RealVar], x: usize, y: usize, c: i64) -> DiffConstraint {
    if x == y {
        DiffConstraint { x: vars[x], y: None, c }
    } else {
        DiffConstraint { x: vars[x], y: Some(vars[y]), c }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimizer_matches_brute_force(inst in instance_strategy()) {
        let mut model = Model::new();
        let vars: Vec<RealVar> = (0..inst.n_real).map(|_| model.real_var()).collect();
        let bools: Vec<_> = (0..inst.n_bool).map(|_| model.bool_var()).collect();
        for &(x, y, c) in &inst.hard {
            model.require(constraint(&vars, x, y, c));
        }
        for &(g, x, y, c) in &inst.guarded {
            model.guard(bools[g], constraint(&vars, x, y, c));
        }
        for group in &inst.amo {
            model.at_most_one(group.iter().map(|&i| bools[i]).collect());
        }
        for &(a, b) in &inst.conflicts {
            model.conflict(bools[a], bools[b]);
        }
        for &(a, b) in &inst.implications {
            model.implies(bools[a], bools[b]);
        }
        let obj = LinearObjective {
            bool_cost: inst.bool_cost.clone(),
            time_weight: inst.time_weight.clone(),
        };
        let solver = Optimizer::new(model).minimize(&obj);
        let expected = brute_force(&inst, &vars);
        match (solver, expected) {
            (None, None) => {}
            (Some(sol), Some(best)) => {
                prop_assert!(
                    (sol.cost - best).abs() < 1e-9,
                    "solver {} vs brute force {best}", sol.cost
                );
            }
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "satisfiability mismatch: solver {:?} vs brute force {:?}",
                    got.map(|s| s.cost), want
                )));
            }
        }
    }

    #[test]
    fn earliest_solution_is_pointwise_minimal(
        constraints in prop::collection::vec((0usize..4, 0usize..4, -30i64..60), 0..8)
    ) {
        let mut model = Model::new();
        let vars: Vec<RealVar> = (0..4).map(|_| model.real_var()).collect();
        let mut dl = DifferenceLogic::new(4);
        for &(x, y, c) in &constraints {
            dl.add(constraint(&vars, x, y, c));
        }
        if let Some(earliest) = dl.earliest() {
            // Earliest is feasible…
            for &(x, y, c) in &constraints {
                let base = if x == y { 0 } else { earliest[y] };
                prop_assert!(earliest[x] - base >= c);
            }
            // …non-negative…
            prop_assert!(earliest.iter().all(|&t| t >= 0));
            // …and no single variable can be reduced while staying feasible.
            for v in 0..4 {
                if earliest[v] == 0 { continue; }
                let mut reduced = earliest.clone();
                reduced[v] -= 1;
                let feasible = constraints.iter().all(|&(x, y, c)| {
                    let base = if x == y { 0 } else { reduced[y] };
                    reduced[x] - base >= c
                }) && reduced[v] >= 0;
                prop_assert!(!feasible, "var {v} was reducible");
            }
        }
    }
}
