//! Cross-crate physics checks: the simulator's error compounding must
//! behave like the hardware phenomena the paper measures.

use crosstalk_mitigation::charac::srb::run_srb_pair;
use crosstalk_mitigation::charac::{rb::run_rb, RbConfig};
use crosstalk_mitigation::device::{CrosstalkMap, Device, Edge};
use crosstalk_mitigation::ir::Circuit;
use crosstalk_mitigation::sim::mitigation::CalibrationMatrix;
use crosstalk_mitigation::sim::{ideal, metrics, Executor, ExecutorConfig};

#[test]
fn sampled_distribution_converges_to_ideal_without_noise() {
    let device = Device::line(3, 2);
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).h(2).t(2).h(2).measure_all();
    let sched = Executor::asap_schedule(&c, device.calibration());
    let cfg = ExecutorConfig {
        shots: 20_000,
        seed: 5,
        gate_noise: false,
        crosstalk: false,
        decoherence: false,
        readout_noise: false,
        compound_crosstalk: false,
    };
    let counts = Executor::with_config(&device, cfg).run(&sched);
    let tvd = metrics::total_variation(&ideal::distribution(&c), &counts.distribution());
    assert!(tvd < 0.02, "tvd {tvd}");
}

#[test]
fn rb_decay_worsens_with_error_rate() {
    // Two otherwise-identical devices, one with 3x the CNOT error: the
    // RB-estimated error must rank accordingly.
    let cfg = RbConfig { seqs_per_length: 4, shots: 160, seed: 1, ..Default::default() };
    let mut low = Device::line(2, 4);
    let mut cal = low.calibration().clone();
    cal.set_cx_error(Edge::new(0, 1), 0.008);
    low = low.with_calibration(cal);
    let mut high = Device::line(2, 4);
    let mut cal = high.calibration().clone();
    cal.set_cx_error(Edge::new(0, 1), 0.05);
    high = high.with_calibration(cal);

    let e_low = run_rb(&low, Edge::new(0, 1), &cfg).cnot_error;
    let e_high = run_rb(&high, Edge::new(0, 1), &cfg).cnot_error;
    assert!(
        e_high > 2.0 * e_low,
        "RB must separate 0.008 from 0.05: got {e_low} vs {e_high}"
    );
}

#[test]
fn srb_conditional_scales_with_planted_factor() {
    let cfg = RbConfig { seqs_per_length: 4, shots: 160, seed: 2, ..Default::default() };
    let mut results = Vec::new();
    for factor in [1.0, 4.0, 10.0] {
        let mut device = Device::line(4, 6);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.012);
        cal.set_cx_error(Edge::new(2, 3), 0.012);
        device = device.with_calibration(cal);
        if factor > 1.0 {
            let mut xt = CrosstalkMap::new();
            xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), factor, factor);
            device = device.with_crosstalk(xt);
        }
        let out = run_srb_pair(&device, Edge::new(0, 1), Edge::new(2, 3), &cfg);
        results.push(out.first_given_second);
    }
    assert!(
        results[0] < results[1] && results[1] < results[2],
        "conditional errors must order with factor: {results:?}"
    );
}

#[test]
fn decoherence_compounds_exponentially_with_idle_time() {
    use crosstalk_mitigation::ir::{ScheduleSlot, ScheduledCircuit};
    let mut device = Device::line(1, 8);
    let mut cal = device.calibration().clone();
    cal.set_coherence_us(0, 10.0, 10.0);
    device = device.with_calibration(cal);

    let survival = |idle_ns: u64| {
        let mut c = Circuit::new(1, 1);
        c.x(0).measure(0, 0);
        let slots = vec![
            ScheduleSlot::new(0, 50),
            ScheduleSlot::new(50 + idle_ns, 1000),
        ];
        let sched = ScheduledCircuit::new(c, slots).unwrap();
        let cfg = ExecutorConfig {
            shots: 6000,
            seed: 3,
            gate_noise: false,
            crosstalk: false,
            decoherence: true,
            readout_noise: false,
            compound_crosstalk: false,
        };
        Executor::with_config(&device, cfg).run(&sched).probability(1)
    };

    let s0 = survival(0);
    let s1 = survival(10_000); // one T1
    let s2 = survival(20_000); // two T1
    assert!(s0 > 0.99, "no idle, no decay: {s0}");
    assert!((s1 - (-1.0f64).exp()).abs() < 0.04, "one T1 → e^-1: {s1}");
    assert!((s2 - (-2.0f64).exp()).abs() < 0.04, "two T1 → e^-2: {s2}");
}

#[test]
fn crosstalk_only_fires_on_temporal_overlap() {
    // Same circuit, two schedules: overlapping vs disjoint hot gates.
    use crosstalk_mitigation::ir::{ScheduleSlot, ScheduledCircuit};
    let mut device = Device::line(4, 1);
    let mut cal = device.calibration().clone();
    cal.set_cx_error(Edge::new(0, 1), 0.02);
    cal.set_cx_error(Edge::new(2, 3), 0.02);
    device = device.with_calibration(cal);
    let mut xt = CrosstalkMap::new();
    xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), 20.0, 20.0);
    let device = device.with_crosstalk(xt);

    let mut c = Circuit::new(4, 4);
    for _ in 0..4 {
        c.cx(0, 1).cx(2, 3);
    }
    c.measure_all();

    let run = |offsets: [u64; 2]| {
        let mut slots = Vec::new();
        let mut t = offsets;
        for ins in c.iter() {
            match ins.edge() {
                Some((a, _)) if a.raw() == 0 => {
                    slots.push(ScheduleSlot::new(t[0], 300));
                    t[0] += 300;
                }
                Some(_) => {
                    slots.push(ScheduleSlot::new(t[1], 300));
                    t[1] += 300;
                }
                None => slots.push(ScheduleSlot::new(t[0].max(t[1]), 1000)),
            }
        }
        // Align measures at the common end.
        let end = t[0].max(t[1]);
        for (i, ins) in c.iter().enumerate() {
            if ins.gate().is_measurement() {
                slots[i] = ScheduleSlot::new(end, 1000);
            }
        }
        let sched = ScheduledCircuit::new(c.clone(), slots).unwrap();
        let cfg = ExecutorConfig {
            shots: 4096,
            seed: 9,
            gate_noise: true,
            crosstalk: true,
            decoherence: false,
            readout_noise: false,
            compound_crosstalk: false,
        };
        Executor::with_config(&device, cfg).run(&sched).probability(0)
    };

    let overlapping = run([0, 0]);
    let disjoint = run([0, 1300]);
    assert!(
        disjoint > overlapping + 0.15,
        "disjoint {disjoint} must beat overlapping {overlapping}"
    );
}

#[test]
fn readout_mitigation_recovers_ghz_weights() {
    let device = Device::line(3, 12);
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    let sched = Executor::asap_schedule(&c, device.calibration());
    let cfg = ExecutorConfig { shots: 8192, seed: 2, ..Default::default() };
    let counts = Executor::with_config(&device, cfg).run(&sched);
    let cal = CalibrationMatrix::measure(&device, &[0, 1, 2], 8192, 13);
    let fixed = cal.mitigate(&counts);
    let raw = counts.distribution();
    let good_raw = raw[0] + raw[7];
    let good_fixed = fixed[0] + fixed[7];
    assert!(good_fixed > good_raw, "mitigation helps: {good_raw} → {good_fixed}");
    assert!(good_fixed > 0.9, "mitigated GHZ weight {good_fixed}");
}

#[test]
fn compound_crosstalk_is_at_least_as_harsh_as_max() {
    // The paper's Eq. 6 takes the max over simultaneous aggressors; the
    // compound variant adds their excesses. With two aggressors hitting
    // the same victim, compound must hurt at least as much — and the
    // scheduler's advantage must survive under either semantics.
    use crosstalk_mitigation::core::{ParSched, Scheduler, SchedulerContext, XtalkSched};

    let mut device = Device::line(6, 3);
    let mut cal = device.calibration().clone();
    for e in [Edge::new(0, 1), Edge::new(2, 3), Edge::new(4, 5)] {
        cal.set_cx_error(e, 0.02);
    }
    device = device.with_calibration(cal);
    let mut xt = CrosstalkMap::new();
    // Edge (2,3) is the victim of both neighbors.
    xt.set_symmetric(Edge::new(2, 3), Edge::new(0, 1), 6.0, 1.5);
    xt.set_symmetric(Edge::new(2, 3), Edge::new(4, 5), 6.0, 1.5);
    let device = device.with_crosstalk(xt);
    let ctx = SchedulerContext::from_ground_truth(&device);

    let mut c = Circuit::new(6, 6);
    for _ in 0..4 {
        c.cx(0, 1).cx(2, 3).cx(4, 5);
    }
    c.measure_all();

    let run = |sched: &dyn Scheduler, compound: bool| {
        let s = sched.schedule(&c, &ctx).unwrap();
        let cfg = ExecutorConfig {
            shots: 4096,
            seed: 17,
            decoherence: false,
            readout_noise: false,
            compound_crosstalk: compound,
            ..Default::default()
        };
        Executor::with_config(&device, cfg).run(&s).probability(0)
    };

    let par_max = run(&ParSched::new(), false);
    let par_compound = run(&ParSched::new(), true);
    assert!(
        par_compound <= par_max + 0.02,
        "compound should be at least as harsh: {par_compound} vs {par_max}"
    );

    // The headline conclusion is robust to the combination semantics.
    let xt_compound = run(&XtalkSched::new(0.7), true);
    assert!(
        xt_compound > par_compound + 0.05,
        "XtalkSched {xt_compound} must still beat ParSched {par_compound} under compounding"
    );
}
