//! The stabilizer formalism and the statevector simulator must agree:
//! a tableau is just a compressed description of the same unitary.

use crosstalk_mitigation::clifford::{group, random, CliffordTableau};
use crosstalk_mitigation::ir::Gate;
use crosstalk_mitigation::sim::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Applies a local-gate decomposition to a fresh 2-qubit statevector.
fn state_of(gates: &[(Gate, Vec<usize>)]) -> StateVector {
    let mut s = StateVector::new(2);
    for (g, qs) in gates {
        s.apply_gate(g, qs);
    }
    s
}

#[test]
fn clifford_then_inverse_restores_every_stabilizer_state() {
    let g2 = group::two_qubit_cliffords();
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..50 {
        let idx = random::uniform_element(g2, &mut rng);
        let decomp = g2.decomposition(idx);
        let inv = g2
            .inverse_decomposition(g2.tableau(idx))
            .expect("group elements invert");
        let mut all = decomp.clone();
        all.extend(inv);
        let s = state_of(&all);
        let reference = StateVector::new(2);
        assert!(
            s.fidelity(&reference) > 1.0 - 1e-9,
            "element {idx}: fidelity {}",
            s.fidelity(&reference)
        );
    }
}

#[test]
fn equal_tableaus_mean_equal_states_up_to_phase() {
    // Two different decompositions with the same tableau act identically
    // on |00⟩ up to global phase: compare via fidelity.
    let g2 = group::two_qubit_cliffords();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let i = random::uniform_element(g2, &mut rng);
        let j = random::uniform_element(g2, &mut rng);
        // Compose i then j as circuits and as tableaus.
        let mut gates = g2.decomposition(i);
        gates.extend(g2.decomposition(j));
        let composed_tab = g2.tableau(i).then(g2.tableau(j));
        let k = g2.index_of(&composed_tab).expect("group is closed");
        let via_element = state_of(&g2.decomposition(k));
        let via_product = state_of(&gates);
        let f = via_element.fidelity(&via_product);
        assert!(f > 1.0 - 1e-9, "composition mismatch: fidelity {f}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tableau_conjugation_matches_statevector_expectations(seed in 0u64..1000) {
        // For a random Clifford C and the stabilizer Z0: the state C|00⟩
        // is a +1 eigenstate of C Z0 C†. Check the expectation value via
        // the statevector.
        let g2 = group::two_qubit_cliffords();
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = random::uniform_element(g2, &mut rng);
        let decomp = g2.decomposition(idx);
        let state = state_of(&decomp);

        for q in 0..2usize {
            let z = crosstalk_mitigation::clifford::PauliString::single(2, q, 'Z');
            let image = g2.tableau(idx).conjugate(&z);
            // Build the image operator as a circuit on a copy and compute
            // ⟨ψ| P |ψ⟩ via one extra state.
            let mut applied = state.clone();
            for qq in 0..2usize {
                match (image.x_bit(qq), image.z_bit(qq)) {
                    (false, false) => {}
                    (true, false) => applied.apply_gate(&Gate::X, &[qq]),
                    (false, true) => applied.apply_gate(&Gate::Z, &[qq]),
                    (true, true) => applied.apply_gate(&Gate::Y, &[qq]),
                }
            }
            let sign = f64::from(image.sign());
            let overlap = state.inner(&applied);
            // ⟨ψ|P|ψ⟩ must equal +1 (ψ is stabilized by +image).
            prop_assert!(
                (overlap.re * sign - 1.0).abs() < 1e-9 && overlap.im.abs() < 1e-9,
                "stabilizer violated: {} (sign {sign})", overlap
            );
        }
    }

    #[test]
    fn random_clifford_circuits_are_simulable_both_ways(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random::random_clifford_circuit(3, 6, &mut rng);
        // Tableau path.
        let t = CliffordTableau::from_circuit(&c);
        // Statevector path: append the inverse circuit, must return to |0⟩.
        let mut round = c.clone();
        round.try_extend(&c.inverse().unwrap()).unwrap();
        let mut s = StateVector::new(3);
        for ins in round.iter() {
            if ins.gate().is_barrier() { continue; }
            let qs: Vec<usize> = ins.qubits().iter().map(|q| q.index()).collect();
            s.apply_gate(ins.gate(), &qs);
        }
        prop_assert!(s.fidelity(&StateVector::new(3)) > 1.0 - 1e-9);
        // The tableau inverse agrees.
        let tinv = CliffordTableau::from_circuit(&c.inverse().unwrap());
        prop_assert!(t.then(&tinv).is_identity());
    }
}

#[test]
fn pauli_y_convention_consistent_with_matrices() {
    // Y = i·XZ in the tableau convention must match the matrix Y.
    let mut via_gates = StateVector::new(1);
    via_gates.apply_gate(&Gate::Y, &[0]);
    let mut via_xz = StateVector::new(1);
    via_xz.apply_gate(&Gate::Z, &[0]);
    via_xz.apply_gate(&Gate::X, &[0]);
    // Y|0⟩ = i|1⟩, XZ|0⟩ = |1⟩ → equal up to the phase i.
    assert!((via_gates.fidelity(&via_xz) - 1.0).abs() < 1e-12);
    let ratio = via_gates.amp(1) * via_xz.amp(1).conj();
    assert!((ratio.im - 1.0).abs() < 1e-12, "phase must be exactly i, got {ratio}");
}

#[test]
fn single_qubit_group_covers_all_bloch_axis_permutations() {
    // The 24 single-qubit Cliffords map Z to each of ±X, ±Y, ±Z exactly
    // 4 times each.
    let g1 = group::single_qubit_cliffords();
    let mut hist = std::collections::BTreeMap::new();
    for i in 0..g1.len() {
        let img = g1.tableau(i).image_z(0).to_string();
        *hist.entry(img).or_insert(0) += 1;
    }
    assert_eq!(hist.len(), 6, "{hist:?}");
    assert!(hist.values().all(|&c| c == 4), "{hist:?}");
}
