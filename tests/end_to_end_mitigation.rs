//! The headline end-to-end claim, with *measured* characterization (not
//! ground truth): characterize crosstalk through simultaneous RB, feed
//! the estimates to XtalkSched, and beat ParSched on real (simulated)
//! hardware runs.

use crosstalk_mitigation::charac::policy::TimeModel;
use crosstalk_mitigation::charac::{characterize, CharacterizationPolicy, RbConfig};
use crosstalk_mitigation::core::pipeline::swap_bell_error;
use crosstalk_mitigation::core::{ParSched, SchedulerContext, SerialSched, XtalkSched};
use crosstalk_mitigation::device::Device;

fn rb_config() -> RbConfig {
    RbConfig { seqs_per_length: 4, shots: 128, seed: 3, ..Default::default() }
}

#[test]
fn measured_characterization_drives_mitigation() {
    let device = Device::poughkeepsie(7);

    // 1. Characterize with the paper's optimized policy.
    let (charac, report) = characterize(
        &device,
        &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
        &rb_config(),
        &TimeModel::default(),
    );
    assert!(report.num_experiments < device.topology().simultaneous_pairs().len() / 5);

    // The strongest pair must be found even at low statistics.
    let high = charac.high_pairs(3.0);
    assert!(
        high.contains(&(
            crosstalk_mitigation::device::Edge::new(10, 15),
            crosstalk_mitigation::device::Edge::new(11, 12)
        )),
        "11x pair not detected: {high:?}"
    );

    // 2. Schedule the Figure 6 path with the *measured* context.
    let ctx = SchedulerContext::new(&device, charac);
    let par = swap_bell_error(&device, &ctx, &ParSched::new(), 0, 13, 512, 5).unwrap();
    let xt = swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), 0, 13, 512, 5).unwrap();

    // 3. The measured-characterization scheduler must still win.
    assert!(
        xt.error_rate < par.error_rate,
        "measured-charac XtalkSched {} should beat ParSched {}",
        xt.error_rate,
        par.error_rate
    );
    // And pay only a modest duration premium.
    assert!(xt.duration_ns <= 2 * par.duration_ns);
}

#[test]
fn all_three_schedulers_rank_correctly_on_hot_path() {
    // Ground-truth context; the ranking Par > Serial > Xtalk (in error)
    // holds on strongly-affected paths.
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let par = swap_bell_error(&device, &ctx, &ParSched::new(), 6, 13, 512, 11).unwrap();
    let ser = swap_bell_error(&device, &ctx, &SerialSched::new(), 6, 13, 512, 11).unwrap();
    let xt = swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), 6, 13, 512, 11).unwrap();
    assert!(xt.error_rate < par.error_rate, "xt {} par {}", xt.error_rate, par.error_rate);
    assert!(xt.error_rate <= ser.error_rate + 0.03, "xt {} ser {}", xt.error_rate, ser.error_rate);
    // Durations: Serial longest, Par shortest.
    assert!(ser.duration_ns > xt.duration_ns);
    assert!(xt.duration_ns >= par.duration_ns);
}

#[test]
fn crosstalk_free_devices_see_no_downside() {
    // On a crosstalk-free device XtalkSched degenerates to ParSched:
    // identical schedule, identical measured error.
    let device = Device::line(6, 9);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let par = swap_bell_error(&device, &ctx, &ParSched::new(), 0, 5, 512, 3).unwrap();
    let xt = swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), 0, 5, 512, 3).unwrap();
    assert_eq!(par.duration_ns, xt.duration_ns);
    assert!((par.error_rate - xt.error_rate).abs() < 1e-9);
}

#[test]
fn bernstein_vazirani_benefits_from_mitigation() {
    // A BV instance whose oracle CNOTs funnel into an ancilla placed so
    // that parallel oracle gates cross the planted hot pairs.
    use crosstalk_mitigation::core::bench_circuits::bernstein_vazirani;
    use crosstalk_mitigation::core::pipeline::hidden_shift_error;

    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let logical = bernstein_vazirani(4, &[0, 1, 2, 3], 0b101);
    let native = crosstalk_mitigation::core::transpile::lower_to_native(&logical);
    let mut padded = crosstalk_mitigation::ir::Circuit::new(20, native.num_clbits());
    padded.try_extend(&native).unwrap();
    // Place the program right on the hot region.
    let layout = crosstalk_mitigation::core::layout::Layout::from_mapping(
        &[15, 10, 12, 11, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 14, 16, 17, 18, 19],
        20,
    )
    .unwrap();
    let routed =
        crosstalk_mitigation::core::layout::route(&padded, device.topology(), layout).unwrap();

    let par = hidden_shift_error(&device, &ctx, &ParSched::new(), &routed.circuit, 0b101, 2048, 3)
        .unwrap();
    let xt = hidden_shift_error(
        &device,
        &ctx,
        &XtalkSched::new(0.5),
        &routed.circuit,
        0b101,
        2048,
        3,
    )
    .unwrap();
    assert!(par > 0.0 && par < 1.0, "par error {par}");
    assert!(xt <= par + 0.03, "xtalk {xt} should not lose to par {par}");
}
