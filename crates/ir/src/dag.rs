//! Data-dependency DAG of a circuit.

use crate::Circuit;

/// A compact bitset over instruction indices.
#[derive(Clone, PartialEq, Eq, Debug)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)] }
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
    fn or_assign(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// The data-dependency DAG of a [`Circuit`].
///
/// Node `i` is instruction `i` of the circuit (program order is a valid
/// topological order). There is an edge `i → j` when `j` is the next
/// instruction after `i` on some shared qubit. Barriers participate like
/// ordinary instructions, which is how they enforce orderings.
///
/// The DAG answers the queries the scheduler needs:
/// ancestor/descendant tests ([`Dag::depends_on`]), the `CanOlp` sets of the
/// paper ([`Dag::can_overlap_set`]), and ASAP layering ([`Dag::layers`]).
///
/// ```
/// use xtalk_ir::Circuit;
/// let mut c = Circuit::new(3, 0);
/// c.cx(0, 1).cx(1, 2).h(0);
/// let dag = c.dag();
/// assert!(dag.depends_on(1, 0));       // cx(1,2) after cx(0,1)
/// assert!(dag.can_overlap(1, 2));      // h(0) independent of cx(1,2)
/// assert_eq!(dag.layers(), vec![vec![0], vec![1, 2]]);
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    len: usize,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    ancestors: Vec<BitSet>,
}

impl Dag {
    /// Builds the DAG for `circuit`.
#[allow(clippy::needless_range_loop)]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

        for (i, instr) in circuit.iter().enumerate() {
            for q in instr.qubits() {
                if let Some(p) = last_on_qubit[q.index()] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q.index()] = Some(i);
            }
        }

        // Transitive closure in topological (program) order.
        let mut ancestors: Vec<BitSet> = Vec::with_capacity(n);
        for i in 0..n {
            let mut set = BitSet::new(n);
            // Clone the predecessor list to appease the borrow checker while
            // we mutate `ancestors`.
            for &p in &preds[i] {
                set.set(p);
                let pa = ancestors[p].clone();
                set.or_assign(&pa);
            }
            ancestors.push(set);
        }

        Dag { len: n, preds, succs, ancestors }
    }

    /// Number of nodes (instructions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Direct predecessors of node `i` (instructions it immediately follows
    /// on some qubit).
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of node `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// `true` if instruction `node` transitively depends on `ancestor`
    /// (i.e. `ancestor` must finish before `node` starts).
    pub fn depends_on(&self, node: usize, ancestor: usize) -> bool {
        self.ancestors[node].get(ancestor)
    }

    /// `true` if `i` and `j` are unrelated in the dependency order: neither
    /// is an ancestor of the other, so a scheduler may overlap them in time.
    pub fn can_overlap(&self, i: usize, j: usize) -> bool {
        i != j && !self.depends_on(i, j) && !self.depends_on(j, i)
    }

    /// The paper's `CanOlp(g_i)`: all instruction indices that may overlap
    /// with instruction `i` in some legal schedule.
    pub fn can_overlap_set(&self, i: usize) -> Vec<usize> {
        (0..self.len).filter(|&j| self.can_overlap(i, j)).collect()
    }

    /// ASAP layering: `layers()[k]` holds the instructions whose longest
    /// dependency chain from an input has length `k`.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.len];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.len {
            let lv = self.preds[i].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
            level[i] = lv;
            if out.len() <= lv {
                out.resize_with(lv + 1, Vec::new);
            }
            out[lv].push(i);
        }
        out
    }

    /// Longest path length (in instructions) ending at node `i`, counting
    /// `i` itself. Equivalent to `critical path depth` of the node.
    pub fn chain_length(&self, i: usize) -> usize {
        // Recompute per call; the DAG is small and this keeps the structure
        // immutable.
        let mut level = vec![0usize; self.len];
        for k in 0..=i {
            level[k] = self.preds[k].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
        }
        level[i] + 1
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.preds[i].is_empty()).collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.succs[i].is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        c
    }

    #[test]
    fn edges_follow_qubits() {
        let dag = chain3().dag();
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        // cx(0,1) #2 depends on #0 via q0 and on #1 via q1.
        let mut p = dag.predecessors(2).to_vec();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn transitive_dependencies() {
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        let dag = c.dag();
        assert!(dag.depends_on(2, 0));
        assert!(!dag.depends_on(0, 2));
        assert!(!dag.can_overlap(0, 2));
    }

    #[test]
    fn parallel_gates_can_overlap() {
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3);
        let dag = c.dag();
        assert!(dag.can_overlap(0, 1));
        assert_eq!(dag.can_overlap_set(0), vec![1]);
    }

    #[test]
    fn barrier_orders_unrelated_gates() {
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).barrier_all().cx(2, 3);
        let dag = c.dag();
        // Without the barrier these would be independent.
        assert!(dag.depends_on(2, 0));
        assert!(!dag.can_overlap(0, 2));
    }

    #[test]
    fn layers_match_asap() {
        let mut c = Circuit::new(6, 0);
        c.cx(0, 1).cx(2, 3).cx(4, 5).cx(1, 2).cx(3, 4);
        let dag = c.dag();
        let layers = dag.layers();
        assert_eq!(layers[0], vec![0, 1, 2]);
        assert_eq!(layers[1], vec![3, 4]);
    }

    #[test]
    fn sources_and_sinks() {
        let dag = chain3().dag();
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![2]);
    }

    #[test]
    fn self_is_not_overlap_candidate() {
        let dag = chain3().dag();
        assert!(!dag.can_overlap(1, 1));
    }

    #[test]
    fn chain_length_counts_nodes() {
        let dag = chain3().dag();
        assert_eq!(dag.chain_length(0), 1);
        assert_eq!(dag.chain_length(2), 3);
    }

    #[test]
    fn empty_circuit() {
        let dag = Circuit::new(2, 0).dag();
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
    }
}
