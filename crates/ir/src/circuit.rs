//! Ordered instruction lists with a builder API.

use crate::{Clbit, Dag, Gate, Instruction, IrError, Qubit};
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit: a fixed register of qubits/clbits and an ordered list
/// of [`Instruction`]s.
///
/// Program order is significant (it is a topological order of the data
/// dependencies) but carries no timing; timing is assigned by a scheduler,
/// producing a [`crate::ScheduledCircuit`].
///
/// Builder methods (`h`, `cx`, `measure`, …) take anything convertible into
/// [`Qubit`] and return `&mut Self` for chaining:
///
/// ```
/// use xtalk_ir::Circuit;
/// let mut bell = Circuit::new(2, 2);
/// bell.h(0).cx(0, 1).measure_all();
/// assert_eq!(bell.len(), 4);
/// assert_eq!(bell.count_gate("cx"), 1);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and `num_clbits`
    /// classical bits.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit { num_qubits, num_clbits, instructions: Vec::new() }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits in the register.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Appends an instruction after validating its bit indices.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::QubitOutOfRange`] / [`IrError::ClbitOutOfRange`]
    /// if the instruction references bits outside the registers.
    pub fn try_push(&mut self, instr: Instruction) -> Result<(), IrError> {
        for q in instr.qubits() {
            if q.index() >= self.num_qubits {
                return Err(IrError::QubitOutOfRange { qubit: q.index(), width: self.num_qubits });
            }
        }
        if let Some(c) = instr.clbit() {
            if c.index() >= self.num_clbits {
                return Err(IrError::ClbitOutOfRange { clbit: c.index(), width: self.num_clbits });
            }
        }
        self.instructions.push(instr);
        Ok(())
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction references out-of-range bits; use
    /// [`Circuit::try_push`] for fallible insertion.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.try_push(instr).expect("instruction out of register range");
        self
    }

    fn push1(&mut self, g: Gate, q: impl Into<Qubit>) -> &mut Self {
        self.push(Instruction::single_qubit(g, q.into()))
    }

    fn push2(&mut self, g: Gate, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.push(Instruction::two_qubit(g, a.into(), b.into()))
    }

    /// Appends an identity (explicit idle) on `q`.
    pub fn id(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::I, q)
    }
    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::X, q)
    }
    /// Appends a Pauli-Y on `q`.
    pub fn y(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Y, q)
    }
    /// Appends a Pauli-Z on `q`.
    pub fn z(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Z, q)
    }
    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::H, q)
    }
    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::S, q)
    }
    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Sdg, q)
    }
    /// Appends a T gate on `q`.
    pub fn t(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::T, q)
    }
    /// Appends a T† gate on `q`.
    pub fn tdg(&mut self, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Tdg, q)
    }
    /// Appends `u1(lambda)` on `q`.
    pub fn u1(&mut self, lambda: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::U1(lambda), q)
    }
    /// Appends `u2(phi, lambda)` on `q`.
    pub fn u2(&mut self, phi: f64, lambda: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::U2(phi, lambda), q)
    }
    /// Appends `u3(theta, phi, lambda)` on `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::U3(theta, phi, lambda), q)
    }
    /// Appends `rx(angle)` on `q`.
    pub fn rx(&mut self, angle: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Rx(angle), q)
    }
    /// Appends `ry(angle)` on `q`.
    pub fn ry(&mut self, angle: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Ry(angle), q)
    }
    /// Appends `rz(angle)` on `q`.
    pub fn rz(&mut self, angle: f64, q: impl Into<Qubit>) -> &mut Self {
        self.push1(Gate::Rz(angle), q)
    }
    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: impl Into<Qubit>, t: impl Into<Qubit>) -> &mut Self {
        self.push2(Gate::Cx, c, t)
    }
    /// Appends a CZ on `a`, `b`.
    pub fn cz(&mut self, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.push2(Gate::Cz, a, b)
    }
    /// Appends a SWAP on `a`, `b`.
    pub fn swap(&mut self, a: impl Into<Qubit>, b: impl Into<Qubit>) -> &mut Self {
        self.push2(Gate::Swap, a, b)
    }
    /// Appends a measurement of `q` into classical bit `c`.
    pub fn measure(&mut self, q: impl Into<Qubit>, c: impl Into<Clbit>) -> &mut Self {
        self.push(Instruction::measure(q.into(), c.into()))
    }
    /// Appends a barrier across the given qubits.
    pub fn barrier<I, Q>(&mut self, qubits: I) -> &mut Self
    where
        I: IntoIterator<Item = Q>,
        Q: Into<Qubit>,
    {
        self.push(Instruction::barrier(qubits.into_iter().map(Into::into)))
    }
    /// Appends a barrier across every qubit in the register.
    pub fn barrier_all(&mut self) -> &mut Self {
        let n = self.num_qubits as u32;
        self.barrier((0..n).map(Qubit::new))
    }
    /// Measures qubit `i` into clbit `i` for every qubit.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer classical bits than qubits.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all needs at least as many clbits as qubits"
        );
        for i in 0..self.num_qubits {
            self.measure(i as u32, i as u32);
        }
        self
    }

    /// Appends every instruction of `other` (registers must be no wider).
    ///
    /// # Errors
    ///
    /// Returns an error if `other` references bits beyond this circuit's
    /// registers.
    pub fn try_extend(&mut self, other: &Circuit) -> Result<(), IrError> {
        for instr in other.iter() {
            self.try_push(instr.clone())?;
        }
        Ok(())
    }

    /// Returns a new circuit applying this circuit's unitary instructions in
    /// reverse order with each gate inverted.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotInvertible`] if the circuit contains
    /// measurements (barriers are preserved in reversed position).
    pub fn inverse(&self) -> Result<Circuit, IrError> {
        let mut inv = Circuit::new(self.num_qubits, self.num_clbits);
        for instr in self.instructions.iter().rev() {
            if instr.gate().is_barrier() {
                inv.push(instr.clone());
            } else {
                let i = instr
                    .inverse()
                    .ok_or_else(|| IrError::NotInvertible { gate: instr.gate().name() })?;
                inv.push(i);
            }
        }
        Ok(inv)
    }

    /// Circuit depth: the number of layers when instructions are greedily
    /// packed as early as data dependencies allow. Barriers participate in
    /// the dependency structure but do not add a layer by themselves.
    pub fn depth(&self) -> usize {
        let mut level: Vec<usize> = vec![0; self.num_qubits];
        let mut depth = 0;
        for instr in &self.instructions {
            let lv = instr.qubits().iter().map(|q| level[q.index()]).max().unwrap_or(0);
            let next = if instr.gate().is_barrier() { lv } else { lv + 1 };
            for q in instr.qubits() {
                level[q.index()] = next;
            }
            depth = depth.max(next);
        }
        depth
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.gate().is_two_qubit()).count()
    }

    /// Counts instructions by gate mnemonic.
    pub fn count_ops(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for i in &self.instructions {
            *m.entry(i.gate().name()).or_insert(0) += 1;
        }
        m
    }

    /// Number of instructions whose gate mnemonic is `name`.
    pub fn count_gate(&self, name: &str) -> usize {
        self.instructions.iter().filter(|i| i.gate().name() == name).count()
    }

    /// The set of qubits that appear in at least one instruction.
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut seen = vec![false; self.num_qubits];
        for i in &self.instructions {
            for q in i.qubits() {
                seen[q.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(i, _)| Qubit::from(i))
            .collect()
    }

    /// Builds the data-dependency DAG for this circuit.
    pub fn dag(&self) -> Dag {
        Dag::from_circuit(self)
    }

    /// Expands every `swap` into its three-CNOT decomposition
    /// (`swap a,b := cx a,b; cx b,a; cx a,b`), returning a new circuit.
    pub fn decompose_swaps(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits, self.num_clbits);
        for instr in &self.instructions {
            if matches!(instr.gate(), Gate::Swap) {
                let (a, b) = (instr.qubits()[0], instr.qubits()[1]);
                out.cx(a, b).cx(b, a).cx(a, b);
            } else {
                out.push(instr.clone());
            }
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit<{} qubits, {} clbits>", self.num_qubits, self.num_clbits)?;
        for (i, instr) in self.instructions.iter().enumerate() {
            writeln!(f, "  {i:>3}: {instr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).barrier_all().measure_all();
        assert_eq!(c.len(), 7);
        assert_eq!(c.count_gate("cx"), 2);
        assert_eq!(c.count_gate("measure"), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(1, 0);
        assert!(matches!(
            c.try_push(Instruction::single_qubit(Gate::H, Qubit::new(1))),
            Err(IrError::QubitOutOfRange { qubit: 1, width: 1 })
        ));
        assert!(matches!(
            c.try_push(Instruction::measure(Qubit::new(0), Clbit::new(0))),
            Err(IrError::ClbitOutOfRange { .. })
        ));
    }

    #[test]
    fn depth_counts_layers() {
        let mut c = Circuit::new(3, 0);
        // Layer 1: h0 h1; layer 2: cx01; layer 3: cx12.
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn barriers_do_not_add_depth_but_order() {
        let mut a = Circuit::new(2, 0);
        a.h(0).h(1);
        assert_eq!(a.depth(), 1);
        let mut b = Circuit::new(2, 0);
        b.h(0).barrier_all().h(1);
        // h1 must come after the barrier, which comes after h0.
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2, 0);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.instructions()[0].gate(), &Gate::Cx);
        assert_eq!(inv.instructions()[1].gate(), &Gate::Sdg);
        assert_eq!(inv.instructions()[2].gate(), &Gate::H);
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::new(1, 1);
        c.measure(0, 0);
        assert!(matches!(c.inverse(), Err(IrError::NotInvertible { .. })));
    }

    #[test]
    fn swap_decomposition() {
        let mut c = Circuit::new(2, 0);
        c.swap(0, 1);
        let d = c.decompose_swaps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.count_gate("cx"), 3);
        assert_eq!(d.instructions()[1].qubits(), &[Qubit::new(1), Qubit::new(0)]);
    }

    #[test]
    fn active_qubits_skips_idle() {
        let mut c = Circuit::new(4, 0);
        c.h(0).cx(2, 3);
        assert_eq!(c.active_qubits(), vec![Qubit::new(0), Qubit::new(2), Qubit::new(3)]);
    }

    #[test]
    fn count_ops_by_name() {
        let mut c = Circuit::new(2, 2);
        c.h(0).h(1).cx(0, 1).measure_all();
        let ops = c.count_ops();
        assert_eq!(ops["h"], 2);
        assert_eq!(ops["cx"], 1);
        assert_eq!(ops["measure"], 2);
    }

    #[test]
    fn extend_appends() {
        let mut a = Circuit::new(2, 0);
        a.h(0);
        let mut b = Circuit::new(2, 0);
        b.cx(0, 1);
        a.try_extend(&b).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "measure_all")]
    fn measure_all_requires_clbits() {
        Circuit::new(2, 1).measure_all();
    }
}
