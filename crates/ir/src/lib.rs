//! Quantum circuit intermediate representation.
//!
//! This crate provides the program representation used throughout the
//! crosstalk-mitigation toolchain:
//!
//! * [`Qubit`] / [`Clbit`] — typed indices for quantum and classical bits.
//! * [`Gate`] — the gate set (IBMQ-style basis plus common conveniences).
//! * [`Instruction`] — a gate applied to concrete qubits.
//! * [`Circuit`] — an ordered instruction list with a builder API.
//! * [`Dag`] — the data-dependency DAG of a circuit (ancestors, descendants,
//!   layers, and the `CanOlp` overlap sets from the paper).
//! * [`ScheduledCircuit`] — a circuit with explicit start times, the output
//!   of an instruction scheduler.
//! * [`qasm`] — OpenQASM 2.0 export/import.
//!
//! # Example
//!
//! ```
//! use xtalk_ir::Circuit;
//!
//! let mut c = Circuit::new(2, 2);
//! c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
//! assert_eq!(c.len(), 4);
//! assert_eq!(c.depth(), 3);
//! let dag = c.dag();
//! assert!(dag.depends_on(1, 0)); // the CX depends on the H
//! ```

mod circuit;
mod dag;
pub mod draw;
mod error;
mod gate;
mod instruction;
pub mod qasm;
mod qubit;
mod scheduled;

pub use circuit::Circuit;
pub use dag::Dag;
pub use error::IrError;
pub use gate::Gate;
pub use instruction::Instruction;
pub use qubit::{Clbit, Qubit};
pub use scheduled::{ScheduleSlot, ScheduledCircuit};
