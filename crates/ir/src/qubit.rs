//! Typed indices for quantum and classical bits.

use std::fmt;

/// Index of a physical or logical qubit.
///
/// A plain `u32` newtype ([C-NEWTYPE]) so that qubit indices cannot be
/// confused with classical-bit indices or instruction indices.
///
/// ```
/// use xtalk_ir::Qubit;
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// Returns the raw index as a `usize`, convenient for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(i: u32) -> Self {
        Qubit(i)
    }
}

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit(u32::try_from(i).expect("qubit index overflows u32"))
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> usize {
        q.index()
    }
}

impl From<i32> for Qubit {
    /// Accepts non-negative integer literals (`circuit.h(0)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    fn from(i: i32) -> Self {
        Qubit(u32::try_from(i).expect("qubit index must be non-negative"))
    }
}

/// Index of a classical (readout) bit.
///
/// ```
/// use xtalk_ir::Clbit;
/// assert_eq!(Clbit::new(1).to_string(), "c1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Clbit(u32);

impl Clbit {
    /// Creates a classical-bit index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Clbit(index)
    }

    /// Returns the raw index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for Clbit {
    fn from(i: u32) -> Self {
        Clbit(i)
    }
}

impl From<usize> for Clbit {
    fn from(i: usize) -> Self {
        Clbit(u32::try_from(i).expect("clbit index overflows u32"))
    }
}

impl From<i32> for Clbit {
    /// Accepts non-negative integer literals (`circuit.measure(0, 0)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    fn from(i: i32) -> Self {
        Clbit(u32::try_from(i).expect("clbit index must be non-negative"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_roundtrip() {
        let q = Qubit::new(17);
        assert_eq!(q.index(), 17);
        assert_eq!(q.raw(), 17);
        assert_eq!(Qubit::from(17u32), q);
        assert_eq!(Qubit::from(17usize), q);
        assert_eq!(usize::from(q), 17);
    }

    #[test]
    fn qubit_ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
        assert_eq!(Qubit::new(5), Qubit::new(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Clbit::new(12).to_string(), "c12");
    }

    #[test]
    fn clbit_roundtrip() {
        let c = Clbit::new(4);
        assert_eq!(c.index(), 4);
        assert_eq!(Clbit::from(4u32), c);
        assert_eq!(Clbit::from(4usize), c);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Qubit::default(), Qubit::new(0));
        assert_eq!(Clbit::default(), Clbit::new(0));
    }
}
