//! Circuits with explicit start times.

use crate::{Circuit, IrError, Qubit};
use std::fmt;

/// The time slot assigned to one instruction: a start time and a duration,
/// both in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScheduleSlot {
    /// Start time (ns).
    pub start: u64,
    /// Duration (ns). Virtual gates and barriers have duration 0.
    pub duration: u64,
}

impl ScheduleSlot {
    /// Creates a slot.
    pub const fn new(start: u64, duration: u64) -> Self {
        ScheduleSlot { start, duration }
    }

    /// Finish time (`start + duration`).
    pub const fn finish(self) -> u64 {
        self.start + self.duration
    }

    /// `true` if two slots overlap in time with positive measure (half-open
    /// interval intersection: `[s, s+d)`). Zero-duration slots never overlap
    /// anything.
    pub const fn overlaps(self, other: ScheduleSlot) -> bool {
        self.duration > 0
            && other.duration > 0
            && self.start < other.finish()
            && other.start < self.finish()
    }
}

/// A [`Circuit`] together with one [`ScheduleSlot`] per instruction — the
/// output of an instruction scheduler and the input to the noisy executor.
///
/// ```
/// use xtalk_ir::{Circuit, ScheduleSlot, ScheduledCircuit};
/// let mut c = Circuit::new(2, 0);
/// c.cx(0, 1).cx(0, 1);
/// let sched = ScheduledCircuit::new(
///     c,
///     vec![ScheduleSlot::new(0, 300), ScheduleSlot::new(300, 300)],
/// ).unwrap();
/// assert_eq!(sched.makespan(), 600);
/// sched.validate().unwrap();
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct ScheduledCircuit {
    circuit: Circuit,
    slots: Vec<ScheduleSlot>,
}

impl ScheduledCircuit {
    /// Pairs a circuit with its slots.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ScheduleLengthMismatch`] if the slot count does
    /// not match the instruction count.
    pub fn new(circuit: Circuit, slots: Vec<ScheduleSlot>) -> Result<Self, IrError> {
        if circuit.len() != slots.len() {
            return Err(IrError::ScheduleLengthMismatch {
                slots: slots.len(),
                instructions: circuit.len(),
            });
        }
        Ok(ScheduledCircuit { circuit, slots })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The slot of instruction `i`.
    pub fn slot(&self, i: usize) -> ScheduleSlot {
        self.slots[i]
    }

    /// All slots, indexed like the circuit's instructions.
    pub fn slots(&self) -> &[ScheduleSlot] {
        &self.slots
    }

    /// Consumes the schedule, returning its parts.
    pub fn into_parts(self) -> (Circuit, Vec<ScheduleSlot>) {
        (self.circuit, self.slots)
    }

    /// Total schedule length: the latest finish time (0 for an empty
    /// circuit).
    pub fn makespan(&self) -> u64 {
        self.slots.iter().map(|s| s.finish()).max().unwrap_or(0)
    }

    /// Start of the first non-barrier instruction touching `q`, if any.
    pub fn qubit_first_start(&self, q: Qubit) -> Option<u64> {
        self.circuit
            .iter()
            .enumerate()
            .filter(|(_, ins)| !ins.gate().is_barrier() && ins.acts_on(q))
            .map(|(i, _)| self.slots[i].start)
            .min()
    }

    /// Finish of the last non-barrier instruction touching `q`, if any.
    pub fn qubit_last_finish(&self, q: Qubit) -> Option<u64> {
        self.circuit
            .iter()
            .enumerate()
            .filter(|(_, ins)| !ins.gate().is_barrier() && ins.acts_on(q))
            .map(|(i, _)| self.slots[i].finish())
            .max()
    }

    /// The paper's qubit lifetime `q.t` (Eq. 9): time between the first
    /// operation's start and the last operation's finish on `q`; 0 if the
    /// qubit is idle for the whole program.
    pub fn qubit_lifetime(&self, q: Qubit) -> u64 {
        match (self.qubit_first_start(q), self.qubit_last_finish(q)) {
            (Some(s), Some(f)) => f - s,
            _ => 0,
        }
    }

    /// All unordered pairs `(i, j)` of *two-qubit* instructions that overlap
    /// in time (sweep line over start-sorted intervals, so densely
    /// parallel schedules stay cheap). This is what the crosstalk noise
    /// model consumes; pairs are reported with `i` starting no later
    /// than `j` (ties by index).
    pub fn overlapping_two_qubit_pairs(&self) -> Vec<(usize, usize)> {
        let mut idx: Vec<usize> = self
            .circuit
            .iter()
            .enumerate()
            .filter(|&(i, ins)| ins.gate().is_two_qubit() && self.slots[i].duration > 0)
            .map(|(i, _)| i)
            .collect();
        idx.sort_by_key(|&i| (self.slots[i].start, i));
        let mut out = Vec::new();
        // Active set of intervals whose finish exceeds the sweep point.
        let mut active: Vec<usize> = Vec::new();
        for &j in &idx {
            let start_j = self.slots[j].start;
            active.retain(|&i| self.slots[i].finish() > start_j);
            for &i in &active {
                debug_assert!(self.slots[i].overlaps(self.slots[j]));
                out.push((i, j));
            }
            active.push(j);
        }
        out
    }

    /// Checks schedule legality.
    ///
    /// # Errors
    ///
    /// * [`IrError::ScheduleQubitOverlap`] — two instructions sharing a
    ///   qubit occupy overlapping slots.
    /// * [`IrError::ScheduleDependencyViolation`] — a dependent instruction
    ///   starts before its predecessor finishes.
    pub fn validate(&self) -> Result<(), IrError> {
        let dag = self.circuit.dag();
        for i in 0..self.circuit.len() {
            for &p in dag.predecessors(i) {
                if self.slots[i].start < self.slots[p].finish() {
                    return Err(IrError::ScheduleDependencyViolation { before: p, after: i });
                }
            }
        }
        // Qubit-exclusivity: any two instructions on a shared qubit must not
        // overlap (dependencies already order them, but a corrupt schedule
        // could still overlap independent re-uses through barriers).
        let instrs = self.circuit.instructions();
        for i in 0..instrs.len() {
            if instrs[i].gate().is_barrier() {
                continue;
            }
            for j in i + 1..instrs.len() {
                if instrs[j].gate().is_barrier() {
                    continue;
                }
                if instrs[i].shares_qubit(&instrs[j]) && self.slots[i].overlaps(self.slots[j]) {
                    let q = instrs[i]
                        .qubits()
                        .iter()
                        .find(|q| instrs[j].acts_on(**q))
                        .expect("shared qubit exists");
                    return Err(IrError::ScheduleQubitOverlap {
                        first: i,
                        second: j,
                        qubit: q.index(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Shifts every slot right so the schedule ends exactly at `end`.
    ///
    /// Used to model IBMQ right-alignment, where readouts happen
    /// simultaneously at the end of the program.
    ///
    /// # Panics
    ///
    /// Panics if `end` is earlier than the current makespan.
    pub fn right_align_to(&mut self, end: u64) {
        let span = self.makespan();
        assert!(end >= span, "cannot right-align to earlier than makespan");
        let shift = end - span;
        for s in &mut self.slots {
            s.start += shift;
        }
    }
}

impl fmt::Display for ScheduledCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule<makespan {} ns>", self.makespan())?;
        let mut order: Vec<usize> = (0..self.circuit.len()).collect();
        order.sort_by_key(|&i| (self.slots[i].start, i));
        for i in order {
            let s = self.slots[i];
            writeln!(
                f,
                "  [{:>6} .. {:>6}] {}",
                s.start,
                s.finish(),
                self.circuit.instructions()[i]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cx() -> Circuit {
        let mut c = Circuit::new(2, 0);
        c.cx(0, 1).cx(0, 1);
        c
    }

    #[test]
    fn length_mismatch_rejected() {
        let c = two_cx();
        assert!(matches!(
            ScheduledCircuit::new(c, vec![ScheduleSlot::new(0, 100)]),
            Err(IrError::ScheduleLengthMismatch { slots: 1, instructions: 2 })
        ));
    }

    #[test]
    fn overlap_detection() {
        let a = ScheduleSlot::new(0, 100);
        let b = ScheduleSlot::new(50, 100);
        let c = ScheduleSlot::new(100, 100);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c)); // touching endpoints do not overlap
        assert!(!ScheduleSlot::new(10, 0).overlaps(a)); // zero duration
    }

    #[test]
    fn dependency_violation_detected() {
        let s = ScheduledCircuit::new(
            two_cx(),
            vec![ScheduleSlot::new(0, 300), ScheduleSlot::new(100, 300)],
        )
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(IrError::ScheduleDependencyViolation { before: 0, after: 1 })
        ));
    }

    #[test]
    fn valid_schedule_passes() {
        let s = ScheduledCircuit::new(
            two_cx(),
            vec![ScheduleSlot::new(0, 300), ScheduleSlot::new(300, 300)],
        )
        .unwrap();
        s.validate().unwrap();
        assert_eq!(s.makespan(), 600);
    }

    #[test]
    fn lifetimes() {
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).h(2);
        let s = ScheduledCircuit::new(
            c,
            vec![ScheduleSlot::new(100, 300), ScheduleSlot::new(0, 50)],
        )
        .unwrap();
        assert_eq!(s.qubit_lifetime(Qubit::new(0)), 300);
        assert_eq!(s.qubit_lifetime(Qubit::new(2)), 50);
        assert_eq!(s.qubit_first_start(Qubit::new(2)), Some(0));
    }

    #[test]
    fn idle_qubit_has_zero_lifetime() {
        let mut c = Circuit::new(3, 0);
        c.h(0);
        let s = ScheduledCircuit::new(c, vec![ScheduleSlot::new(0, 50)]).unwrap();
        assert_eq!(s.qubit_lifetime(Qubit::new(2)), 0);
    }

    #[test]
    fn overlapping_two_qubit_pairs_found() {
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3).h(0);
        let s = ScheduledCircuit::new(
            c,
            vec![
                ScheduleSlot::new(0, 300),
                ScheduleSlot::new(100, 300),
                ScheduleSlot::new(300, 50),
            ],
        )
        .unwrap();
        assert_eq!(s.overlapping_two_qubit_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn right_align_shifts_all() {
        let mut s = ScheduledCircuit::new(
            two_cx(),
            vec![ScheduleSlot::new(0, 300), ScheduleSlot::new(300, 300)],
        )
        .unwrap();
        s.right_align_to(1000);
        assert_eq!(s.slot(0).start, 400);
        assert_eq!(s.makespan(), 1000);
        s.validate().unwrap();
    }

    #[test]
    fn barrier_slots_are_ignored_by_lifetime() {
        let mut c = Circuit::new(2, 0);
        c.barrier_all().cx(0, 1);
        let s = ScheduledCircuit::new(
            c,
            vec![ScheduleSlot::new(0, 0), ScheduleSlot::new(500, 300)],
        )
        .unwrap();
        assert_eq!(s.qubit_first_start(Qubit::new(0)), Some(500));
        assert_eq!(s.qubit_lifetime(Qubit::new(0)), 300);
    }
}
