//! The gate set.

use std::fmt;

/// A quantum operation kind.
///
/// The set mirrors the IBMQ OpenQASM 2.0 basis used by the paper's toolflow
/// (`u1`/`u2`/`u3` single-qubit gates, `cx`, `measure`, `barrier`) plus the
/// named Clifford/Pauli gates that the characterization layer synthesizes
/// into that basis.
///
/// Angles are in radians.
///
/// ```
/// use xtalk_ir::Gate;
/// assert_eq!(Gate::Cx.num_qubits(), 2);
/// assert!(Gate::Cx.is_two_qubit());
/// assert_eq!(Gate::H.inverse(), Some(Gate::H));
/// assert_eq!(Gate::S.inverse(), Some(Gate::Sdg));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// `u1(λ) = diag(1, e^{iλ})` — virtual-Z style phase.
    U1(f64),
    /// `u2(φ, λ)` — one physical X90 pulse.
    U2(f64, f64),
    /// `u3(θ, φ, λ)` — generic single-qubit rotation (two X90 pulses).
    U3(f64, f64, f64),
    /// Rotation about X.
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z.
    Rz(f64),
    /// Controlled-NOT. Qubit order is `[control, target]`.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP (decomposes to three CNOTs on hardware).
    Swap,
    /// Readout of one qubit into one classical bit.
    Measure,
    /// Scheduling barrier across a set of qubits; occupies zero time but
    /// orders the instructions on those qubits.
    Barrier,
}

impl Gate {
    /// Number of qubits the gate acts on; `None` for [`Gate::Barrier`],
    /// which takes any number of qubits.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Barrier => 0,
            Gate::Cx | Gate::Cz | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// `true` for two-qubit entangling gates (`cx`, `cz`, `swap`).
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx | Gate::Cz | Gate::Swap)
    }

    /// `true` for [`Gate::Measure`].
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::Measure)
    }

    /// `true` for [`Gate::Barrier`].
    pub fn is_barrier(&self) -> bool {
        matches!(self, Gate::Barrier)
    }

    /// `true` for single-qubit unitary gates (excludes measure/barrier).
    pub fn is_single_qubit(&self) -> bool {
        !self.is_two_qubit() && !self.is_measurement() && !self.is_barrier()
    }

    /// `true` if the gate is a unitary operation (not measure/barrier).
    pub fn is_unitary(&self) -> bool {
        !self.is_measurement() && !self.is_barrier()
    }

    /// The inverse gate, if it is expressible in this gate set.
    ///
    /// Returns `None` for non-unitary operations (measure, barrier).
    pub fn inverse(&self) -> Option<Gate> {
        Some(match self {
            Gate::I => Gate::I,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::H => Gate::H,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::U1(l) => Gate::U1(-l),
            Gate::U2(phi, lam) => {
                // u2(φ,λ)⁻¹ = u3(-π/2, -λ, -φ) = u2(-λ-π, -φ+π) up to phase;
                // express exactly as u3 for clarity.
                Gate::U3(-std::f64::consts::FRAC_PI_2, -lam, -phi)
            }
            Gate::U3(t, phi, lam) => Gate::U3(-t, -lam, -phi),
            Gate::Rx(a) => Gate::Rx(-a),
            Gate::Ry(a) => Gate::Ry(-a),
            Gate::Rz(a) => Gate::Rz(-a),
            Gate::Cx => Gate::Cx,
            Gate::Cz => Gate::Cz,
            Gate::Swap => Gate::Swap,
            Gate::Measure | Gate::Barrier => return None,
        })
    }

    /// Lower-case mnemonic used in OpenQASM output and `Display`.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::U1(_) => "u1",
            Gate::U2(_, _) => "u2",
            Gate::U3(_, _, _) => "u3",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Measure => "measure",
            Gate::Barrier => "barrier",
        }
    }

    /// Gate parameters (rotation angles), empty for non-parameterized gates.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::U1(l) => vec![l],
            Gate::U2(p, l) => vec![p, l],
            Gate::U3(t, p, l) => vec![t, p, l],
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) => vec![a],
            _ => Vec::new(),
        }
    }

    /// `true` if the gate is "virtual" on IBMQ hardware: implemented as a
    /// frame change with zero duration and essentially zero error
    /// (`u1`/`rz`/`z`/`s`/`t` and their inverses, plus identity and barrier).
    pub fn is_virtual(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::U1(_)
                | Gate::Rz(_)
                | Gate::Barrier
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.params();
        if ps.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined = ps
                .iter()
                .map(|p| format!("{p:.6}"))
                .collect::<Vec<_>>()
                .join(",");
            write!(f, "{}({})", self.name(), joined)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arities() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert_eq!(Gate::Swap.num_qubits(), 2);
        assert_eq!(Gate::Measure.num_qubits(), 1);
        assert_eq!(Gate::Barrier.num_qubits(), 0);
    }

    #[test]
    fn classification() {
        assert!(Gate::Cx.is_two_qubit());
        assert!(!Gate::H.is_two_qubit());
        assert!(Gate::Measure.is_measurement());
        assert!(Gate::Barrier.is_barrier());
        assert!(Gate::U3(1.0, 2.0, 3.0).is_single_qubit());
        assert!(!Gate::Measure.is_single_qubit());
        assert!(Gate::Cx.is_unitary());
        assert!(!Gate::Measure.is_unitary());
    }

    #[test]
    fn self_inverse_gates() {
        for g in [Gate::I, Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::Cx, Gate::Cz, Gate::Swap] {
            assert_eq!(g.inverse(), Some(g), "{g} should be self-inverse");
        }
    }

    #[test]
    fn phase_inverses() {
        assert_eq!(Gate::S.inverse(), Some(Gate::Sdg));
        assert_eq!(Gate::Tdg.inverse(), Some(Gate::T));
        assert_eq!(Gate::U1(0.5).inverse(), Some(Gate::U1(-0.5)));
        assert_eq!(Gate::Rx(PI).inverse(), Some(Gate::Rx(-PI)));
    }

    #[test]
    fn non_unitary_has_no_inverse() {
        assert_eq!(Gate::Measure.inverse(), None);
        assert_eq!(Gate::Barrier.inverse(), None);
    }

    #[test]
    fn params_extraction() {
        assert_eq!(Gate::U3(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
        assert_eq!(Gate::U2(0.5, 0.25).params(), vec![0.5, 0.25]);
        assert!(Gate::Cx.params().is_empty());
    }

    #[test]
    fn display_with_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.500000)");
    }

    #[test]
    fn virtual_gates() {
        assert!(Gate::Rz(1.0).is_virtual());
        assert!(Gate::U1(1.0).is_virtual());
        assert!(Gate::Z.is_virtual());
        assert!(!Gate::X.is_virtual());
        assert!(!Gate::U2(0.0, PI).is_virtual());
        assert!(!Gate::Cx.is_virtual());
    }
}
