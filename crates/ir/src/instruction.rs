//! A gate bound to concrete qubits.

use crate::{Clbit, Gate, Qubit};
use std::fmt;

/// One instruction of a [`crate::Circuit`]: a [`Gate`] applied to specific
/// qubits (and, for measurements, a classical target bit).
///
/// ```
/// use xtalk_ir::{Gate, Instruction, Qubit};
/// let cx = Instruction::two_qubit(Gate::Cx, Qubit::new(0), Qubit::new(1));
/// assert_eq!(cx.to_string(), "cx q0, q1");
/// assert!(cx.acts_on(Qubit::new(1)));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Instruction {
    gate: Gate,
    qubits: Vec<Qubit>,
    clbit: Option<Clbit>,
}

impl Instruction {
    /// Creates an instruction, checking gate arity.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate's arity (any
    /// nonzero number is allowed for barriers), if qubits repeat, or if a
    /// `clbit` is supplied for anything but a measurement.
    pub fn new(gate: Gate, qubits: Vec<Qubit>, clbit: Option<Clbit>) -> Self {
        if gate.is_barrier() {
            assert!(!qubits.is_empty(), "barrier must span at least one qubit");
        } else {
            assert_eq!(
                qubits.len(),
                gate.num_qubits(),
                "gate {gate} expects {} qubit(s), got {}",
                gate.num_qubits(),
                qubits.len()
            );
        }
        for (i, a) in qubits.iter().enumerate() {
            for b in &qubits[i + 1..] {
                assert_ne!(a, b, "instruction {gate} repeats qubit {a}");
            }
        }
        assert!(
            clbit.is_none() || gate.is_measurement(),
            "only measurements take a classical bit"
        );
        Instruction { gate, qubits, clbit }
    }

    /// Convenience constructor for a single-qubit gate.
    pub fn single_qubit(gate: Gate, q: Qubit) -> Self {
        Instruction::new(gate, vec![q], None)
    }

    /// Convenience constructor for a two-qubit gate.
    pub fn two_qubit(gate: Gate, a: Qubit, b: Qubit) -> Self {
        Instruction::new(gate, vec![a, b], None)
    }

    /// Convenience constructor for a measurement.
    pub fn measure(q: Qubit, c: Clbit) -> Self {
        Instruction::new(Gate::Measure, vec![q], Some(c))
    }

    /// Convenience constructor for a barrier across `qubits`.
    pub fn barrier<I: IntoIterator<Item = Qubit>>(qubits: I) -> Self {
        Instruction::new(Gate::Barrier, qubits.into_iter().collect(), None)
    }

    /// The gate kind.
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The qubits the instruction acts on, in gate order
    /// (`[control, target]` for CX).
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// Classical destination bit (measurements only).
    pub fn clbit(&self) -> Option<Clbit> {
        self.clbit
    }

    /// `true` if this instruction touches `q`.
    pub fn acts_on(&self, q: Qubit) -> bool {
        self.qubits.contains(&q)
    }

    /// `true` if this instruction shares at least one qubit with `other`.
    pub fn shares_qubit(&self, other: &Instruction) -> bool {
        self.qubits.iter().any(|q| other.acts_on(*q))
    }

    /// For a two-qubit gate, the `(low, high)` qubit pair (order-normalized,
    /// useful as a coupling-map key). `None` otherwise.
    pub fn edge(&self) -> Option<(Qubit, Qubit)> {
        if self.gate.is_two_qubit() {
            let (a, b) = (self.qubits[0], self.qubits[1]);
            Some(if a < b { (a, b) } else { (b, a) })
        } else {
            None
        }
    }

    /// The inverse instruction, if the gate is invertible.
    pub fn inverse(&self) -> Option<Instruction> {
        self.gate.inverse().map(|g| Instruction {
            gate: g,
            qubits: self.qubits.clone(),
            clbit: None,
        })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.gate)?;
        let qs = self
            .qubits
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        write!(f, " {qs}")?;
        if let Some(c) = self.clbit {
            write!(f, " -> {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let h = Instruction::single_qubit(Gate::H, Qubit::new(2));
        assert_eq!(h.qubits(), &[Qubit::new(2)]);
        let m = Instruction::measure(Qubit::new(1), Clbit::new(0));
        assert_eq!(m.clbit(), Some(Clbit::new(0)));
        let b = Instruction::barrier([Qubit::new(0), Qubit::new(3)]);
        assert_eq!(b.qubits().len(), 2);
    }

    #[test]
    #[should_panic(expected = "expects 2 qubit")]
    fn arity_checked() {
        Instruction::new(Gate::Cx, vec![Qubit::new(0)], None);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn repeated_qubits_rejected() {
        Instruction::two_qubit(Gate::Cx, Qubit::new(1), Qubit::new(1));
    }

    #[test]
    #[should_panic(expected = "classical bit")]
    fn clbit_only_for_measure() {
        Instruction::new(Gate::H, vec![Qubit::new(0)], Some(Clbit::new(0)));
    }

    #[test]
    fn edge_is_normalized() {
        let cx = Instruction::two_qubit(Gate::Cx, Qubit::new(5), Qubit::new(2));
        assert_eq!(cx.edge(), Some((Qubit::new(2), Qubit::new(5))));
        let h = Instruction::single_qubit(Gate::H, Qubit::new(0));
        assert_eq!(h.edge(), None);
    }

    #[test]
    fn sharing() {
        let a = Instruction::two_qubit(Gate::Cx, Qubit::new(0), Qubit::new(1));
        let b = Instruction::two_qubit(Gate::Cx, Qubit::new(1), Qubit::new(2));
        let c = Instruction::two_qubit(Gate::Cx, Qubit::new(3), Qubit::new(4));
        assert!(a.shares_qubit(&b));
        assert!(!a.shares_qubit(&c));
    }

    #[test]
    fn inverse_keeps_qubits() {
        let s = Instruction::single_qubit(Gate::S, Qubit::new(7));
        let inv = s.inverse().unwrap();
        assert_eq!(inv.gate(), &Gate::Sdg);
        assert_eq!(inv.qubits(), s.qubits());
        assert!(Instruction::measure(Qubit::new(0), Clbit::new(0)).inverse().is_none());
    }

    #[test]
    fn display() {
        let cx = Instruction::two_qubit(Gate::Cx, Qubit::new(0), Qubit::new(1));
        assert_eq!(cx.to_string(), "cx q0, q1");
        let m = Instruction::measure(Qubit::new(3), Clbit::new(3));
        assert_eq!(m.to_string(), "measure q3 -> c3");
    }
}
