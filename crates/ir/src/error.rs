//! Error types for circuit construction and scheduling.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating IR objects.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum IrError {
    /// An instruction referenced a qubit outside the circuit register.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Register width.
        width: usize,
    },
    /// An instruction referenced a classical bit outside the register.
    ClbitOutOfRange {
        /// Offending clbit index.
        clbit: usize,
        /// Register width.
        width: usize,
    },
    /// [`crate::Circuit::inverse`] was called on a circuit containing a
    /// non-invertible operation.
    NotInvertible {
        /// Mnemonic of the offending gate.
        gate: &'static str,
    },
    /// A schedule assigns overlapping time slots to two instructions that
    /// share a qubit.
    ScheduleQubitOverlap {
        /// First instruction index.
        first: usize,
        /// Second instruction index.
        second: usize,
        /// The shared qubit.
        qubit: usize,
    },
    /// A schedule violates a data dependency: the dependent instruction
    /// starts before its predecessor finishes.
    ScheduleDependencyViolation {
        /// Predecessor instruction index.
        before: usize,
        /// Dependent instruction index.
        after: usize,
    },
    /// A schedule's slot list does not match the circuit's instruction list.
    ScheduleLengthMismatch {
        /// Number of schedule slots.
        slots: usize,
        /// Number of instructions.
        instructions: usize,
    },
    /// Failure parsing an OpenQASM source.
    QasmParse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit index {qubit} out of range for register of width {width}")
            }
            IrError::ClbitOutOfRange { clbit, width } => {
                write!(f, "clbit index {clbit} out of range for register of width {width}")
            }
            IrError::NotInvertible { gate } => {
                write!(f, "circuit containing `{gate}` is not invertible")
            }
            IrError::ScheduleQubitOverlap { first, second, qubit } => write!(
                f,
                "instructions {first} and {second} overlap in time on qubit {qubit}"
            ),
            IrError::ScheduleDependencyViolation { before, after } => write!(
                f,
                "instruction {after} depends on {before} but starts before it finishes"
            ),
            IrError::ScheduleLengthMismatch { slots, instructions } => write!(
                f,
                "schedule has {slots} slots but circuit has {instructions} instructions"
            ),
            IrError::QasmParse { line, message } => {
                write!(f, "qasm parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<IrError> = vec![
            IrError::QubitOutOfRange { qubit: 5, width: 2 },
            IrError::ClbitOutOfRange { clbit: 1, width: 0 },
            IrError::NotInvertible { gate: "measure" },
            IrError::ScheduleQubitOverlap { first: 0, second: 1, qubit: 2 },
            IrError::ScheduleDependencyViolation { before: 0, after: 1 },
            IrError::ScheduleLengthMismatch { slots: 3, instructions: 4 },
            IrError::QasmParse { line: 7, message: "unknown gate".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IrError>();
    }
}
