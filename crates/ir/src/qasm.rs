//! OpenQASM 2.0 export and a minimal importer.
//!
//! The exporter emits a single `q`/`c` register pair and the gate mnemonics
//! of [`crate::Gate`]; the importer accepts exactly that dialect (which is
//! also the dialect IBMQ backends of the paper's era consumed), so
//! `parse(&dump(c))` round-trips any circuit this crate can build.

use crate::{Circuit, Gate, Instruction, IrError, Qubit};

/// Serializes a circuit to OpenQASM 2.0 text.
///
/// ```
/// use xtalk_ir::{qasm, Circuit};
/// let mut c = Circuit::new(2, 2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = qasm::dump(&c);
/// assert!(text.contains("cx q[0],q[1];"));
/// let back = qasm::parse(&text).unwrap();
/// assert_eq!(back, c);
/// ```
pub fn dump(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    if circuit.num_clbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.num_clbits()));
    }
    for instr in circuit.iter() {
        out.push_str(&format_instruction(instr));
        out.push('\n');
    }
    out
}

fn format_instruction(instr: &Instruction) -> String {
    let gate = instr.gate();
    let qs = instr
        .qubits()
        .iter()
        .map(|q| format!("q[{}]", q.index()))
        .collect::<Vec<_>>()
        .join(",");
    match gate {
        Gate::Measure => {
            let c = instr.clbit().expect("measure carries a clbit");
            format!("measure {qs} -> c[{}];", c.index())
        }
        Gate::Barrier => format!("barrier {qs};"),
        _ => {
            let ps = gate.params();
            if ps.is_empty() {
                format!("{} {qs};", gate.name())
            } else {
                let params = ps
                    .iter()
                    .map(|p| format!("{p:.12}"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{}({params}) {qs};", gate.name())
            }
        }
    }
}

/// Parses the OpenQASM 2.0 dialect produced by [`dump`].
///
/// # Errors
///
/// Returns [`IrError::QasmParse`] describing the first offending line:
/// unknown gates, malformed arguments, references outside the declared
/// registers, or a missing register declaration.
pub fn parse(source: &str) -> Result<Circuit, IrError> {
    let mut nq: Option<usize> = None;
    let mut nc: usize = 0;
    let mut body: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let line = line.strip_suffix(';').ok_or_else(|| IrError::QasmParse {
            line: lineno + 1,
            message: "missing trailing semicolon".into(),
        })?;
        if let Some(rest) = line.strip_prefix("qreg ") {
            nq = Some(parse_reg_decl(rest, "q", lineno + 1)?);
        } else if let Some(rest) = line.strip_prefix("creg ") {
            nc = parse_reg_decl(rest, "c", lineno + 1)?;
        } else {
            body.push((lineno + 1, line.to_string()));
        }
    }

    let nq = nq.ok_or_else(|| IrError::QasmParse {
        line: 0,
        message: "no qreg declaration found".into(),
    })?;
    let mut circuit = Circuit::new(nq, nc);

    for (lineno, line) in body {
        let instr = parse_statement(&line, lineno)?;
        circuit.try_push(instr).map_err(|e| IrError::QasmParse {
            line: lineno,
            message: e.to_string(),
        })?;
    }
    Ok(circuit)
}

fn parse_reg_decl(rest: &str, expected: &str, line: usize) -> Result<usize, IrError> {
    let rest = rest.trim();
    let open = rest.find('[').ok_or_else(|| IrError::QasmParse {
        line,
        message: "malformed register declaration".into(),
    })?;
    let name = &rest[..open];
    if name != expected {
        return Err(IrError::QasmParse {
            line,
            message: format!("expected register named `{expected}`, found `{name}`"),
        });
    }
    let close = rest.find(']').ok_or_else(|| IrError::QasmParse {
        line,
        message: "malformed register declaration".into(),
    })?;
    rest[open + 1..close].parse().map_err(|_| IrError::QasmParse {
        line,
        message: "register size is not an integer".into(),
    })
}

fn parse_index(tok: &str, reg: &str, line: usize) -> Result<usize, IrError> {
    let tok = tok.trim();
    let want = format!("{reg}[");
    let inner = tok
        .strip_prefix(&want)
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| IrError::QasmParse {
            line,
            message: format!("expected `{reg}[i]`, found `{tok}`"),
        })?;
    inner.parse().map_err(|_| IrError::QasmParse {
        line,
        message: format!("bad index in `{tok}`"),
    })
}

fn parse_params(text: &str, line: usize) -> Result<Vec<f64>, IrError> {
    text.split(',')
        .map(|t| {
            parse_angle(t.trim()).ok_or_else(|| IrError::QasmParse {
                line,
                message: format!("bad angle `{t}`"),
            })
        })
        .collect()
}

/// Parses a float, also accepting the `pi`-expressions Qiskit commonly
/// emits (`pi`, `-pi/2`, `3*pi/4`, …).
fn parse_angle(t: &str) -> Option<f64> {
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    let (num, den): (&str, f64) = match t.split_once('/') {
        Some((n, d)) => (n.trim(), d.trim().parse::<f64>().ok()?),
        None => (t, 1.0),
    };
    let num_val = if num == "pi" {
        std::f64::consts::PI
    } else if let Some(mult) = num.strip_suffix("*pi") {
        mult.trim().parse::<f64>().ok()? * std::f64::consts::PI
    } else {
        return None;
    };
    let v = num_val / den;
    Some(if neg { -v } else { v })
}

fn parse_statement(line: &str, lineno: usize) -> Result<Instruction, IrError> {
    // measure q[i] -> c[j]
    if let Some(rest) = line.strip_prefix("measure ") {
        let (qtok, ctok) = rest.split_once("->").ok_or_else(|| IrError::QasmParse {
            line: lineno,
            message: "measure missing `->`".into(),
        })?;
        let q = parse_index(qtok, "q", lineno)?;
        let c = parse_index(ctok, "c", lineno)?;
        return Ok(Instruction::measure(Qubit::from(q), crate::Clbit::from(c)));
    }
    if let Some(rest) = line.strip_prefix("barrier ") {
        let qs = rest
            .split(',')
            .map(|t| parse_index(t, "q", lineno).map(Qubit::from))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Instruction::barrier(qs));
    }

    // gate[(params)] q[i](,q[j])
    let (head, args) = line.split_once(' ').ok_or_else(|| IrError::QasmParse {
        line: lineno,
        message: "missing gate arguments".into(),
    })?;
    let (name, params) = match head.split_once('(') {
        Some((n, p)) => {
            let p = p.strip_suffix(')').ok_or_else(|| IrError::QasmParse {
                line: lineno,
                message: "unterminated parameter list".into(),
            })?;
            (n, parse_params(p, lineno)?)
        }
        None => (head, Vec::new()),
    };
    let qubits: Vec<Qubit> = args
        .split(',')
        .map(|t| parse_index(t, "q", lineno).map(Qubit::from))
        .collect::<Result<Vec<_>, _>>()?;

    let gate = gate_from_name(name, &params).ok_or_else(|| IrError::QasmParse {
        line: lineno,
        message: format!("unknown gate `{name}` with {} parameter(s)", params.len()),
    })?;
    Ok(Instruction::new(gate, qubits, None))
}

fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    Some(match (name, params.len()) {
        ("id", 0) => Gate::I,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("h", 0) => Gate::H,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("u1", 1) => Gate::U1(params[0]),
        ("u2", 2) => Gate::U2(params[0], params[1]),
        ("u3", 3) => Gate::U3(params[0], params[1], params[2]),
        ("rx", 1) => Gate::Rx(params[0]),
        ("ry", 1) => Gate::Ry(params[0]),
        ("rz", 1) => Gate::Rz(params[0]),
        ("cx", 0) => Gate::Cx,
        ("cz", 0) => Gate::Cz,
        ("swap", 0) => Gate::Swap,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.h(0)
            .u3(0.1, -0.2, 0.3, 1)
            .cx(0, 1)
            .rz(1.5, 2)
            .barrier([0u32, 1u32])
            .measure(0, 0)
            .measure(1, 1);
        c
    }

    #[test]
    fn dump_contains_declarations() {
        let text = dump(&sample());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("measure q[0] -> c[0];"));
        assert!(text.contains("barrier q[0],q[1];"));
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let back = parse(&dump(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parse_rejects_unknown_gate() {
        let err = parse("qreg q[1];\nfoo q[0];\n").unwrap_err();
        assert!(matches!(err, IrError::QasmParse { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_missing_semicolon() {
        let err = parse("qreg q[1]\n").unwrap_err();
        assert!(matches!(err, IrError::QasmParse { line: 1, .. }));
    }

    #[test]
    fn parse_requires_qreg() {
        let err = parse("creg c[1];\n").unwrap_err();
        assert!(matches!(err, IrError::QasmParse { line: 0, .. }));
    }

    #[test]
    fn parse_range_checked() {
        let err = parse("qreg q[1];\nh q[3];\n").unwrap_err();
        assert!(matches!(err, IrError::QasmParse { line: 2, .. }));
    }

    #[test]
    fn parse_pi_expressions() {
        let c = parse("qreg q[1];\nu2(0,pi) q[0];\nrz(-pi/2) q[0];\nrx(3*pi/4) q[0];\n").unwrap();
        assert_eq!(c.len(), 3);
        match c.instructions()[0].gate() {
            Gate::U2(phi, lam) => {
                assert_eq!(*phi, 0.0);
                assert!((lam - std::f64::consts::PI).abs() < 1e-12);
            }
            g => panic!("unexpected gate {g}"),
        }
        match c.instructions()[2].gate() {
            Gate::Rx(a) => assert!((a - 3.0 * std::f64::consts::FRAC_PI_4).abs() < 1e-12),
            g => panic!("unexpected gate {g}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse("// header\nqreg q[2];\n\nh q[0]; // apply h\ncx q[0],q[1];\n").unwrap();
        assert_eq!(c.len(), 2);
    }
}
