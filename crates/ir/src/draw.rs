//! ASCII circuit diagrams (used by the CLI and examples).

use crate::{Circuit, Gate};

/// Renders a circuit as an ASCII diagram, one row per qubit, instructions
/// packed into dependency layers:
///
/// ```
/// use xtalk_ir::{draw, Circuit};
/// let mut c = Circuit::new(3, 3);
/// c.h(0).cx(0, 1).cx(1, 2).measure_all();
/// let art = draw::text_diagram(&c);
/// assert!(art.contains("q0: ─[h]─●"));
/// ```
///
/// Controls are `●`, CNOT targets `⊕`, other two-qubit endpoints `◼`,
/// measurements `[M→ck]`, barriers `░`. Idle wires are `─`.
#[allow(clippy::needless_range_loop)]
pub fn text_diagram(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    // Assign layers greedily, barriers occupying their own column.
    let mut level = vec![0usize; n];
    let mut columns: Vec<Vec<usize>> = Vec::new(); // column -> instr indices
    for (i, ins) in circuit.iter().enumerate() {
        let qubits = ins.qubits();
        // Two-qubit gates occupy the whole span between their endpoints so
        // crossing wires stay readable.
        let (lo, hi) = span(ins.qubits().iter().map(|q| q.index()));
        let col = (lo..=hi).map(|q| level[q]).max().unwrap_or(0);
        if columns.len() <= col {
            columns.resize_with(col + 1, Vec::new);
        }
        columns[col].push(i);
        for q in lo..=hi {
            level[q] = col + 1;
        }
        let _ = qubits;
    }

    // Render column by column.
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n];
    for col in &columns {
        let mut col_cells: Vec<Option<String>> = vec![None; n];
        let mut width = 1;
        for &i in col {
            let ins = &circuit.instructions()[i];
            let (lo, hi) = span(ins.qubits().iter().map(|q| q.index()));
            match ins.gate() {
                Gate::Barrier => {
                    for q in lo..=hi {
                        col_cells[q] = Some("░".to_string());
                    }
                }
                Gate::Measure => {
                    let c = ins.clbit().expect("measure has clbit").index();
                    col_cells[ins.qubits()[0].index()] = Some(format!("[M→c{c}]"));
                }
                g if g.is_two_qubit() => {
                    let (a, b) = (ins.qubits()[0].index(), ins.qubits()[1].index());
                    let (ca, cb) = match g {
                        Gate::Cx => ("●", "⊕"),
                        Gate::Cz => ("●", "●"),
                        _ => ("◼", "◼"),
                    };
                    col_cells[a] = Some(ca.to_string());
                    col_cells[b] = Some(cb.to_string());
                    for q in lo + 1..hi {
                        if col_cells[q].is_none() {
                            col_cells[q] = Some("│".to_string());
                        }
                    }
                }
                g => {
                    col_cells[ins.qubits()[0].index()] = Some(format!("[{}]", g.name()));
                }
            }
        }
        for cell in col_cells.iter().flatten() {
            width = width.max(cell.chars().count());
        }
        for (q, cell) in col_cells.into_iter().enumerate() {
            let text = cell.unwrap_or_else(|| "─".to_string());
            let pad = width - text.chars().count();
            let fill = if text == "│" || text == "░" { ' ' } else { '─' };
            let mut s = String::new();
            for _ in 0..pad / 2 {
                s.push(fill);
            }
            s.push_str(&text);
            for _ in 0..(pad - pad / 2) {
                s.push(fill);
            }
            cells[q].push(s);
        }
    }

    let label_w = format!("q{}", n.saturating_sub(1)).len();
    let mut out = String::new();
    for (q, row) in cells.iter().enumerate() {
        let label = format!("q{q}");
        out.push_str(&format!("{label:<label_w$}: ─"));
        for cell in row {
            out.push_str(cell);
            out.push('─');
        }
        out.push('\n');
    }
    out
}

fn span(qubits: impl Iterator<Item = usize>) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0;
    for q in qubits {
        lo = lo.min(q);
        hi = hi.max(q);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_diagram() {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        let art = text_diagram(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("[h]"));
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('⊕'));
        assert!(lines[0].contains("[M→c0]"));
        assert!(lines[1].contains("[M→c1]"));
    }

    #[test]
    fn long_range_gate_draws_bridge() {
        let mut c = Circuit::new(3, 0);
        c.cx(0, 2);
        let art = text_diagram(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('│'));
        assert!(lines[2].contains('⊕'));
    }

    #[test]
    fn barrier_spans_qubits() {
        let mut c = Circuit::new(3, 0);
        c.h(0).barrier_all().h(2);
        let art = text_diagram(&c);
        assert_eq!(art.matches('░').count(), 3);
    }

    #[test]
    fn columns_respect_dependencies() {
        let mut c = Circuit::new(2, 0);
        c.h(0).h(0);
        let art = text_diagram(&c);
        // Two sequential gates: the q0 row has two [h] cells.
        assert_eq!(art.lines().next().unwrap().matches("[h]").count(), 2);
    }

    #[test]
    fn every_row_same_display_width() {
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 2).u3(0.1, 0.2, 0.3, 1).measure_all();
        let art = text_diagram(&c);
        let widths: Vec<usize> = art.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{art}");
    }

    #[test]
    fn empty_circuit_renders_labels() {
        let c = Circuit::new(2, 0);
        let art = text_diagram(&c);
        assert!(art.starts_with("q0: ─"));
    }
}
