//! A stabilizer-state simulator (Aaronson–Gottesman style).
//!
//! Where [`crate::CliffordTableau`] represents a Clifford *unitary*, a
//! [`StabilizerState`] represents a stabilizer *state*: the `n`
//! commuting Pauli generators that stabilize it. Clifford gates update
//! the generators in O(n); computational-basis measurements take at most
//! O(n²) via Gaussian elimination. This is the standard fast path for
//! Clifford-only circuits such as randomized benchmarking sequences, and
//! it cross-validates the statevector simulator in the test suites.
//!
//! ```
//! use xtalk_clifford::StabilizerState;
//! use xtalk_ir::Gate;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut s = StabilizerState::new(2);
//! s.apply_gate(&Gate::H, &[0]);
//! s.apply_gate(&Gate::Cx, &[0, 1]);
//! // A Bell pair: the two qubits always agree.
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = s.measure(0, &mut rng);
//! let b = s.measure(1, &mut rng);
//! assert_eq!(a, b);
//! ```

use crate::tableau::gate_tableau;
use crate::{CliffordTableau, PauliString};
use rand::Rng;
use xtalk_ir::{Circuit, Gate};

/// An `n`-qubit stabilizer state, stored as its stabilizer group
/// generators.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StabilizerState {
    n: usize,
    /// `n` independent, commuting Hermitian Paulis stabilizing the state.
    gens: Vec<PauliString>,
}

impl StabilizerState {
    /// The all-zeros state `|0…0⟩`, stabilized by `Z_q` for every qubit.
    pub fn new(n: usize) -> Self {
        StabilizerState {
            n,
            gens: (0..n).map(|q| PauliString::single(n, q, 'Z')).collect(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The current stabilizer generators.
    pub fn generators(&self) -> &[PauliString] {
        &self.gens
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics for non-Clifford gates.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        let t = gate_tableau(self.n, gate, qubits);
        for g in &mut self.gens {
            *g = t.conjugate(g);
        }
    }

    /// Applies a whole Clifford unitary at once.
    pub fn apply_tableau(&mut self, t: &CliffordTableau) {
        assert_eq!(t.num_qubits(), self.n, "widths must match");
        for g in &mut self.gens {
            *g = t.conjugate(g);
        }
    }

    /// Runs a Clifford circuit (barriers skipped).
    ///
    /// # Panics
    ///
    /// Panics on measurements (use [`StabilizerState::measure`]) or
    /// non-Clifford gates.
    pub fn run_circuit(&mut self, circuit: &Circuit) {
        for ins in circuit.iter() {
            if ins.gate().is_barrier() {
                continue;
            }
            assert!(
                !ins.gate().is_measurement(),
                "run_circuit is unitary-only; measure explicitly"
            );
            let qs: Vec<usize> = ins.qubits().iter().map(|q| q.index()).collect();
            self.apply_gate(ins.gate(), &qs);
        }
    }

    /// The expectation of `Z_q`: `Some(±1)` when deterministic, `None`
    /// when the outcome is 50/50 (i.e. `Z_q` anticommutes with some
    /// generator).
    pub fn z_expectation(&self, q: usize) -> Option<i8> {
        let z = PauliString::single(self.n, q, 'Z');
        if self.gens.iter().any(|g| !g.commutes_with(&z)) {
            return None;
        }
        // Z_q commutes with the whole group: ±Z_q is in the group. Find
        // the combination by Gaussian elimination over the generators.
        let combo = self.express(&z)?;
        Some(combo.sign())
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let z = PauliString::single(self.n, q, 'Z');
        // Find a generator anticommuting with Z_q.
        if let Some(p) = self.gens.iter().position(|g| !g.commutes_with(&z)) {
            // Random outcome; replace the anticommuting generator with
            // ±Z_q and fix up the others.
            let outcome = rng.gen_bool(0.5);
            let witness = self.gens[p].clone();
            for (i, g) in self.gens.iter_mut().enumerate() {
                if i != p && !g.commutes_with(&z) {
                    *g = g.mul(&witness);
                }
            }
            self.gens[p] = if outcome {
                // −Z_q stabilizes |1⟩.
                negate(&z)
            } else {
                z
            };
            outcome
        } else {
            // Deterministic outcome.
            let combo = self.express(&z).expect("Z_q is in the commutant of the group");
            combo.sign() < 0
        }
    }

    /// Expresses `target` (up to sign) as a product of generators,
    /// returning the signed product if the unsigned parts match.
    fn express(&self, target: &PauliString) -> Option<PauliString> {
        // Gaussian elimination over GF(2) on the (x|z) symplectic rows.
        let cols = 2 * self.n;
        let mut rows: Vec<(Vec<bool>, PauliString)> = self
            .gens
            .iter()
            .map(|g| (bits(g), g.clone()))
            .collect();
        let mut want = bits(target);
        let mut acc = PauliString::identity(self.n);
        let mut used_row = 0usize;
        for col in 0..cols {
            let Some(pivot) = (used_row..rows.len()).find(|&r| rows[r].0[col]) else {
                continue;
            };
            rows.swap(used_row, pivot);
            let (prow, pop) = rows[used_row].clone();
            for (r, (row_bits, row_op)) in rows.iter_mut().enumerate() {
                if r != used_row && row_bits[col] {
                    for (b, pb) in row_bits.iter_mut().zip(&prow) {
                        *b ^= pb;
                    }
                    *row_op = row_op.mul(&pop);
                }
            }
            if want[col] {
                for (b, pb) in want.iter_mut().zip(&prow) {
                    *b ^= pb;
                }
                acc = acc.mul(&pop);
            }
            used_row += 1;
        }
        if want.iter().any(|&b| b) {
            return None; // target not in the group (up to sign)
        }
        // `acc` equals ±target (possibly with an i^2 bookkeeping phase).
        Some(acc)
    }

    /// `true` if measuring all qubits could yield `outcome` (little-endian
    /// bits) with nonzero probability.
    pub fn consistent_with(&self, outcome: u64) -> bool {
        let mut probe = self.clone();
        for q in 0..probe.n {
            let want = (outcome >> q) & 1 == 1;
            match probe.z_expectation(q) {
                // Deterministic qubit: the outcome bit must match.
                Some(sign) => {
                    if (sign < 0) != want {
                        return false;
                    }
                }
                // 50/50 qubit: both branches are possible; follow the
                // wanted one and keep checking the rest.
                None => probe.project(q, want),
            }
        }
        true
    }

    /// Projects qubit `q` onto the `want` outcome (must have nonzero
    /// probability, i.e. outcome random or already matching).
    fn project(&mut self, q: usize, want: bool) {
        let z = PauliString::single(self.n, q, 'Z');
        if let Some(p) = self.gens.iter().position(|g| !g.commutes_with(&z)) {
            let witness = self.gens[p].clone();
            for (i, g) in self.gens.iter_mut().enumerate() {
                if i != p && !g.commutes_with(&z) {
                    *g = g.mul(&witness);
                }
            }
            self.gens[p] = if want { negate(&z) } else { z };
        } else {
            let combo = self.express(&z).expect("commutant membership");
            assert_eq!(combo.sign() < 0, want, "projecting onto a zero-probability branch");
        }
    }
}

fn bits(p: &PauliString) -> Vec<bool> {
    let n = p.num_qubits();
    let mut v = Vec::with_capacity(2 * n);
    for q in 0..n {
        v.push(p.x_bit(q));
    }
    for q in 0..n {
        v.push(p.z_bit(q));
    }
    v
}

fn negate(p: &PauliString) -> PauliString {
    let n = p.num_qubits();
    let x: Vec<bool> = (0..n).map(|q| p.x_bit(q)).collect();
    let z: Vec<bool> = (0..n).map(|q| p.z_bit(q)).collect();
    PauliString::from_parts(x, z, (p.phase() + 2) % 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_state_measures_all_zero() {
        let mut s = StabilizerState::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        for q in 0..3 {
            assert!(!s.measure(q, &mut rng));
            assert_eq!(s.z_expectation(q), Some(1));
        }
    }

    #[test]
    fn x_flips_deterministically() {
        let mut s = StabilizerState::new(2);
        s.apply_gate(&Gate::X, &[1]);
        assert_eq!(s.z_expectation(1), Some(-1));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.measure(1, &mut rng));
        assert!(!s.measure(0, &mut rng));
    }

    #[test]
    fn plus_state_is_random_then_sticky() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0;
        for trial in 0..200 {
            let mut s = StabilizerState::new(1);
            s.apply_gate(&Gate::H, &[0]);
            assert_eq!(s.z_expectation(0), None);
            let first = s.measure(0, &mut rng);
            // Collapsed: same answer forever after.
            assert_eq!(s.measure(0, &mut rng), first, "trial {trial}");
            if first {
                ones += 1;
            }
        }
        assert!((50..=150).contains(&ones), "ones {ones}");
    }

    #[test]
    fn bell_pair_is_perfectly_correlated() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut s = StabilizerState::new(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            let a = s.measure(0, &mut rng);
            let b = s.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_collapse_cascades() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let mut s = StabilizerState::new(4);
            s.apply_gate(&Gate::H, &[0]);
            for q in 0..3 {
                s.apply_gate(&Gate::Cx, &[q, q + 1]);
            }
            let first = s.measure(0, &mut rng);
            for q in 1..4 {
                assert_eq!(s.z_expectation(q), Some(if first { -1 } else { 1 }));
            }
        }
    }

    #[test]
    fn agrees_with_tableau_application() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = crate::random::random_clifford_circuit(3, 8, &mut rng);
        let mut via_gates = StabilizerState::new(3);
        via_gates.run_circuit(&c);
        let mut via_tableau = StabilizerState::new(3);
        via_tableau.apply_tableau(&CliffordTableau::from_circuit(&c));
        assert_eq!(via_gates, via_tableau);
    }

    #[test]
    fn rb_identity_sequences_return_to_zero() {
        use crate::group::two_qubit_cliffords;
        use crate::random::uniform_element;
        let g2 = two_qubit_cliffords();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let mut total = CliffordTableau::identity(2);
            let mut s = StabilizerState::new(2);
            for _ in 0..6 {
                let idx = uniform_element(g2, &mut rng);
                for (g, qs) in g2.decomposition(idx) {
                    s.apply_gate(&g, &qs);
                    total.apply_gate(&g, &qs);
                }
            }
            for (g, qs) in g2.inverse_decomposition(&total).unwrap() {
                s.apply_gate(&g, &qs);
            }
            assert_eq!(s.z_expectation(0), Some(1));
            assert_eq!(s.z_expectation(1), Some(1));
        }
    }

    #[test]
    fn consistency_check() {
        let mut s = StabilizerState::new(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cx, &[0, 1]);
        assert!(s.consistent_with(0b00));
        assert!(s.consistent_with(0b11));
        assert!(!s.consistent_with(0b01));
        assert!(!s.consistent_with(0b10));
    }

    #[test]
    #[should_panic(expected = "unitary-only")]
    fn measurement_in_run_circuit_rejected() {
        let mut c = Circuit::new(1, 1);
        c.measure(0, 0);
        StabilizerState::new(1).run_circuit(&c);
    }
}
