//! Stabilizer formalism: Pauli strings, Clifford tableaux, synthesis and
//! random sampling.
//!
//! Randomized benchmarking (the paper's characterization workhorse,
//! Section 8.1) composes sequences of random Clifford group elements and
//! appends the inverse of their product so that a noiseless run returns to
//! the initial state. This crate supplies the group machinery:
//!
//! * [`PauliString`] — n-qubit Pauli operators with phase tracking.
//! * [`CliffordTableau`] — the Aaronson–Gottesman representation of a
//!   Clifford unitary (images of the `X_q`/`Z_q` generators under
//!   conjugation), with composition and circuit extraction.
//! * [`group`] — full enumerations of the 24-element single-qubit and
//!   11520-element two-qubit Clifford groups with CX-count-optimal
//!   decompositions (average 1.5 CNOTs per two-qubit Clifford, the
//!   constant the paper divides by to convert Clifford error to CNOT
//!   error).
//! * [`random`] — uniform sampling of Clifford elements.
//!
//! ```
//! use xtalk_clifford::group;
//! let g2 = group::two_qubit_cliffords();
//! assert_eq!(g2.len(), 11520);
//! // Average CX cost over the whole group is exactly 1.5.
//! let total: usize = (0..g2.len()).map(|i| g2.cx_count(i)).sum();
//! assert_eq!(total * 2, 3 * g2.len());
//! ```

pub mod group;
mod pauli;
pub mod random;
mod stabilizer;
mod tableau;

pub use pauli::PauliString;
pub use stabilizer::StabilizerState;
pub use tableau::{gate_tableau, instantiate, CliffordTableau};
