//! Aaronson–Gottesman tableaux: Clifford unitaries as generator images.

use crate::PauliString;
use std::fmt;
use xtalk_ir::{Circuit, Gate, Instruction, Qubit};

/// A Clifford unitary `C` represented by the images of the Pauli
/// generators under conjugation: `C X_q C†` and `C Z_q C†` for each qubit.
///
/// Two Cliffords are equal as tableaux iff they are equal up to global
/// phase, which is the right notion for randomized benchmarking.
///
/// ```
/// use xtalk_clifford::CliffordTableau;
/// use xtalk_ir::Gate;
/// let mut t = CliffordTableau::identity(2);
/// t.apply_gate(&Gate::H, &[0]);
/// t.apply_gate(&Gate::Cx, &[0, 1]);
/// // H;CX maps Z0 → X0X1 (Bell-state stabilizer).
/// assert_eq!(t.image_z(0).to_string(), "+XX");
/// assert!(!t.is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CliffordTableau {
    n: usize,
    image_x: Vec<PauliString>,
    image_z: Vec<PauliString>,
}

impl CliffordTableau {
    /// The identity Clifford on `n` qubits.
    pub fn identity(n: usize) -> Self {
        CliffordTableau {
            n,
            image_x: (0..n).map(|q| PauliString::single(n, q, 'X')).collect(),
            image_z: (0..n).map(|q| PauliString::single(n, q, 'Z')).collect(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Image of `X_q` under conjugation.
    pub fn image_x(&self, q: usize) -> &PauliString {
        &self.image_x[q]
    }

    /// Image of `Z_q` under conjugation.
    pub fn image_z(&self, q: usize) -> &PauliString {
        &self.image_z[q]
    }

    /// `true` if this is the identity (up to global phase).
    pub fn is_identity(&self) -> bool {
        *self == CliffordTableau::identity(self.n)
    }

    /// Conjugates an arbitrary Pauli: returns `C P C†`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn conjugate(&self, p: &PauliString) -> PauliString {
        assert_eq!(p.num_qubits(), self.n, "pauli width must match tableau");
        let mut out = PauliString::identity(self.n);
        // P = i^phase ∏_q X_q^{x} Z_q^{z} in canonical order, so the image
        // is the product of generator images in the same order.
        for q in 0..self.n {
            if p.x_bit(q) {
                out = out.mul(&self.image_x[q]);
            }
            if p.z_bit(q) {
                out = out.mul(&self.image_z[q]);
            }
        }
        let mut phased = PauliString::identity(self.n);
        for _ in 0..p.phase() {
            phased = bump_phase(&phased);
        }
        out.mul(&phased)
    }

    /// The composition "first `self`, then `other`" as a new tableau
    /// (i.e. the unitary `other · self`).
    pub fn then(&self, other: &CliffordTableau) -> CliffordTableau {
        assert_eq!(self.n, other.n, "tableau widths must match");
        CliffordTableau {
            n: self.n,
            image_x: self.image_x.iter().map(|p| other.conjugate(p)).collect(),
            image_z: self.image_z.iter().map(|p| other.conjugate(p)).collect(),
        }
    }

    /// Appends a Clifford gate (mutating `self` to `gate · self`).
    ///
    /// # Panics
    ///
    /// Panics if the gate is not Clifford (e.g. `T`, rotations, measure)
    /// or the qubit list does not match its arity.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        let g = gate_tableau(self.n, gate, qubits);
        *self = self.then(&g);
    }

    /// Builds the tableau of a Clifford circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford operations.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut t = CliffordTableau::identity(circuit.num_qubits());
        for instr in circuit.iter() {
            if instr.gate().is_barrier() {
                continue;
            }
            let qs: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
            t.apply_gate(instr.gate(), &qs);
        }
        t
    }

    /// The inverse Clifford as a circuit, given a circuit `c` whose
    /// tableau is `self`: simply `c` reversed with each gate inverted.
    /// Provided as a free helper because it needs no tableau math.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` contains non-invertible gates.
    pub fn inverse_circuit_of(circuit: &Circuit) -> Circuit {
        circuit.inverse().expect("clifford circuits are invertible")
    }
}

/// Bumps a Pauli's phase by one power of `i` (helper for `conjugate`).
fn bump_phase(p: &PauliString) -> PauliString {
    let n = p.num_qubits();
    let x: Vec<bool> = (0..n).map(|q| p.x_bit(q)).collect();
    let z: Vec<bool> = (0..n).map(|q| p.z_bit(q)).collect();
    PauliString::from_parts(x, z, (p.phase() + 1) % 4)
}

/// The tableau of a single Clifford gate on an `n`-qubit register.
///
/// # Panics
///
/// Panics for non-Clifford gates or arity mismatches.
pub fn gate_tableau(n: usize, gate: &Gate, qubits: &[usize]) -> CliffordTableau {
    let mut t = CliffordTableau::identity(n);
    let set = |t: &mut CliffordTableau, q: usize, which: char, img: PauliString| match which {
        'X' => t.image_x[q] = img,
        'Z' => t.image_z[q] = img,
        _ => unreachable!(),
    };
    let single = |q: usize, w: char| PauliString::single(n, q, w);
    let neg = |p: PauliString| {
        let nq = p.num_qubits();
        let x: Vec<bool> = (0..nq).map(|q| p.x_bit(q)).collect();
        let z: Vec<bool> = (0..nq).map(|q| p.z_bit(q)).collect();
        PauliString::from_parts(x, z, (p.phase() + 2) % 4)
    };

    match gate {
        Gate::I | Gate::Barrier => {}
        Gate::X => {
            let q = qubits[0];
            set(&mut t, q, 'Z', neg(single(q, 'Z')));
        }
        Gate::Y => {
            let q = qubits[0];
            set(&mut t, q, 'X', neg(single(q, 'X')));
            set(&mut t, q, 'Z', neg(single(q, 'Z')));
        }
        Gate::Z => {
            let q = qubits[0];
            set(&mut t, q, 'X', neg(single(q, 'X')));
        }
        Gate::H => {
            let q = qubits[0];
            set(&mut t, q, 'X', single(q, 'Z'));
            set(&mut t, q, 'Z', single(q, 'X'));
        }
        Gate::S => {
            let q = qubits[0];
            set(&mut t, q, 'X', single(q, 'Y'));
        }
        Gate::Sdg => {
            let q = qubits[0];
            set(&mut t, q, 'X', neg(single(q, 'Y')));
        }
        Gate::Cx => {
            let (c, x) = (qubits[0], qubits[1]);
            set(&mut t, c, 'X', single(c, 'X').mul(&single(x, 'X')));
            set(&mut t, x, 'Z', single(c, 'Z').mul(&single(x, 'Z')));
        }
        Gate::Cz => {
            let (a, b) = (qubits[0], qubits[1]);
            set(&mut t, a, 'X', single(a, 'X').mul(&single(b, 'Z')));
            set(&mut t, b, 'X', single(a, 'Z').mul(&single(b, 'X')));
        }
        Gate::Swap => {
            let (a, b) = (qubits[0], qubits[1]);
            set(&mut t, a, 'X', single(b, 'X'));
            set(&mut t, a, 'Z', single(b, 'Z'));
            set(&mut t, b, 'X', single(a, 'X'));
            set(&mut t, b, 'Z', single(a, 'Z'));
        }
        other => panic!("gate `{other}` is not a Clifford tableau gate"),
    }
    t
}

/// Converts a decomposition over local qubit indices into [`Instruction`]s
/// on physical qubits.
pub fn instantiate(decomp: &[(Gate, Vec<usize>)], physical: &[Qubit]) -> Vec<Instruction> {
    decomp
        .iter()
        .map(|(g, qs)| {
            let mapped: Vec<Qubit> = qs.iter().map(|&q| physical[q]).collect();
            Instruction::new(*g, mapped, None)
        })
        .collect()
}

impl fmt::Display for CliffordTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tableau<{} qubits>", self.n)?;
        for q in 0..self.n {
            writeln!(f, "  X{q} -> {}", self.image_x[q])?;
            writeln!(f, "  Z{q} -> {}", self.image_z[q])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_swaps_x_and_z() {
        let mut t = CliffordTableau::identity(1);
        t.apply_gate(&Gate::H, &[0]);
        assert_eq!(t.image_x(0).to_string(), "+Z");
        assert_eq!(t.image_z(0).to_string(), "+X");
        // H Y H = -Y.
        let y = PauliString::single(1, 0, 'Y');
        assert_eq!(t.conjugate(&y).to_string(), "-Y");
    }

    #[test]
    fn s_gate_rotates_x_to_y() {
        let mut t = CliffordTableau::identity(1);
        t.apply_gate(&Gate::S, &[0]);
        assert_eq!(t.image_x(0).to_string(), "+Y");
        // S Y S† = -X.
        let y = PauliString::single(1, 0, 'Y');
        assert_eq!(t.conjugate(&y).to_string(), "-X");
        // S² = Z.
        t.apply_gate(&Gate::S, &[0]);
        let zt = gate_tableau(1, &Gate::Z, &[0]);
        assert_eq!(t, zt);
    }

    #[test]
    fn sdg_is_inverse_of_s() {
        let mut t = CliffordTableau::identity(1);
        t.apply_gate(&Gate::S, &[0]);
        t.apply_gate(&Gate::Sdg, &[0]);
        assert!(t.is_identity());
    }

    #[test]
    fn h_squared_is_identity() {
        let mut t = CliffordTableau::identity(1);
        t.apply_gate(&Gate::H, &[0]);
        t.apply_gate(&Gate::H, &[0]);
        assert!(t.is_identity());
    }

    #[test]
    fn cx_propagates_paulis() {
        let mut t = CliffordTableau::identity(2);
        t.apply_gate(&Gate::Cx, &[0, 1]);
        assert_eq!(t.image_x(0).to_string(), "+XX");
        assert_eq!(t.image_x(1).to_string(), "+IX");
        assert_eq!(t.image_z(0).to_string(), "+ZI");
        assert_eq!(t.image_z(1).to_string(), "+ZZ");
        // CX (Y⊗Y) CX = CX (iXZ ⊗ iXZ) CX = -(XX)(ZZ)·(…): verify sign by
        // direct known identity CX·YY·CX = -XZ⊗ZX? Check via conjugate:
        let yy = PauliString::single(2, 0, 'Y').mul(&PauliString::single(2, 1, 'Y'));
        let img = t.conjugate(&yy);
        // CX maps Y0 → Y0X1 and Y1 → Z0Y1; product = (YX)(ZY) = -XZ ⊗ …
        // Regardless of the letters, the image must be Hermitian and
        // square to identity.
        assert!(img.is_hermitian());
        assert!(img.mul(&img).is_identity());
    }

    #[test]
    fn cx_twice_is_identity() {
        let mut t = CliffordTableau::identity(2);
        t.apply_gate(&Gate::Cx, &[0, 1]);
        t.apply_gate(&Gate::Cx, &[0, 1]);
        assert!(t.is_identity());
    }

    #[test]
    fn cz_is_symmetric_and_involutive() {
        let mut a = CliffordTableau::identity(2);
        a.apply_gate(&Gate::Cz, &[0, 1]);
        let mut b = CliffordTableau::identity(2);
        b.apply_gate(&Gate::Cz, &[1, 0]);
        assert_eq!(a, b);
        a.apply_gate(&Gate::Cz, &[0, 1]);
        assert!(a.is_identity());
    }

    #[test]
    fn cz_equals_h_cx_h() {
        let mut cz = CliffordTableau::identity(2);
        cz.apply_gate(&Gate::Cz, &[0, 1]);
        let mut hch = CliffordTableau::identity(2);
        hch.apply_gate(&Gate::H, &[1]);
        hch.apply_gate(&Gate::Cx, &[0, 1]);
        hch.apply_gate(&Gate::H, &[1]);
        assert_eq!(cz, hch);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut sw = CliffordTableau::identity(2);
        sw.apply_gate(&Gate::Swap, &[0, 1]);
        let mut ccc = CliffordTableau::identity(2);
        ccc.apply_gate(&Gate::Cx, &[0, 1]);
        ccc.apply_gate(&Gate::Cx, &[1, 0]);
        ccc.apply_gate(&Gate::Cx, &[0, 1]);
        assert_eq!(sw, ccc);
    }

    #[test]
    fn from_circuit_matches_incremental() {
        let mut c = Circuit::new(2, 0);
        c.h(0).s(1).cx(0, 1).barrier_all().sdg(0);
        let t = CliffordTableau::from_circuit(&c);
        let mut inc = CliffordTableau::identity(2);
        inc.apply_gate(&Gate::H, &[0]);
        inc.apply_gate(&Gate::S, &[1]);
        inc.apply_gate(&Gate::Cx, &[0, 1]);
        inc.apply_gate(&Gate::Sdg, &[0]);
        assert_eq!(t, inc);
    }

    #[test]
    fn circuit_followed_by_inverse_is_identity() {
        let mut c = Circuit::new(3, 0);
        c.h(0).cx(0, 1).s(2).cx(1, 2).h(1).sdg(0).cz(0, 2);
        let inv = CliffordTableau::inverse_circuit_of(&c);
        let mut both = c.clone();
        both.try_extend(&inv).unwrap();
        assert!(CliffordTableau::from_circuit(&both).is_identity());
    }

    #[test]
    fn then_composes_in_order() {
        // X then H should equal tableau of circuit [x, h].
        let x = gate_tableau(1, &Gate::X, &[0]);
        let h = gate_tableau(1, &Gate::H, &[0]);
        let composed = x.then(&h);
        let mut c = Circuit::new(1, 0);
        c.x(0).h(0);
        assert_eq!(composed, CliffordTableau::from_circuit(&c));
    }

    #[test]
    #[should_panic(expected = "not a Clifford")]
    fn t_gate_rejected() {
        CliffordTableau::identity(1).apply_gate(&Gate::T, &[0]);
    }

    #[test]
    fn instantiate_maps_qubits() {
        let decomp = vec![(Gate::H, vec![0]), (Gate::Cx, vec![0, 1])];
        let phys = [Qubit::new(7), Qubit::new(3)];
        let instrs = instantiate(&decomp, &phys);
        assert_eq!(instrs[0].qubits(), &[Qubit::new(7)]);
        assert_eq!(instrs[1].qubits(), &[Qubit::new(7), Qubit::new(3)]);
    }
}
