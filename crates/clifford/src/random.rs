//! Uniform random sampling of Clifford elements.

use crate::group::{self, CliffordGroup, LocalGate};
use crate::CliffordTableau;
use rand::Rng;
use xtalk_ir::{Circuit, Gate};

/// Samples a uniformly random element index from a fully enumerated group.
pub fn uniform_element<R: Rng + ?Sized>(group: &CliffordGroup, rng: &mut R) -> usize {
    rng.gen_range(0..group.len())
}

/// Samples a uniformly random single-qubit Clifford decomposition.
pub fn random_single_qubit_clifford<R: Rng + ?Sized>(rng: &mut R) -> Vec<LocalGate> {
    let g = group::single_qubit_cliffords();
    g.decomposition(uniform_element(g, rng))
}

/// Samples a uniformly random two-qubit Clifford decomposition
/// (CX-optimal, averaging 1.5 CNOTs).
pub fn random_two_qubit_clifford<R: Rng + ?Sized>(rng: &mut R) -> Vec<LocalGate> {
    let g = group::two_qubit_cliffords();
    g.decomposition(uniform_element(g, rng))
}

/// Builds a random `n`-qubit Clifford circuit of `depth` layers, each a
/// random pattern of single-qubit Cliffords and CNOTs on disjoint pairs.
/// Useful for stress tests; sampling is *not* uniform over the group for
/// `n > 2`.
pub fn random_clifford_circuit<R: Rng + ?Sized>(n: usize, depth: usize, rng: &mut R) -> Circuit {
    let mut c = Circuit::new(n, 0);
    for _ in 0..depth {
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut i = 0;
        while i < order.len() {
            if i + 1 < order.len() && rng.gen_bool(0.4) {
                c.cx(order[i] as u32, order[i + 1] as u32);
                i += 2;
            } else {
                match rng.gen_range(0..4) {
                    0 => c.h(order[i] as u32),
                    1 => c.s(order[i] as u32),
                    2 => c.x(order[i] as u32),
                    _ => c.z(order[i] as u32),
                };
                i += 1;
            }
        }
    }
    c
}

/// Applies a decomposition to a tableau, returning the updated tableau —
/// convenience for sequence bookkeeping in RB.
pub fn apply_decomposition(t: &CliffordTableau, gates: &[LocalGate]) -> CliffordTableau {
    let mut out = t.clone();
    for (g, qs) in gates {
        out.apply_gate(g, qs);
    }
    out
}

/// `true` if a decomposition contains only gates native to IBMQ-style
/// hardware after trivial lowering (H/S/Sdg/X/Y/Z/CX).
pub fn is_native(gates: &[LocalGate]) -> bool {
    gates.iter().all(|(g, _)| {
        matches!(g, Gate::H | Gate::S | Gate::Sdg | Gate::X | Gate::Y | Gate::Z | Gate::Cx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn uniform_sampling_covers_group() {
        let g = group::single_qubit_cliffords();
        let mut rng = StdRng::seed_from_u64(0);
        let seen: HashSet<usize> =
            (0..2000).map(|_| uniform_element(g, &mut rng)).collect();
        assert_eq!(seen.len(), 24, "2000 draws should hit all 24 elements");
    }

    #[test]
    fn sampled_two_qubit_cliffords_are_native() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let d = random_two_qubit_clifford(&mut rng);
            assert!(is_native(&d));
        }
    }

    #[test]
    fn mean_cx_count_close_to_1_5() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2000;
        let total: usize = (0..n)
            .map(|_| {
                random_two_qubit_clifford(&mut rng)
                    .iter()
                    .filter(|(g, _)| g.is_two_qubit())
                    .count()
            })
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "mean CX {mean}");
    }

    #[test]
    fn random_circuit_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_clifford_circuit(6, 10, &mut rng);
        assert_eq!(c.num_qubits(), 6);
        assert!(c.len() >= 10);
        // All Clifford: the tableau builds without panicking.
        let _ = CliffordTableau::from_circuit(&c);
    }

    #[test]
    fn apply_decomposition_matches_manual() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = random_two_qubit_clifford(&mut rng);
        let t = apply_decomposition(&CliffordTableau::identity(2), &d);
        let mut manual = CliffordTableau::identity(2);
        for (g, qs) in &d {
            manual.apply_gate(g, qs);
        }
        assert_eq!(t, manual);
    }
}
