//! n-qubit Pauli operators with phase tracking.

use std::fmt;

/// An n-qubit Pauli operator `i^phase · ∏_q X_q^{x_q} Z_q^{z_q}`, with
/// factors in canonical order (ascending qubit, `X` before `Z` on each
/// qubit) and `phase` a power of `i` modulo 4.
///
/// In this canonical form `Y = i·XZ` is stored as `x=1, z=1, phase=1`.
///
/// ```
/// use xtalk_clifford::PauliString;
/// let x = PauliString::single(2, 0, 'X');
/// let z = PauliString::single(2, 0, 'Z');
/// // ZX = -XZ: multiplying in the two orders differs by phase 2 (i² = -1).
/// assert_eq!(x.mul(&z).phase(), 0);
/// assert_eq!(z.mul(&x).phase(), 2);
/// assert_eq!(x.to_string(), "+XI");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PauliString {
    x: Vec<bool>,
    z: Vec<bool>,
    phase: u8,
}

impl PauliString {
    /// The identity on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString { x: vec![false; n], z: vec![false; n], phase: 0 }
    }

    /// A single-qubit Pauli (`'I'`, `'X'`, `'Y'`, `'Z'`) on qubit `q` of an
    /// `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics on an unknown letter or `q >= n`.
    pub fn single(n: usize, q: usize, which: char) -> Self {
        assert!(q < n, "qubit {q} out of range for {n}");
        let mut p = PauliString::identity(n);
        match which {
            'I' => {}
            'X' => p.x[q] = true,
            'Y' => {
                p.x[q] = true;
                p.z[q] = true;
                p.phase = 1;
            }
            'Z' => p.z[q] = true,
            other => panic!("unknown pauli letter `{other}`"),
        }
        p
    }

    /// Builds from explicit bit vectors and phase.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or phase is not in `0..4`.
    pub fn from_parts(x: Vec<bool>, z: Vec<bool>, phase: u8) -> Self {
        assert_eq!(x.len(), z.len(), "x and z bit vectors must agree");
        assert!(phase < 4, "phase is a power of i modulo 4");
        PauliString { x, z, phase }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.x.len()
    }

    /// X bit of qubit `q`.
    pub fn x_bit(&self, q: usize) -> bool {
        self.x[q]
    }

    /// Z bit of qubit `q`.
    pub fn z_bit(&self, q: usize) -> bool {
        self.z[q]
    }

    /// The phase exponent `p` in `i^p` (mod 4).
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// `true` if this is the identity with `+1` phase.
    pub fn is_identity(&self) -> bool {
        self.phase == 0 && self.x.iter().all(|b| !b) && self.z.iter().all(|b| !b)
    }

    /// Number of qubits on which the operator is not `I`.
    pub fn weight(&self) -> usize {
        (0..self.num_qubits()).filter(|&q| self.x[q] || self.z[q]).count()
    }

    /// The product `self · other` (operator composition, applied right to
    /// left like matrix multiplication — but since we only ever use
    /// products inside a group where order is explicit, read it simply as
    /// "first write self's factors, then other's, then normalize").
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.num_qubits(), other.num_qubits(), "pauli widths must match");
        let n = self.num_qubits();
        let mut phase = (self.phase + other.phase) % 4;
        let mut x = vec![false; n];
        let mut z = vec![false; n];
        for q in 0..n {
            // Normalizing X^a Z^b · X^c Z^d requires commuting Z^b past
            // X^c: each swap contributes (-1)^{bc} = i^{2bc}.
            if self.z[q] && other.x[q] {
                phase = (phase + 2) % 4;
            }
            x[q] = self.x[q] ^ other.x[q];
            z[q] = self.z[q] ^ other.z[q];
        }
        PauliString { x, z, phase }
    }

    /// `true` if the two operators commute.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        // Symplectic product: Σ (x·z' + z·x') mod 2 == 0.
        let mut anti = false;
        for q in 0..self.num_qubits() {
            anti ^= (self.x[q] && other.z[q]) ^ (self.z[q] && other.x[q]);
        }
        !anti
    }

    /// `true` if the operator is Hermitian (phase ±1 in canonical form —
    /// i.e. phase parity matches the Y count).
    pub fn is_hermitian(&self) -> bool {
        let ys = (0..self.num_qubits()).filter(|&q| self.x[q] && self.z[q]).count();
        (self.phase as usize).rem_euclid(2) == ys % 2
    }

    /// The sign of a Hermitian operator: `+1` or `-1`.
    ///
    /// # Panics
    ///
    /// Panics if the operator is not Hermitian.
    pub fn sign(&self) -> i8 {
        assert!(self.is_hermitian(), "sign of a non-hermitian pauli");
        let ys = (0..self.num_qubits()).filter(|&q| self.x[q] && self.z[q]).count() as u8;
        if (self.phase + 4 - (ys % 4)).is_multiple_of(4) {
            1
        } else {
            -1
        }
    }
}

impl fmt::Display for PauliString {
    /// Writes the Hermitian letter form when possible (`+XIZ`, `-IYI`),
    /// falling back to an explicit `i^p` prefix.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_hermitian() {
            write!(f, "{}", if self.sign() > 0 { '+' } else { '-' })?;
        } else {
            write!(f, "i^{}·", self.phase)?;
        }
        for q in 0..self.num_qubits() {
            let c = match (self.x[q], self.z[q]) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize, q: usize, w: char) -> PauliString {
        PauliString::single(n, q, w)
    }

    #[test]
    fn single_letter_forms() {
        assert_eq!(p(3, 1, 'X').to_string(), "+IXI");
        assert_eq!(p(3, 2, 'Y').to_string(), "+IIY");
        assert_eq!(p(1, 0, 'Z').to_string(), "+Z");
        assert!(p(2, 0, 'I').is_identity());
    }

    #[test]
    fn xz_products() {
        let x = p(1, 0, 'X');
        let z = p(1, 0, 'Z');
        let y = p(1, 0, 'Y');
        // XZ = -iY is anti-Hermitian: (XZ)† = ZX = -XZ.
        let xz = x.mul(&z);
        assert_eq!(xz.phase(), 0);
        assert!(!xz.is_hermitian());
        let zx = z.mul(&x);
        assert_eq!(zx.phase(), 2);
        // Y·Y = I.
        assert!(y.mul(&y).is_identity());
        // X·Y = iZ.
        let xy = x.mul(&y);
        assert_eq!(xy.phase(), 1);
        assert!(xy.z_bit(0) && !xy.x_bit(0));
    }

    #[test]
    fn pauli_squares_are_identity() {
        for w in ['X', 'Y', 'Z'] {
            assert!(p(2, 1, w).mul(&p(2, 1, w)).is_identity(), "{w}² != I");
        }
    }

    #[test]
    fn commutation_rules() {
        assert!(!p(1, 0, 'X').commutes_with(&p(1, 0, 'Z')));
        assert!(p(2, 0, 'X').commutes_with(&p(2, 1, 'Z')));
        // XX commutes with ZZ.
        let xx = p(2, 0, 'X').mul(&p(2, 1, 'X'));
        let zz = p(2, 0, 'Z').mul(&p(2, 1, 'Z'));
        assert!(xx.commutes_with(&zz));
    }

    #[test]
    fn signs() {
        let y = p(1, 0, 'Y');
        assert_eq!(y.sign(), 1);
        let minus_y = PauliString::from_parts(vec![true], vec![true], 3);
        assert_eq!(minus_y.sign(), -1);
        assert_eq!(minus_y.to_string(), "-Y");
    }

    #[test]
    fn weight_counts_nonidentity() {
        let s = p(3, 0, 'X').mul(&p(3, 2, 'Z'));
        assert_eq!(s.weight(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown pauli letter")]
    fn bad_letter() {
        PauliString::single(1, 0, 'Q');
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn width_mismatch() {
        p(1, 0, 'X').mul(&p(2, 0, 'X'));
    }
}
