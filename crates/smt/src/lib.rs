//! A small optimizing constraint solver: DPLL-style boolean search over a
//! difference-logic theory with branch-and-bound minimization.
//!
//! The paper solves its scheduling formulation with Z3's optimizing SMT
//! solver (νZ). The `z3` crate needs a native library unavailable in this
//! build environment, so this crate implements the exact fragment the
//! scheduling encoding of Section 7 uses:
//!
//! * **Real variables** (gate start times, in integer nanoseconds) related
//!   by *difference constraints* `x − y ≥ c` — data dependencies (Eq. 1)
//!   and serialization decisions.
//! * **Boolean variables** (serialization/ordering indicators) that *guard*
//!   difference constraints, with at-most-one groups and pairwise
//!   conflicts for mutual exclusion.
//! * An **objective** evaluated on complete assignments (the ω-weighted
//!   crosstalk/decoherence trade-off of Eq. 17), minimized by exhaustive
//!   DPLL search with admissible-bound pruning.
//!
//! Theory consistency is decided by Bellman–Ford on the constraint graph
//! (difference logic is exactly shortest-path feasibility), and the
//! canonical *earliest* feasible assignment (the ASAP schedule) is handed
//! to the objective, which may post-process it (the scheduler right-aligns
//! it to model IBMQ's simultaneous readout).
//!
//! ```
//! use xtalk_smt::{Model, Objective, Optimizer};
//!
//! // Two "gates" of duration 100 that may be serialized either way.
//! let mut m = Model::new();
//! let a = m.real_var();
//! let b = m.real_var();
//! let ab = m.bool_var(); // a before b
//! let ba = m.bool_var(); // b before a
//! m.guard(ab, m.ge_diff(b, a, 100));
//! m.guard(ba, m.ge_diff(a, b, 100));
//! m.at_most_one(vec![ab, ba]);
//!
//! // Prefer serialization (cost 0) over overlap (cost 1), ties to `ab`.
//! struct Serialize;
//! impl Objective for Serialize {
//!     fn evaluate(&self, bools: &[bool], _times: &[i64]) -> f64 {
//!         if bools[0] || bools[1] { 0.0 } else { 1.0 }
//!     }
//! }
//! let sol = Optimizer::new(m).minimize(&Serialize).expect("satisfiable");
//! assert_eq!(sol.cost, 0.0);
//! assert!(sol.bools[0] ^ sol.bools[1]);
//! ```

mod dl;
mod model;
mod search;

pub use dl::{DiffConstraint, DifferenceLogic};
pub use model::{BoolVar, Model, RealVar};
pub use search::{Objective, Optimizer, SearchConfig, SearchOutcome, Solution};
