//! Difference-logic theory: feasibility and earliest solutions via
//! Bellman–Ford longest paths.

use crate::model::RealVar;

/// The atom `x − y ≥ c` (or `x ≥ c` when `y` is `None`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DiffConstraint {
    /// Left variable.
    pub x: RealVar,
    /// Right variable; `None` means the constant origin (0).
    pub y: Option<RealVar>,
    /// The lower bound on the difference.
    pub c: i64,
}

/// A difference-logic constraint system over `n` non-negative variables.
///
/// Constraints `x − y ≥ c` become edges `y → x` of weight `c` in a graph
/// rooted at an origin node fixed to 0 (with `origin → x` weight 0 edges
/// encoding `x ≥ 0`). The system is satisfiable iff the graph has no
/// positive cycle, and the longest-path distances from the origin are the
/// unique minimal (ASAP) solution.
///
/// ```
/// use xtalk_smt::{DifferenceLogic, Model};
/// let mut m = Model::new();
/// let a = m.real_var();
/// let b = m.real_var();
/// let mut dl = DifferenceLogic::new(2);
/// dl.add(m.ge_diff(b, a, 300)); // b ≥ a + 300
/// dl.add(m.ge_const(a, 50));    // a ≥ 50
/// let times = dl.earliest().expect("feasible");
/// assert_eq!(times, vec![50, 350]);
/// ```
#[derive(Clone, Debug)]
pub struct DifferenceLogic {
    n: usize,
    constraints: Vec<DiffConstraint>,
    marks: Vec<usize>,
}

impl DifferenceLogic {
    /// An empty system over `n` variables.
    pub fn new(n: usize) -> Self {
        DifferenceLogic { n, constraints: Vec::new(), marks: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references variables outside the system.
    pub fn add(&mut self, c: DiffConstraint) {
        assert!(c.x.index() < self.n, "variable out of range");
        if let Some(y) = c.y {
            assert!(y.index() < self.n, "variable out of range");
        }
        self.constraints.push(c);
    }

    /// Saves a restore point; constraints added after this call are
    /// removed by the matching [`DifferenceLogic::pop`].
    pub fn push(&mut self) {
        self.marks.push(self.constraints.len());
    }

    /// Restores to the last [`DifferenceLogic::push`].
    ///
    /// # Panics
    ///
    /// Panics if there is no matching `push`.
    pub fn pop(&mut self) {
        let mark = self.marks.pop().expect("pop without matching push");
        self.constraints.truncate(mark);
    }

    /// The minimal non-negative solution (longest paths from the origin),
    /// or `None` if the system is infeasible (positive cycle).
    pub fn earliest(&self) -> Option<Vec<i64>> {
        // Bellman–Ford longest path; origin distance 0, vars start at 0
        // (the implicit x ≥ 0 edges).
        let mut dist = vec![0i64; self.n];
        for round in 0..=self.n {
            let mut changed = false;
            for c in &self.constraints {
                let base = match c.y {
                    Some(y) => dist[y.index()],
                    None => 0,
                };
                let cand = base + c.c;
                if cand > dist[c.x.index()] {
                    dist[c.x.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return Some(dist);
            }
            if round == self.n {
                return None; // still relaxing after n rounds → positive cycle
            }
        }
        Some(dist)
    }

    /// `true` if the current constraint set is satisfiable.
    pub fn feasible(&self) -> bool {
        self.earliest().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn vars(n: usize) -> (Model, Vec<RealVar>) {
        let mut m = Model::new();
        let vs = (0..n).map(|_| m.real_var()).collect();
        (m, vs)
    }

    #[test]
    fn chain_is_cumulative() {
        let (m, v) = vars(3);
        let mut dl = DifferenceLogic::new(3);
        dl.add(m.ge_diff(v[1], v[0], 100));
        dl.add(m.ge_diff(v[2], v[1], 200));
        assert_eq!(dl.earliest().unwrap(), vec![0, 100, 300]);
    }

    #[test]
    fn cycle_detected() {
        let (m, v) = vars(2);
        let mut dl = DifferenceLogic::new(2);
        dl.add(m.ge_diff(v[1], v[0], 10));
        dl.add(m.ge_diff(v[0], v[1], 10));
        assert!(!dl.feasible());
    }

    #[test]
    fn zero_weight_cycle_is_feasible() {
        // x - y ≥ 0 and y - x ≥ 0 force equality, which is fine.
        let (m, v) = vars(2);
        let mut dl = DifferenceLogic::new(2);
        dl.add(m.ge_diff(v[1], v[0], 0));
        dl.add(m.ge_diff(v[0], v[1], 0));
        assert_eq!(dl.earliest().unwrap(), vec![0, 0]);
    }

    #[test]
    fn negative_offsets_allowed() {
        // b ≥ a - 50 with a ≥ 100 keeps b at its floor of 0.
        let (m, v) = vars(2);
        let mut dl = DifferenceLogic::new(2);
        dl.add(m.ge_const(v[0], 100));
        dl.add(m.ge_diff(v[1], v[0], -50));
        assert_eq!(dl.earliest().unwrap(), vec![100, 50]);
    }

    #[test]
    fn push_pop_restores() {
        let (m, v) = vars(2);
        let mut dl = DifferenceLogic::new(2);
        dl.add(m.ge_diff(v[1], v[0], 10));
        dl.push();
        dl.add(m.ge_diff(v[0], v[1], 10)); // now infeasible
        assert!(!dl.feasible());
        dl.pop();
        assert!(dl.feasible());
        assert_eq!(dl.earliest().unwrap(), vec![0, 10]);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        DifferenceLogic::new(1).pop();
    }

    #[test]
    fn earliest_is_minimal() {
        // Every feasible solution dominates the earliest one pointwise.
        let (m, v) = vars(3);
        let mut dl = DifferenceLogic::new(3);
        dl.add(m.ge_diff(v[1], v[0], 5));
        dl.add(m.ge_diff(v[2], v[0], 3));
        dl.add(m.ge_const(v[2], 7));
        let e = dl.earliest().unwrap();
        assert_eq!(e, vec![0, 5, 7]);
    }
}
