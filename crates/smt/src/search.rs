//! DPLL-style search over the boolean decisions with branch-and-bound
//! minimization.

use crate::dl::DifferenceLogic;
use crate::model::{BoolVar, Model};
use xtalk_budget::Budget;

/// The objective to minimize.
///
/// `evaluate` receives a complete boolean assignment and the *earliest*
/// feasible times of the real variables (the ASAP solution of the active
/// difference constraints); implementations may post-process the times
/// (e.g. right-align) before costing them. `lower_bound` must be
/// admissible: never greater than the cost of any completion of the
/// partial assignment (entries `None` are undecided). The default bound
/// is `−∞`, which disables pruning.
pub trait Objective {
    /// Cost of a complete assignment.
    fn evaluate(&self, bools: &[bool], times: &[i64]) -> f64;

    /// Admissible lower bound for a partial assignment.
    fn lower_bound(&self, _bools: &[Option<bool>]) -> f64 {
        f64::NEG_INFINITY
    }
}

/// Search limits.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Abort after exploring this many leaves (best-so-far is returned).
    pub max_leaves: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { max_leaves: 1 << 22 }
    }
}

/// How a search ended.
///
/// `complete: false` means the search was truncated — by the
/// [`SearchConfig::max_leaves`] cap or by an exhausted
/// [`Budget`] — so a returned solution is best-so-far, not
/// proven optimal, and a `None` result means "no feasible leaf reached
/// yet" rather than "proven infeasible".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchOutcome {
    /// `true` iff the search space was exhausted (result is proven).
    pub complete: bool,
    /// Leaves evaluated before the search ended.
    pub leaves: u64,
}

/// A minimizing solution.
#[derive(Clone, PartialEq, Debug)]
pub struct Solution {
    /// The boolean assignment.
    pub bools: Vec<bool>,
    /// The earliest feasible real-variable values under that assignment.
    pub times: Vec<i64>,
    /// Objective value.
    pub cost: f64,
    /// Leaves evaluated during search (diagnostic).
    pub leaves: u64,
}

/// Exhaustive DPLL search with unit propagation over the model's boolean
/// structure, theory checks in difference logic, and branch-and-bound
/// pruning against [`Objective::lower_bound`].
#[derive(Debug)]
pub struct Optimizer {
    model: Model,
    config: SearchConfig,
}

struct SearchState<'a> {
    model: &'a Model,
    obj: &'a dyn Objective,
    config: SearchConfig,
    budget: &'a Budget,
    assignment: Vec<Option<bool>>,
    dl: DifferenceLogic,
    best: Option<Solution>,
    leaves: u64,
    decisions: u64,
    backtracks: u64,
    truncated: bool,
}

impl Optimizer {
    /// An optimizer with default limits.
    pub fn new(model: Model) -> Self {
        Optimizer { model, config: SearchConfig::default() }
    }

    /// Overrides search limits.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Minimizes `obj`; returns `None` iff no assignment satisfies the
    /// constraints (within the leaf budget).
    pub fn minimize(&self, obj: &dyn Objective) -> Option<Solution> {
        self.minimize_budgeted(obj, &Budget::unlimited()).0
    }

    /// Minimizes `obj` under a cooperative [`Budget`], polled at every
    /// decision point. On exhaustion the best solution found so far is
    /// returned with `outcome.complete == false`; a `(None, incomplete)`
    /// result means the budget expired before any feasible leaf — the
    /// caller should fall back rather than treat the model as infeasible.
    pub fn minimize_budgeted(
        &self,
        obj: &dyn Objective,
        budget: &Budget,
    ) -> (Option<Solution>, SearchOutcome) {
        let _span = xtalk_obs::span("smt.solve");
        let mut dl = DifferenceLogic::new(self.model.n_real);
        for c in &self.model.hard {
            dl.add(*c);
        }
        if !dl.feasible() {
            // Proven infeasible: a complete (if empty) answer.
            return (None, SearchOutcome { complete: true, leaves: 0 });
        }
        let mut st = SearchState {
            model: &self.model,
            obj,
            config: self.config,
            budget,
            assignment: vec![None; self.model.n_bool],
            dl,
            best: None,
            leaves: 0,
            decisions: 0,
            backtracks: 0,
            truncated: false,
        };
        st.search();
        xtalk_obs::counter!("smt.leaves", st.leaves);
        xtalk_obs::counter!("smt.decisions", st.decisions);
        xtalk_obs::counter!("smt.backtracks", st.backtracks);
        if st.truncated {
            xtalk_obs::counter!("smt.truncated", 1);
        }
        let outcome = SearchOutcome { complete: !st.truncated, leaves: st.leaves };
        let leaves = st.leaves;
        let sol = st.best.map(|mut s| {
            s.leaves = leaves;
            s
        });
        (sol, outcome)
    }
}

impl<'a> SearchState<'a> {
    /// Propagates boolean consequences of `var := value`. Returns the list
    /// of variables this call assigned (for undo), or `None` on conflict.
    fn assign(&mut self, var: BoolVar, value: bool) -> Option<Vec<BoolVar>> {
        let mut trail: Vec<BoolVar> = Vec::new();
        let mut queue = vec![(var, value)];
        while let Some((v, val)) = queue.pop() {
            match self.assignment[v.0] {
                Some(existing) => {
                    if existing != val {
                        // Conflict: undo and report.
                        for t in &trail {
                            self.assignment[t.0] = None;
                        }
                        return None;
                    }
                    continue;
                }
                None => {
                    self.assignment[v.0] = Some(val);
                    trail.push(v);
                }
            }
            if val {
                for group in &self.model.at_most_one {
                    if group.contains(&v) {
                        for &other in group {
                            if other != v {
                                queue.push((other, false));
                            }
                        }
                    }
                }
                for &(a, b) in &self.model.conflicts {
                    if a == v {
                        queue.push((b, false));
                    } else if b == v {
                        queue.push((a, false));
                    }
                }
                for &(a, b) in &self.model.implications {
                    if a == v {
                        queue.push((b, true));
                    }
                }
            } else {
                // ¬b with (a ⇒ b) forces ¬a.
                for &(a, b) in &self.model.implications {
                    if b == v {
                        queue.push((a, false));
                    }
                }
            }
        }
        Some(trail)
    }

    fn undo(&mut self, trail: &[BoolVar]) {
        for v in trail {
            self.assignment[v.0] = None;
        }
    }

    /// `true` if the active guarded constraints are theory-consistent.
    fn theory_ok(&mut self) -> bool {
        self.dl.push();
        for (g, c) in &self.model.guarded {
            if self.assignment[g.0] == Some(true) {
                self.dl.add(*c);
            }
        }
        let ok = self.dl.feasible();
        self.dl.pop();
        ok
    }

    fn search(&mut self) {
        // Truncation checks: entering a node with the leaf cap spent or
        // the budget gone means unexplored branches remain, so whatever
        // `best` holds is no longer a proven optimum.
        if self.leaves >= self.config.max_leaves || self.budget.exhausted().is_some() {
            self.truncated = true;
            return;
        }
        // Bound check.
        if let Some(best) = &self.best {
            if self.obj.lower_bound(&self.assignment) >= best.cost {
                return;
            }
        }
        // Pick the next unassigned variable.
        let next = (0..self.model.n_bool).find(|&i| self.assignment[i].is_none());
        let Some(next) = next else {
            // Leaf: full assignment. Theory solve and evaluate. Each leaf
            // charges one quota unit, so quota budgets bound leaves too.
            self.leaves += 1;
            self.budget.charge(1);
            self.dl.push();
            for (g, c) in &self.model.guarded {
                if self.assignment[g.0] == Some(true) {
                    self.dl.add(*c);
                }
            }
            if let Some(times) = self.dl.earliest() {
                let bools: Vec<bool> =
                    self.assignment.iter().map(|b| b.expect("complete")).collect();
                let cost = self.obj.evaluate(&bools, &times);
                if self.best.as_ref().is_none_or(|b| cost < b.cost) {
                    self.best = Some(Solution { bools, times, cost, leaves: 0 });
                }
            }
            self.dl.pop();
            return;
        };

        // Branch: try true first (serialization decisions tend to pay),
        // then false.
        for value in [true, false] {
            self.decisions += 1;
            if let Some(trail) = self.assign(BoolVar(next), value) {
                if !value || self.theory_ok() {
                    self.search();
                } else {
                    self.backtracks += 1;
                }
                self.undo(&trail);
            } else {
                self.backtracks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    struct Count;
    impl Objective for Count {
        fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
            bools.iter().filter(|&&b| b).count() as f64
        }
        fn lower_bound(&self, bools: &[Option<bool>]) -> f64 {
            bools.iter().filter(|b| **b == Some(true)).count() as f64
        }
    }

    #[test]
    fn minimizes_trivially_to_all_false() {
        let mut m = Model::new();
        for _ in 0..6 {
            m.bool_var();
        }
        let sol = Optimizer::new(m).minimize(&Count).unwrap();
        assert_eq!(sol.cost, 0.0);
        assert!(sol.bools.iter().all(|&b| !b));
    }

    struct PreferLate;
    impl Objective for PreferLate {
        fn evaluate(&self, bools: &[bool], times: &[i64]) -> f64 {
            // Want var1 late: negative cost on its ASAP time; choosing the
            // guard that pushes it is optimal.
            -(times[1] as f64) + if bools[0] { 0.1 } else { 0.0 }
        }
    }

    #[test]
    fn guards_activate_constraints() {
        let mut m = Model::new();
        let a = m.real_var();
        let b = m.real_var();
        let g = m.bool_var();
        m.require(m.ge_const(a, 100));
        m.guard(g, m.ge_diff(b, a, 500));
        let sol = Optimizer::new(m).minimize(&PreferLate).unwrap();
        assert!(sol.bools[0]);
        assert_eq!(sol.times, vec![100, 600]);
        assert!((sol.cost + 599.9).abs() < 1e-9);
    }

    #[test]
    fn infeasible_guards_are_avoided() {
        // Activating both guards creates a positive cycle, so the solver
        // must leave at least one false even though Count would prefer…
        // wait, Count prefers false anyway; use an objective that wants
        // both true.
        struct WantTrue;
        impl Objective for WantTrue {
            fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
                bools.iter().filter(|&&b| !b).count() as f64
            }
        }
        let mut m = Model::new();
        let a = m.real_var();
        let b = m.real_var();
        let g1 = m.bool_var();
        let g2 = m.bool_var();
        m.guard(g1, m.ge_diff(a, b, 10));
        m.guard(g2, m.ge_diff(b, a, 10));
        let sol = Optimizer::new(m).minimize(&WantTrue).unwrap();
        // Best feasible: exactly one true.
        assert_eq!(sol.bools.iter().filter(|&&b| b).count(), 1);
        assert_eq!(sol.cost, 1.0);
    }

    #[test]
    fn at_most_one_enforced() {
        struct AllTrue;
        impl Objective for AllTrue {
            fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
                bools.iter().filter(|&&b| !b).count() as f64
            }
        }
        let mut m = Model::new();
        let p = m.bool_var();
        let q = m.bool_var();
        let r = m.bool_var();
        m.at_most_one(vec![p, q, r]);
        let sol = Optimizer::new(m).minimize(&AllTrue).unwrap();
        assert_eq!(sol.bools.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn implications_propagate() {
        struct WantAOnly;
        impl Objective for WantAOnly {
            fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
                // Reward a true, penalize b true: but a ⇒ b forces both.
                (if bools[0] { 0.0 } else { 10.0 }) + (if bools[1] { 1.0 } else { 0.0 })
            }
        }
        let mut m = Model::new();
        let a = m.bool_var();
        let b = m.bool_var();
        m.implies(a, b);
        let sol = Optimizer::new(m).minimize(&WantAOnly).unwrap();
        assert_eq!(sol.bools, vec![true, true]);
        assert_eq!(sol.cost, 1.0);
    }

    #[test]
    fn hard_infeasible_returns_none() {
        let mut m = Model::new();
        let a = m.real_var();
        let b = m.real_var();
        m.require(m.ge_diff(a, b, 1));
        m.require(m.ge_diff(b, a, 1));
        assert!(Optimizer::new(m).minimize(&Count).is_none());
    }

    #[test]
    fn pruning_does_not_change_answer() {
        // With an admissible bound, the result matches unpruned search.
        let mut m = Model::new();
        for _ in 0..10 {
            m.bool_var();
        }
        let m2 = m.clone();
        struct NoBound;
        impl Objective for NoBound {
            fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
                bools.iter().filter(|&&b| b).count() as f64
            }
        }
        let pruned = Optimizer::new(m).minimize(&Count).unwrap();
        let full = Optimizer::new(m2).minimize(&NoBound).unwrap();
        assert_eq!(pruned.cost, full.cost);
        assert!(pruned.leaves <= full.leaves);
    }

    #[test]
    fn complete_search_reports_complete_outcome() {
        let mut m = Model::new();
        for _ in 0..6 {
            m.bool_var();
        }
        let (sol, outcome) =
            Optimizer::new(m).minimize_budgeted(&Count, &Budget::unlimited());
        assert!(sol.is_some());
        assert!(outcome.complete);
        assert_eq!(outcome.leaves, sol.unwrap().leaves);
    }

    #[test]
    fn leaf_cap_marks_outcome_incomplete() {
        let mut m = Model::new();
        for _ in 0..8 {
            m.bool_var();
        }
        let opt = Optimizer::new(m).with_config(SearchConfig { max_leaves: 1 });
        let (sol, outcome) = opt.minimize_budgeted(&Count, &Budget::unlimited());
        // One leaf reached: best-so-far exists but is not proven optimal.
        assert!(sol.is_some());
        assert!(!outcome.complete);
        assert_eq!(outcome.leaves, 1);
    }

    #[test]
    fn cancelled_budget_yields_incomplete_none() {
        let mut m = Model::new();
        for _ in 0..4 {
            m.bool_var();
        }
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let (sol, outcome) = Optimizer::new(m).minimize_budgeted(&Count, &budget);
        // Cancelled before any leaf: no solution, explicitly incomplete —
        // distinguishable from the proven-infeasible (None, complete) case.
        assert!(sol.is_none());
        assert!(!outcome.complete);
        assert_eq!(outcome.leaves, 0);
    }

    #[test]
    fn quota_budget_truncates_after_charged_leaves() {
        let mut m = Model::new();
        for _ in 0..8 {
            m.bool_var();
        }
        let budget = Budget::unlimited().with_quota(3);
        let (sol, outcome) = Optimizer::new(m).minimize_budgeted(&Count, &budget);
        assert!(sol.is_some());
        assert!(!outcome.complete);
        assert_eq!(outcome.leaves, 3);
    }

    #[test]
    fn hard_infeasible_is_complete_none() {
        let mut m = Model::new();
        let a = m.real_var();
        let b = m.real_var();
        m.require(m.ge_diff(a, b, 1));
        m.require(m.ge_diff(b, a, 1));
        let (sol, outcome) =
            Optimizer::new(m).minimize_budgeted(&Count, &Budget::unlimited());
        assert!(sol.is_none());
        assert!(outcome.complete, "proven infeasibility is a complete answer");
    }

    #[test]
    fn conflict_pairs_respected() {
        struct AllTrue;
        impl Objective for AllTrue {
            fn evaluate(&self, bools: &[bool], _t: &[i64]) -> f64 {
                bools.iter().filter(|&&b| !b).count() as f64
            }
        }
        let mut m = Model::new();
        let a = m.bool_var();
        let b = m.bool_var();
        m.conflict(a, b);
        let sol = Optimizer::new(m).minimize(&AllTrue).unwrap();
        assert!(!(sol.bools[0] && sol.bools[1]));
        assert_eq!(sol.cost, 1.0);
    }
}
