//! Problem description: variables and constraints.

use crate::dl::DiffConstraint;

/// A real-valued variable (interpreted over non-negative integers — gate
/// start times in nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RealVar(pub(crate) usize);

impl RealVar {
    /// The variable's index in solution vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A boolean decision variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BoolVar(pub(crate) usize);

impl BoolVar {
    /// The variable's index in solution vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A constraint system in the solver's fragment: difference constraints,
/// guarded difference constraints, and simple boolean structure.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) n_real: usize,
    pub(crate) n_bool: usize,
    pub(crate) hard: Vec<DiffConstraint>,
    pub(crate) guarded: Vec<(BoolVar, DiffConstraint)>,
    pub(crate) at_most_one: Vec<Vec<BoolVar>>,
    pub(crate) conflicts: Vec<(BoolVar, BoolVar)>,
    pub(crate) implications: Vec<(BoolVar, BoolVar)>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a fresh real variable (implicitly `≥ 0`).
    pub fn real_var(&mut self) -> RealVar {
        self.n_real += 1;
        RealVar(self.n_real - 1)
    }

    /// Adds a fresh boolean variable.
    pub fn bool_var(&mut self) -> BoolVar {
        self.n_bool += 1;
        BoolVar(self.n_bool - 1)
    }

    /// Number of real variables.
    pub fn num_real(&self) -> usize {
        self.n_real
    }

    /// Number of boolean variables.
    pub fn num_bool(&self) -> usize {
        self.n_bool
    }

    /// The constraint `x − y ≥ c` (builder; add with [`Model::require`]
    /// or [`Model::guard`]).
    pub fn ge_diff(&self, x: RealVar, y: RealVar, c: i64) -> DiffConstraint {
        DiffConstraint { x, y: Some(y), c }
    }

    /// The constraint `x ≥ c`.
    pub fn ge_const(&self, x: RealVar, c: i64) -> DiffConstraint {
        DiffConstraint { x, y: None, c }
    }

    /// Adds an unconditional constraint.
    pub fn require(&mut self, c: DiffConstraint) {
        self.validate(&c);
        self.hard.push(c);
    }

    /// Adds a constraint active only when `guard` is assigned true.
    pub fn guard(&mut self, guard: BoolVar, c: DiffConstraint) {
        self.validate(&c);
        assert!(guard.0 < self.n_bool, "unknown bool var");
        self.guarded.push((guard, c));
    }

    /// At most one of `vars` may be true.
    ///
    /// # Panics
    ///
    /// Panics on unknown or duplicate variables.
    pub fn at_most_one(&mut self, vars: Vec<BoolVar>) {
        for (i, v) in vars.iter().enumerate() {
            assert!(v.0 < self.n_bool, "unknown bool var");
            assert!(!vars[i + 1..].contains(v), "duplicate var in at-most-one");
        }
        self.at_most_one.push(vars);
    }

    /// `¬a ∨ ¬b`: the two decisions cannot both hold.
    pub fn conflict(&mut self, a: BoolVar, b: BoolVar) {
        assert!(a.0 < self.n_bool && b.0 < self.n_bool, "unknown bool var");
        assert_ne!(a, b, "conflict needs two distinct vars");
        self.conflicts.push((a, b));
    }

    /// `a ⇒ b`.
    pub fn implies(&mut self, a: BoolVar, b: BoolVar) {
        assert!(a.0 < self.n_bool && b.0 < self.n_bool, "unknown bool var");
        self.implications.push((a, b));
    }

    fn validate(&self, c: &DiffConstraint) {
        assert!(c.x.0 < self.n_real, "unknown real var");
        if let Some(y) = c.y {
            assert!(y.0 < self.n_real, "unknown real var");
            assert_ne!(y, c.x, "difference constraint needs distinct vars");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_allocation() {
        let mut m = Model::new();
        let a = m.real_var();
        let b = m.real_var();
        let p = m.bool_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.index(), 0);
        assert_eq!(m.num_real(), 2);
        assert_eq!(m.num_bool(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown real var")]
    fn foreign_var_rejected() {
        let mut m = Model::new();
        let mut other = Model::new();
        let x = other.real_var();
        m.require(DiffConstraint { x, y: None, c: 0 });
    }

    #[test]
    #[should_panic(expected = "distinct vars")]
    fn self_difference_rejected() {
        let mut m = Model::new();
        let x = m.real_var();
        m.require(m.ge_diff(x, x, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate var")]
    fn duplicate_amo_rejected() {
        let mut m = Model::new();
        let p = m.bool_var();
        m.at_most_one(vec![p, p]);
    }
}
