//! Offline, dependency-free stand-in for the slice of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, std-only implementation under the same crate name.
//! Only the surface actually exercised by the other crates is provided:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256\*\*, seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer/float
//!   ranges, [`Rng::gen_bool`], and [`Rng::gen`] for `f64`/`u64`/`bool`.
//!
//! The streams are *not* bit-compatible with the real `rand` crate — all
//! in-tree consumers treat RNG output as an opaque deterministic stream,
//! which is the property this crate preserves.

pub mod rngs;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from `T`'s standard distribution (`f64` in `[0, 1)`,
    /// full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A `f64` in `[0, 1)` with 53 random mantissa bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from a "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// The single blanket impl per range shape (mirroring `rand`'s
/// `SampleRange`) matters for type inference: it ties the range's element
/// type to `gen_range`'s return type, so `slice[rng.gen_range(0..3)]`
/// infers `usize` instead of falling back to `i32`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range (mirror of `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        // Floating rounding can land exactly on `hi`; stay half-open.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: i64 = rng.gen_range(-30..60);
            assert!((-30..60).contains(&x));
            let y: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 10);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u32 = rng.gen_range(5..5);
    }
}
