//! Criterion bench: the optimizing difference-logic solver on synthetic
//! scheduling-shaped models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xtalk_smt::{Model, Objective, Optimizer};

/// Builds a model with `pairs` independently serializable gate pairs.
fn build_model(pairs: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..2 * pairs).map(|_| m.real_var()).collect();
    for w in vars.chunks(2) {
        if let [a, b] = w {
            let ab = m.bool_var();
            let ba = m.bool_var();
            m.guard(ab, m.ge_diff(*b, *a, 300));
            m.guard(ba, m.ge_diff(*a, *b, 300));
            m.at_most_one(vec![ab, ba]);
        }
    }
    m
}

struct MakespanObjective;
impl Objective for MakespanObjective {
    fn evaluate(&self, bools: &[bool], times: &[i64]) -> f64 {
        let makespan = times.iter().copied().max().unwrap_or(0) as f64;
        let serialized = bools.iter().filter(|&&b| b).count() as f64;
        makespan - 10.0 * serialized
    }
}

fn smt_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt_optimizer");
    for pairs in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &pairs| {
            b.iter(|| {
                let model = build_model(pairs);
                Optimizer::new(model).minimize(&MakespanObjective).expect("sat")
            });
        });
    }
    group.finish();
}

fn difference_logic(c: &mut Criterion) {
    use xtalk_smt::DifferenceLogic;
    let mut m = Model::new();
    let vars: Vec<_> = (0..200).map(|_| m.real_var()).collect();
    c.bench_function("difference_logic_chain_200", |b| {
        b.iter(|| {
            let mut dl = DifferenceLogic::new(200);
            for w in vars.windows(2) {
                dl.add(m.ge_diff(w[1], w[0], 100));
            }
            dl.earliest().expect("feasible")
        });
    });
}

criterion_group!(benches, smt_solver, difference_logic);
criterion_main!(benches);
