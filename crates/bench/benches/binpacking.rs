//! Criterion bench: randomized first-fit bin packing of SRB experiments
//! (the paper's Optimization 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xtalk_charac::binpack::{pack, pack_edges};
use xtalk_device::Topology;

fn binpacking(c: &mut Criterion) {
    let mut group = c.benchmark_group("binpack_one_hop_pairs");
    for (name, topo) in [
        ("poughkeepsie", Topology::poughkeepsie()),
        ("johannesburg", Topology::johannesburg()),
        ("boeblingen", Topology::boeblingen()),
    ] {
        let pairs = topo.pairs_at_distance(1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &pairs, |b, pairs| {
            b.iter(|| pack(&topo, pairs, 2, 50, 7));
        });
    }
    group.finish();
}

fn edge_packing(c: &mut Criterion) {
    let topo = Topology::poughkeepsie();
    let edges = topo.edges().to_vec();
    c.bench_function("pack_edges_poughkeepsie", |b| {
        b.iter(|| pack_edges(&topo, &edges, 2, 50, 7));
    });
}

criterion_group!(benches, binpacking, edge_packing);
criterion_main!(benches);
