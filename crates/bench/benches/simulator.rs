//! Criterion bench: noisy trajectory-simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xtalk_device::Device;
use xtalk_ir::Circuit;
use xtalk_sim::{Executor, ExecutorConfig};

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q as u32, q as u32 + 1);
    }
    c.measure_all();
    c
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_ghz");
    group.sample_size(20);
    for n in [4usize, 8, 12] {
        let device = Device::line(n, 7);
        let circuit = ghz_circuit(n);
        let sched = Executor::asap_schedule(&circuit, device.calibration());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let cfg = ExecutorConfig { shots: 256, seed: 3, ..Default::default() };
                Executor::with_config(&device, cfg).run(&sched)
            });
        });
    }
    group.finish();
}

fn statevector_gates(c: &mut Criterion) {
    use xtalk_ir::Gate;
    use xtalk_sim::StateVector;
    let mut group = c.benchmark_group("statevector");
    for n in [10usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("cx_sweep", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = StateVector::new(n);
                s.apply_gate(&Gate::H, &[0]);
                for q in 0..n - 1 {
                    s.apply_gate(&Gate::Cx, &[q, q + 1]);
                }
                s
            });
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_throughput, statevector_gates);
criterion_main!(benches);
