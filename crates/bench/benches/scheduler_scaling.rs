//! Criterion bench: XtalkSched compile time vs circuit size (the paper's
//! Section 9.4 scalability claim, as a tracked microbenchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xtalk_core::bench_circuits::supremacy_circuit;
use xtalk_core::{Scheduler, SchedulerContext, XtalkSched};
use xtalk_device::Device;

fn scheduler_scaling(c: &mut Criterion) {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let mut group = c.benchmark_group("xtalksched_compile");
    group.sample_size(10);

    for (nq, depth) in [(6usize, 10usize), (10, 12), (12, 16)] {
        let qubits: Vec<u32> = (0..nq as u32).collect();
        let circuit = supremacy_circuit(device.topology(), &qubits, depth, 7);
        let scheduler = XtalkSched::new(0.5).with_max_leaves(2_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nq}q_{}gates", circuit.len())),
            &circuit,
            |b, circuit| {
                b.iter(|| scheduler.schedule(circuit, &ctx).expect("schedulable"));
            },
        );
    }
    group.finish();
}

fn baseline_schedulers(c: &mut Criterion) {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let qubits: Vec<u32> = (0..12).collect();
    let circuit = supremacy_circuit(device.topology(), &qubits, 16, 7);

    let mut group = c.benchmark_group("baseline_schedulers");
    group.bench_function("parsched", |b| {
        b.iter(|| xtalk_core::ParSched::new().schedule(&circuit, &ctx).expect("ok"));
    });
    group.bench_function("serialsched", |b| {
        b.iter(|| xtalk_core::SerialSched::new().schedule(&circuit, &ctx).expect("ok"));
    });
    group.finish();
}

criterion_group!(benches, scheduler_scaling, baseline_schedulers);
criterion_main!(benches);
