//! Criterion bench: simultaneous-RB characterization cost per pair (the
//! simulated analogue of the machine time Figure 10 accounts for).

use criterion::{criterion_group, criterion_main, Criterion};
use xtalk_charac::srb::{run_rb_bin, run_srb_pair};
use xtalk_charac::RbConfig;
use xtalk_clifford::random::random_two_qubit_clifford;
use xtalk_device::{Device, Edge};

fn tiny_config() -> RbConfig {
    RbConfig { lengths: vec![2, 8, 16], seqs_per_length: 2, shots: 64, seed: 1 }
}

fn srb_pair(c: &mut Criterion) {
    let device = Device::poughkeepsie(7);
    let mut group = c.benchmark_group("srb");
    group.sample_size(10);
    group.bench_function("pair_10_15__11_12", |b| {
        b.iter(|| run_srb_pair(&device, Edge::new(10, 15), Edge::new(11, 12), &tiny_config()));
    });
    group.bench_function("independent_rb_bin", |b| {
        b.iter(|| run_rb_bin(&device, &[Edge::new(0, 1), Edge::new(15, 16)], &tiny_config()));
    });
    group.finish();
}

fn clifford_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // Force group construction outside the measurement.
    let _ = xtalk_clifford::group::two_qubit_cliffords();
    c.bench_function("random_two_qubit_clifford", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| random_two_qubit_clifford(&mut rng));
    });
}

criterion_group!(benches, srb_pair, clifford_sampling);
criterion_main!(benches);
