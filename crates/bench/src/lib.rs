//! Shared helpers for the figure-regeneration binaries (one binary per
//! table/figure of the paper — see DESIGN.md for the index) and the
//! Criterion benches.

use xtalk_charac::RbConfig;
use xtalk_core::routing::endpoint_pairs_by_crosstalk;
use xtalk_core::SchedulerContext;
use xtalk_device::Device;

/// Experiment scale: every figure binary defaults to a reduced scale that
/// finishes in minutes and switches to the paper's published parameters
/// with `--full`.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Shots per tomography basis (paper: 1024 → 9216 total).
    pub tomo_shots: u64,
    /// Shots per application circuit (paper: 8192).
    pub app_shots: u64,
    /// RB configuration for characterization figures.
    pub rb: RbConfig,
    /// Cap on SWAP endpoint pairs evaluated per device (`None` = all).
    pub max_swap_pairs: Option<usize>,
    /// Base seed.
    pub seed: u64,
    /// Executor threads for trajectory sampling (0 = available
    /// parallelism); counts are bit-identical at any thread count.
    pub threads: usize,
    /// Whether this is the paper-scale run.
    pub full: bool,
}

impl Scale {
    /// The fast default.
    pub fn reduced() -> Self {
        Scale {
            tomo_shots: 768,
            app_shots: 2048,
            rb: RbConfig { seqs_per_length: 5, shots: 192, ..Default::default() },
            max_swap_pairs: Some(8),
            seed: 7,
            threads: 0,
            full: false,
        }
    }

    /// The paper's published parameters.
    pub fn full() -> Self {
        Scale {
            tomo_shots: 1024,
            app_shots: 8192,
            rb: RbConfig::paper_scale(),
            max_swap_pairs: None,
            seed: 7,
            threads: 0,
            full: true,
        }
    }

    /// Reads the scale from the process arguments (`--full`,
    /// `--threads N`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::reduced()
        };
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            scale.threads = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--threads needs a number"));
        }
        scale
    }
}

/// The three evaluation devices, seeded like the examples.
pub fn devices(seed: u64) -> Vec<Device> {
    Device::all_ibmq(seed)
}

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// The crosstalk-affected SWAP endpoint pairs of a device: the shortest
/// path crosses a high-crosstalk pair *and* the routed circuit actually
/// contains at least one pair of parallelizable high-crosstalk CNOTs
/// (the paper's selection criterion, Section 8.3: "46 circuits across
/// the three devices which include at least one pair of high crosstalk
/// CNOTs"). Grouped over path lengths 3–8, optionally capped — the
/// evaluation set of Figures 5 and 7.
pub fn affected_swap_pairs(
    device: &Device,
    ctx: &SchedulerContext,
    cap: Option<usize>,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for len in 3..=8 {
        for (a, b) in endpoint_pairs_by_crosstalk(device.topology(), ctx, len, false) {
            let routed = xtalk_core::routing::swap_benchmark(device.topology(), a, b)
                .expect("affected pairs are connected");
            if !xtalk_core::XtalkSched::candidate_pairs(&routed.circuit, ctx).is_empty() {
                out.push((a, b));
            }
        }
    }
    if let Some(cap) = cap {
        // Spread the cap across path lengths rather than truncating the
        // short ones only.
        let step = out.len().max(1).div_ceil(cap);
        out = out.into_iter().step_by(step.max(1)).collect();
    }
    out
}

/// Mean and (population) standard deviation.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean_sd(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "mean of nothing");
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_sd(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn affected_pairs_exist_on_all_devices() {
        for device in devices(7) {
            let ctx = SchedulerContext::from_ground_truth(&device);
            let pairs = affected_swap_pairs(&device, &ctx, Some(6));
            assert!(!pairs.is_empty(), "{} has no affected pairs", device.name());
            assert!(pairs.len() <= 7, "cap roughly respected: {}", pairs.len());
        }
    }

    #[test]
    fn scales_differ() {
        let r = Scale::reduced();
        let f = Scale::full();
        assert!(r.tomo_shots < f.tomo_shots);
        assert!(f.max_swap_pairs.is_none());
        assert!(f.full && !r.full);
    }
}
