//! Figure 6: the schedules the three algorithms produce for the SWAP
//! path between qubits 0 and 13 on IBMQ Poughkeepsie.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig6_case_study
//! ```

use xtalk_core::routing::swap_benchmark;
use xtalk_core::{
    to_barriered_circuit, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use xtalk_device::Device;
use xtalk_ir::Qubit;

fn main() {
    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let bench = swap_benchmark(device.topology(), 0, 13).expect("path exists");

    println!("=== Figure 6: schedules for SWAP path 0 <-> 13 on {} ===", device.name());
    println!("path {:?}; CNOT 10,11 creates the Bell pair", bench.path);
    println!(
        "qubit 10 coherence: {:.1} us (device average ~{:.0} us)\n",
        device.calibration().coherence_ns(10) / 1000.0,
        (0..20).map(|q| device.calibration().coherence_ns(q)).sum::<f64>() / 20_000.0
    );

    let serial = SerialSched::new().schedule(&bench.circuit, &ctx).unwrap();
    let par = ParSched::new().schedule(&bench.circuit, &ctx).unwrap();
    let (xt, report) = XtalkSched::new(0.5).schedule_with_report(&bench.circuit, &ctx).unwrap();

    for (name, sched) in [("(a) SerialSched", &serial), ("(b) ParSched", &par), ("(c) XtalkSched", &xt)]
    {
        println!("--- {name}: makespan {} ns ---", sched.makespan());
        println!("{sched}");
        println!(
            "qubit 10 lifetime: {} ns; overlapping CNOT pairs: {}\n",
            sched.qubit_lifetime(Qubit::new(10)),
            sched.overlapping_two_qubit_pairs().len()
        );
    }

    println!("XtalkSched serializations (instruction indices): {:?}", report.serializations);
    println!("\nbarriered executable:\n{}", to_barriered_circuit(&xt, &report.serializations));
    println!(
        "Paper shape check: SerialSched has the longest makespan; ParSched overlaps\n\
         the hot SWAP 5,10 / SWAP 11,12 CNOTs; XtalkSched serializes only those and\n\
         orders SWAP 5,10 late to keep low-coherence qubit 10's lifetime short."
    );
}
