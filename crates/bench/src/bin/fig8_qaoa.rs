//! Figure 8: QAOA cross entropy vs the crosstalk weight factor ω on four
//! crosstalk-prone Poughkeepsie regions, against the noise-free floor and
//! the crosstalk-free-region band.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig8_qaoa [--full]
//! ```

use xtalk_bench::{geomean, mean_sd, Scale};
use xtalk_core::bench_circuits::qaoa_ansatz;
use xtalk_core::pipeline::qaoa_cross_entropy;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;
use xtalk_sim::{ideal, metrics};

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);

    // Crosstalk-prone regions: chains crossing the planted hot pairs.
    // (The paper lists [5,10,11,12], [7,12,13,14], [15,10,11,12],
    // [11,12,13,14]; our Poughkeepsie model has no 7-12 link, so the
    // second region is replaced by the hot chain [9,14,13,12].)
    let regions: [[u32; 4]; 4] =
        [[5, 10, 11, 12], [9, 14, 13, 12], [15, 10, 11, 12], [11, 12, 13, 14]];
    // Crosstalk-free regions for the ideal band.
    let free_regions: [[u32; 4]; 3] = [[0, 1, 2, 3], [15, 16, 17, 18], [6, 7, 8, 9]];
    let omegas = [0.0, 0.03, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

    println!("=== Figure 8: QAOA cross entropy vs omega, {} ===\n", device.name());

    let mut par_losses = Vec::new();
    let mut ser_losses = Vec::new();
    let mut best_losses = Vec::new();
    for region in &regions {
        let circuit = qaoa_ansatz(20, region, scale.seed ^ 0x8a);
        let floor = metrics::entropy(&ideal::distribution(&circuit));
        println!("region {region:?} (noise-free floor {floor:.4}):");
        println!("{:>8} {:>14}", "omega", "cross entropy");
        let mut best = f64::INFINITY;
        let ce_at = |sched: &dyn Scheduler, tag: f64| -> f64 {
            qaoa_cross_entropy(&device, &ctx, sched, &circuit, scale.app_shots, scale.seed ^ (tag * 100.0) as u64)
                .expect("scheduling succeeds")
        };
        for &omega in &omegas {
            // The endpoints are exactly the baselines (Table 1 / Fig. 8:
            // ω=0 ≡ ParSched, ω=1 ≡ SerialSched).
            let ce = if omega == 0.0 {
                ce_at(&ParSched::new(), omega)
            } else if omega == 1.0 {
                ce_at(&SerialSched::new(), omega)
            } else {
                ce_at(&XtalkSched::new(omega), omega)
            };
            if (0.03..=0.2).contains(&omega) {
                best = best.min(ce);
            }
            println!("{omega:>8.2} {ce:>14.4}");
        }
        let par = ce_at(&ParSched::new(), 0.0);
        let ser = ce_at(&SerialSched::new(), 1.0);
        par_losses.push(((par - floor).max(1e-4)) / (best - floor).max(1e-4));
        ser_losses.push(((ser - floor).max(1e-4)) / (best - floor).max(1e-4));
        best_losses.push(best - floor);
        println!();
    }

    // Crosstalk-free band.
    let mut free_ce = Vec::new();
    for region in &free_regions {
        let circuit = qaoa_ansatz(20, region, scale.seed ^ 0x8a);
        let floor = metrics::entropy(&ideal::distribution(&circuit));
        let ce = qaoa_cross_entropy(
            &device,
            &ctx,
            &ParSched::new(),
            &circuit,
            scale.app_shots,
            scale.seed ^ 0xf2ee,
        )
        .expect("scheduling succeeds");
        free_ce.push(ce - floor);
    }
    let (band_mean, band_sd) = mean_sd(&free_ce);

    println!("cross-entropy-loss improvement of best ω ∈ [0.03, 0.2]:");
    println!(
        "  vs ParSched (ω=0):    geomean {:.2}x, max {:.2}x",
        geomean(&par_losses),
        par_losses.iter().cloned().fold(0.0f64, f64::max)
    );
    println!(
        "  vs SerialSched (ω=1): geomean {:.2}x, max {:.2}x",
        geomean(&ser_losses),
        ser_losses.iter().cloned().fold(0.0f64, f64::max)
    );
    println!(
        "crosstalk-free-region CE loss band: {:.4} ± {:.4} (XtalkSched best losses: {:?})",
        band_mean,
        band_sd,
        best_losses.iter().map(|x| (x * 1e4).round() / 1e4).collect::<Vec<_>>()
    );
    println!(
        "\nPaper shape check: intermediate ω (0.03–0.2) beats both endpoints\n\
         (paper: 1.8x geomean vs ParSched, 2x vs SerialSched), and XtalkSched\n\
         lands within the crosstalk-free band."
    );
}
