//! Scaling projection (beyond the paper's 20-qubit systems): how the
//! characterization budget and the scheduler behave on larger synthetic
//! grids — the regime the paper's conclusion argues software mitigation
//! matters most for ("especially as systems scale up").
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin scaling_future_devices [--full]
//! ```

use std::time::Instant;
use xtalk_bench::Scale;
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{CharacterizationPolicy, RbConfig};
use xtalk_core::pipeline::swap_bell_error;
use xtalk_core::{ParSched, SchedulerContext, XtalkSched};
use xtalk_device::Device;

fn main() {
    let scale = Scale::from_args();
    let tm = TimeModel::default();
    let executions = RbConfig::paper_scale().executions();

    println!("=== Scaling projection: characterization budget vs device size ===\n");
    println!(
        "{:<12} {:>7} {:>7} {:>11} {:>9} {:>14} {:>14} {:>16}",
        "device", "qubits", "edges", "simul pairs", "1-hop", "all-pairs (h)", "optimized (h)", "reduction"
    );
    for (rows, cols) in [(4usize, 5usize), (5, 5), (6, 6), (7, 7), (8, 8)] {
        let device = Device::synthetic_grid(rows, cols, 0.06, scale.seed);
        let topo = device.topology();
        let all = CharacterizationPolicy::AllPairs.experiments(topo, 1).len();
        let _packed =
            CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }.experiments(topo, 1).len();
        let known = device.crosstalk().high_unordered_pairs(3.0);
        let daily = CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known }
            .experiments(topo, 1)
            .len()
            .max(1);
        println!(
            "{:<12} {:>7} {:>7} {:>11} {:>9} {:>14.1} {:>14.2} {:>15.0}x",
            device.name(),
            topo.num_qubits(),
            topo.num_edges(),
            topo.simultaneous_pairs().len(),
            topo.pairs_at_distance(1).len(),
            tm.hours(all, executions),
            tm.hours(daily, executions),
            all as f64 / daily as f64,
        );
    }
    println!(
        "\nAll-pairs SRB grows ~quadratically with edge count (days of machine time\n\
         on a 64-qubit grid); the optimized daily policy stays within minutes\n\
         because bin packing exploits the growing diameter.\n"
    );

    println!("=== Scheduler on a 49-qubit grid (6% hot pairs) ===\n");
    let device = Device::synthetic_grid(7, 7, 0.06, scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);
    // Endpoint pairs whose routed circuit actually contains overlappable
    // hot CNOT pairs (the fig-5 selection criterion), longest paths first.
    let pairs = xtalk_bench::affected_swap_pairs(&device, &ctx, Some(4));
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "path", "cands", "par error", "xtalk error", "compile (ms)", "dur ratio"
    );
    for &(a, b) in pairs.iter().rev().take(4) {
        let bench = xtalk_core::routing::swap_benchmark(device.topology(), a, b).unwrap();
        let t0 = Instant::now();
        let (_, report) = XtalkSched::new(0.5)
            .with_max_leaves(5_000)
            .schedule_with_report(&bench.circuit, &ctx)
            .unwrap();
        let compile_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let par = swap_bell_error(&device, &ctx, &ParSched::new(), a, b, scale.tomo_shots, 3)
            .unwrap();
        let xt = swap_bell_error(
            &device,
            &ctx,
            &XtalkSched::new(0.5).with_max_leaves(5_000),
            a,
            b,
            scale.tomo_shots,
            3,
        )
        .unwrap();
        println!(
            "{:<10} {:>8} {:>12.4} {:>12.4} {:>14.1} {:>11.2}x",
            format!("{a},{b}"),
            report.candidate_pairs,
            par.error_rate,
            xt.error_rate,
            compile_ms,
            xt.duration_ns as f64 / par.duration_ns as f64,
        );
    }
    println!(
        "\nLonger paths cross more hot pairs on bigger devices, so the ParSched\n\
         error balloons while XtalkSched holds — the paper's scaling argument."
    );
}
