//! Section 9.4: scheduler compile-time scaling on supremacy-style random
//! circuits (6–18 qubits, ~100–1000 gates, depth up to 40).
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin sec9_4_scalability [--full]
//! ```

use std::time::Instant;
use xtalk_bench::Scale;
use xtalk_core::bench_circuits::supremacy_circuit;
use xtalk_core::{SchedulerContext, XtalkSched};
use xtalk_device::Device;

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);

    // (qubit count, depth) grid chosen to span ~100 to ~1000 gates.
    let grid: &[(usize, usize)] = if scale.full {
        &[(6, 10), (6, 40), (10, 20), (12, 40), (16, 40), (18, 40), (18, 56)]
    } else {
        &[(6, 10), (10, 20), (12, 40), (18, 40)]
    };

    println!("=== Section 9.4: XtalkSched compile-time scaling ===\n");
    println!(
        "{:>7} {:>7} {:>7} {:>11} {:>10} {:>12} {:>12}",
        "qubits", "depth", "gates", "candidates", "leaves", "time (ms)", "makespan(ns)"
    );

    for &(nq, depth) in grid {
        let qubits: Vec<u32> = (0..nq as u32).collect();
        let circuit = supremacy_circuit(device.topology(), &qubits, depth, scale.seed);
        let scheduler = XtalkSched::new(0.5).with_max_leaves(50_000);
        let t0 = Instant::now();
        let (sched, report) = scheduler
            .schedule_with_report(&circuit, &ctx)
            .expect("supremacy circuits are hardware compliant");
        let dt = t0.elapsed();
        println!(
            "{:>7} {:>7} {:>7} {:>11} {:>10} {:>12.1} {:>12}",
            nq,
            depth,
            circuit.len(),
            report.candidate_pairs,
            report.leaves,
            dt.as_secs_f64() * 1000.0,
            sched.makespan()
        );
    }

    println!(
        "\nPaper shape check: compile time grows with gate count, not qubit count,\n\
         and stays in the interactive range (paper: <2 min at 500 gates, <15 min\n\
         at 1000 gates with Z3; our lazy engine only branches on actual conflicts)."
    );
}
