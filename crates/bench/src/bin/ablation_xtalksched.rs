//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Solver engine** — lazy conflict-driven branch-and-bound vs the
//!    eager SMT-style encoding (both must find the same objective value;
//!    the lazy engine explores far fewer leaves).
//! 2. **High-crosstalk threshold** — how the candidate-pruning threshold
//!    (the paper uses 3×) trades compile effort against measured error.
//! 3. **Serialization ordering** — the Figure 6 insight: searching both
//!    orders of a serialized pair (vs naive program order) is worth
//!    measurable error on paths through low-coherence qubits.
//! 4. **Crosstalk weight ω** — endpoint sanity: ω=0 matches ParSched's
//!    objective, ω=1 eliminates hot overlaps.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin ablation_xtalksched
//! ```

use std::time::Instant;
use xtalk_bench::Scale;
use xtalk_core::pipeline::swap_bell_error;
use xtalk_core::routing::swap_benchmark;
use xtalk_core::sched::schedule_cost;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, XtalkSched};
use xtalk_device::Device;

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);

    println!("=== Ablation 1: lazy B&B vs eager SMT encoding ===\n");
    println!(
        "{:<10} {:>6} {:>14} {:>10} {:>12} {:>14} {:>10} {:>12}",
        "path", "cands", "lazy cost", "leaves", "time (us)", "smt cost", "leaves", "time (us)"
    );
    for (a, b) in [(0u32, 12u32), (1, 7), (9, 11), (5, 12)] {
        let bench = swap_benchmark(device.topology(), a, b).expect("connected");
        let sched = XtalkSched::new(0.5);
        let t0 = Instant::now();
        let (_, lazy) = sched.schedule_with_report(&bench.circuit, &ctx).unwrap();
        let t_lazy = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let (_, smt) = sched.schedule_via_smt(&bench.circuit, &ctx).unwrap();
        let t_smt = t0.elapsed().as_micros();
        assert!(
            (lazy.cost - smt.cost).abs() < 1e-9,
            "engines disagree on {a},{b}: {} vs {}",
            lazy.cost,
            smt.cost
        );
        println!(
            "{:<10} {:>6} {:>14.4} {:>10} {:>12} {:>14.4} {:>10} {:>12}",
            format!("{a},{b}"),
            lazy.candidate_pairs,
            lazy.cost,
            lazy.leaves,
            t_lazy,
            smt.cost,
            smt.leaves,
            t_smt
        );
    }
    println!("\n(equal costs by construction — the assert above enforces it)\n");

    println!("=== Ablation 2: candidate threshold (paper: 3x) ===\n");
    println!(
        "{:<10} {:>11} {:>14} {:>10} {:>12} {:>12}",
        "threshold", "candidates", "serialized", "leaves", "swap error", "duration"
    );
    let (a, b) = (0u32, 13u32);
    for threshold in [1.2, 2.0, 3.0, 6.0, 12.0] {
        let tctx = SchedulerContext::from_ground_truth(&device).with_threshold(threshold);
        let bench = swap_benchmark(device.topology(), a, b).unwrap();
        let (_, report) =
            XtalkSched::new(0.5).schedule_with_report(&bench.circuit, &tctx).unwrap();
        let out = swap_bell_error(
            &device,
            &tctx,
            &XtalkSched::new(0.5),
            a,
            b,
            scale.tomo_shots,
            scale.seed,
        )
        .unwrap();
        println!(
            "{:<10.1} {:>11} {:>14} {:>10} {:>12.4} {:>12}",
            threshold,
            report.candidate_pairs,
            report.serializations.len(),
            report.leaves,
            out.error_rate,
            out.duration_ns
        );
    }
    println!(
        "\nLow thresholds blow up the candidate set (compile effort) for little\n\
         error benefit; high thresholds miss real interference. 3x is the knee.\n"
    );

    println!("=== Ablation 3: serialization ordering (the Figure 6 insight) ===\n");
    println!(
        "{:<10} {:>16} {:>18} {:>12}",
        "path", "optimal cost", "program-order", "error ratio"
    );
    for (a, b) in [(0u32, 13u32), (6, 13), (1, 13)] {
        let bench = swap_benchmark(device.topology(), a, b).unwrap();
        let (_, opt) = XtalkSched::new(0.5).schedule_with_report(&bench.circuit, &ctx).unwrap();
        let (_, fixed) = XtalkSched::new(0.5)
            .with_ordering(xtalk_core::OrderingPolicy::ProgramOrder)
            .schedule_with_report(&bench.circuit, &ctx)
            .unwrap();
        let e_opt =
            swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), a, b, scale.tomo_shots, 21)
                .unwrap()
                .error_rate;
        let e_fixed = swap_bell_error(
            &device,
            &ctx,
            &XtalkSched::new(0.5).with_ordering(xtalk_core::OrderingPolicy::ProgramOrder),
            a,
            b,
            scale.tomo_shots,
            21,
        )
        .unwrap()
        .error_rate;
        println!(
            "{:<10} {:>16.4} {:>18.4} {:>11.2}x",
            format!("{a},{b}"),
            opt.cost,
            fixed.cost,
            e_fixed / e_opt.max(1e-4)
        );
    }
    println!(
        "\nChoosing which gate of a serialized pair runs first (to shorten\n\
         low-coherence qubits' lifetimes) is worth measurable error on paths\n\
         through Poughkeepsie's 5.2 us qubit 10.\n"
    );

    println!("=== Ablation 4: omega endpoints ===\n");
    let bench = swap_benchmark(device.topology(), 0, 13).unwrap();
    let par = ParSched::new().schedule(&bench.circuit, &ctx).unwrap();
    let (_, at0) = XtalkSched::new(0.0).schedule_with_report(&bench.circuit, &ctx).unwrap();
    println!(
        "omega=0: XtalkSched cost {:.4} vs ParSched objective {:.4} (must be <=)",
        at0.cost,
        schedule_cost(&par, &ctx, 0.0)
    );
    let (s1, _) = XtalkSched::new(1.0).schedule_with_report(&bench.circuit, &ctx).unwrap();
    let hot_overlaps = s1
        .overlapping_two_qubit_pairs()
        .into_iter()
        .filter(|&(i, j)| {
            let p = if i < j { (i, j) } else { (j, i) };
            XtalkSched::candidate_pairs(&bench.circuit, &ctx).contains(&p)
        })
        .count();
    println!("omega=1: remaining high-crosstalk overlaps: {hot_overlaps} (must be 0)");
}
