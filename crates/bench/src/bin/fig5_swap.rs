//! Figure 5: SWAP-circuit error rates under the three schedulers on the
//! three systems (a–c) and program durations on Poughkeepsie (d).
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig5_swap [--full] [--threads N]
//! ```

use xtalk_bench::{affected_swap_pairs, devices, geomean, Scale};
use xtalk_core::pipeline::swap_bell_error_threads;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};

fn main() {
    let scale = Scale::from_args();
    println!("=== Figure 5: SWAP circuits, 3 schedulers x 3 systems ===");
    println!("scale: {}\n", if scale.full { "paper (--full)" } else { "reduced" });

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ];

    for device in devices(scale.seed) {
        let ctx = SchedulerContext::from_ground_truth(&device);
        let pairs = affected_swap_pairs(&device, &ctx, scale.max_swap_pairs);
        println!("--- {} ({} crosstalk-affected qubit pairs) ---", device.name(), pairs.len());
        println!(
            "{:<8} {:>12} {:>12} {:>12}   {:>10} {:>10} {:>10}",
            "pair", "Serial", "Par", "Xtalk", "dSer(ns)", "dPar(ns)", "dXt(ns)"
        );

        let mut improvements_par = Vec::new();
        let mut improvements_ser = Vec::new();
        let mut duration_ratio = Vec::new();
        for &(a, b) in &pairs {
            let mut errs = Vec::new();
            let mut durs = Vec::new();
            for sched in &schedulers {
                let out = swap_bell_error_threads(
                    &device,
                    &ctx,
                    sched.as_ref(),
                    a,
                    b,
                    scale.tomo_shots,
                    scale.seed ^ (u64::from(a) << 8) ^ u64::from(b),
                    scale.threads,
                )
                .expect("routing succeeds on connected devices");
                errs.push(out.error_rate);
                durs.push(out.duration_ns);
            }
            println!(
                "{:<8} {:>12.4} {:>12.4} {:>12.4}   {:>10} {:>10} {:>10}",
                format!("{a},{b}"),
                errs[0],
                errs[1],
                errs[2],
                durs[0],
                durs[1],
                durs[2]
            );
            if errs[2] > 0.0 {
                improvements_par.push((errs[1] / errs[2]).max(1e-3));
                improvements_ser.push((errs[0] / errs[2]).max(1e-3));
            }
            duration_ratio.push(durs[2] as f64 / durs[1] as f64);
        }

        let max_par = improvements_par.iter().cloned().fold(0.0f64, f64::max);
        let max_ser = improvements_ser.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  XtalkSched vs ParSched: geomean {:.2}x, max {:.2}x",
            geomean(&improvements_par),
            max_par
        );
        println!(
            "  XtalkSched vs SerialSched: geomean {:.2}x, max {:.2}x",
            geomean(&improvements_ser),
            max_ser
        );
        println!(
            "  duration ratio Xtalk/Par (Fig 5d): mean {:.2}x, worst {:.2}x\n",
            duration_ratio.iter().sum::<f64>() / duration_ratio.len() as f64,
            duration_ratio.iter().cloned().fold(0.0f64, f64::max)
        );
    }
    println!(
        "Paper shape check: XtalkSched lowest error on every pair; up to ~5.6x\n\
         (geomean ~2x) over ParSched; duration only ~1.16x ParSched on average."
    );
}
