//! Figure 5: SWAP-circuit error rates under the three schedulers on the
//! three systems (a–c) and program durations on Poughkeepsie (d).
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig5_swap [--full] [--threads N]
//! ```
//!
//! The sweep compiles through a per-device [`Compiler`] so the three
//! schedulers share one content-addressed artifact cache. After each
//! device's error table it times the compile grid three ways — isolated
//! caches, one shared cold cache, and the same cache warm — to record
//! what the cache buys the sweep (see EXPERIMENTS.md).

use std::time::Instant;
use xtalk_bench::{affected_swap_pairs, devices, geomean, Scale};
use xtalk_core::routing::swap_benchmark;
use xtalk_core::{Compiler, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;
use xtalk_ir::Circuit;
use xtalk_sim::tomography::tomography_circuits;

fn main() {
    let scale = Scale::from_args();
    println!("=== Figure 5: SWAP circuits, 3 schedulers x 3 systems ===");
    println!("scale: {}\n", if scale.full { "paper (--full)" } else { "reduced" });

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ];

    for device in devices(scale.seed) {
        let ctx = SchedulerContext::from_ground_truth(&device);
        let compiler = Compiler::new(&device, ctx.clone());
        let pairs = affected_swap_pairs(&device, &ctx, scale.max_swap_pairs);
        println!("--- {} ({} crosstalk-affected qubit pairs) ---", device.name(), pairs.len());
        println!(
            "{:<8} {:>12} {:>12} {:>12}   {:>10} {:>10} {:>10}",
            "pair", "Serial", "Par", "Xtalk", "dSer(ns)", "dPar(ns)", "dXt(ns)"
        );

        let mut improvements_par = Vec::new();
        let mut improvements_ser = Vec::new();
        let mut duration_ratio = Vec::new();
        for &(a, b) in &pairs {
            let mut errs = Vec::new();
            let mut durs = Vec::new();
            for sched in &schedulers {
                let out = compiler
                    .swap_bell_error(
                        sched.as_ref(),
                        a,
                        b,
                        scale.tomo_shots,
                        scale.seed ^ (u64::from(a) << 8) ^ u64::from(b),
                        scale.threads,
                    )
                    .expect("routing succeeds on connected devices");
                errs.push(out.error_rate);
                durs.push(out.duration_ns);
            }
            println!(
                "{:<8} {:>12.4} {:>12.4} {:>12.4}   {:>10} {:>10} {:>10}",
                format!("{a},{b}"),
                errs[0],
                errs[1],
                errs[2],
                durs[0],
                durs[1],
                durs[2]
            );
            if errs[2] > 0.0 {
                improvements_par.push((errs[1] / errs[2]).max(1e-3));
                improvements_ser.push((errs[0] / errs[2]).max(1e-3));
            }
            duration_ratio.push(durs[2] as f64 / durs[1] as f64);
        }

        let max_par = improvements_par.iter().cloned().fold(0.0f64, f64::max);
        let max_ser = improvements_ser.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  XtalkSched vs ParSched: geomean {:.2}x, max {:.2}x",
            geomean(&improvements_par),
            max_par
        );
        println!(
            "  XtalkSched vs SerialSched: geomean {:.2}x, max {:.2}x",
            geomean(&improvements_ser),
            max_ser
        );
        println!(
            "  duration ratio Xtalk/Par (Fig 5d): mean {:.2}x, worst {:.2}x",
            duration_ratio.iter().sum::<f64>() / duration_ratio.len() as f64,
            duration_ratio.iter().cloned().fold(0.0f64, f64::max)
        );
        report_compile_timing(&device, &ctx, &pairs, &schedulers);
        println!();
    }
    println!(
        "Paper shape check: XtalkSched lowest error on every pair; up to ~5.6x\n\
         (geomean ~2x) over ParSched; duration only ~1.16x ParSched on average."
    );
}

/// Times the device's full compile grid (every tomography circuit of
/// every selected pair × the three schedulers) three ways: a fresh
/// compiler per compile (no sharing — every compile pays lower, place
/// and route), one shared cold cache (the scheduler-independent prefix
/// is computed once per circuit), and the same cache warm (pure
/// replay). Execution is excluded: this is the compile-side cost the
/// artifact cache removes from a repeated sweep.
fn report_compile_timing(
    device: &Device,
    ctx: &SchedulerContext,
    pairs: &[(u32, u32)],
    schedulers: &[Box<dyn Scheduler>],
) {
    let grid: Vec<Circuit> = pairs
        .iter()
        .flat_map(|&(a, b)| {
            let bench =
                swap_benchmark(device.topology(), a, b).expect("device is connected");
            let (qa, qb) = bench.bell_pair;
            tomography_circuits(&bench.circuit, qa, qb).into_iter().map(|(_, c)| c)
        })
        .collect();
    if grid.is_empty() {
        return;
    }

    let t = Instant::now();
    for circuit in &grid {
        for sched in schedulers {
            Compiler::new(device, ctx.clone())
                .compile(circuit, sched.as_ref())
                .expect("grid circuits compile");
        }
    }
    let isolated = t.elapsed();

    let shared = Compiler::new(device, ctx.clone());
    let t = Instant::now();
    for circuit in &grid {
        for sched in schedulers {
            shared.compile(circuit, sched.as_ref()).expect("grid circuits compile");
        }
    }
    let cold = t.elapsed();
    let (cold_hits, cold_misses) = (shared.cache().hits(), shared.cache().misses());

    let t = Instant::now();
    for circuit in &grid {
        for sched in schedulers {
            shared.compile(circuit, sched.as_ref()).expect("grid circuits compile");
        }
    }
    let warm = t.elapsed();
    let warm_hits = shared.cache().hits() - cold_hits;

    println!(
        "  compile grid, {} circuits x {} schedulers = {} compiles:",
        grid.len(),
        schedulers.len(),
        grid.len() * schedulers.len()
    );
    println!(
        "    isolated caches {isolated:>9.2?} | shared cold {cold:>9.2?} \
         ({cold_misses} misses, {cold_hits} hits) | warm replay {warm:>9.2?} ({warm_hits} hits)"
    );
}
