//! Figure 4: daily variation of conditional vs independent error rates
//! on IBMQ Poughkeepsie over a week — conditional rates stay well above
//! independent and vary up to ~2–3×, while the *set* of high pairs is
//! stable.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig4_daily_variation [--full]
//! ```

use xtalk_bench::Scale;
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{characterize, CharacterizationPolicy};
use xtalk_device::{Device, Edge};

fn main() {
    let scale = Scale::from_args();
    let base = Device::poughkeepsie(scale.seed);
    let tracked = [
        (Edge::new(13, 14), Edge::new(18, 19)),
        (Edge::new(18, 19), Edge::new(13, 14)),
        (Edge::new(11, 12), Edge::new(10, 15)),
        (Edge::new(10, 15), Edge::new(11, 12)),
    ];
    let known: Vec<(Edge, Edge)> = base.crosstalk().high_unordered_pairs(3.0);

    println!("=== Figure 4: daily crosstalk variation, {} ===\n", base.name());
    print!("{:<6}", "day");
    for (a, b) in &tracked {
        print!(" {:>18}", format!("E({a}|{b})"));
    }
    print!(" {:>12} {:>12}", "E(CX13,14)", "E(CX10,15)");
    println!(" {:>10}", "high set");

    let mut min_max: Vec<(f64, f64)> = vec![(f64::INFINITY, 0.0); tracked.len()];
    let mut kept_total = 0usize;
    let mut pair_days = 0usize;
    for day in 0..6u32 {
        let device = base.on_day(day);
        let policy =
            CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known.clone() };
        let (charac, _) = characterize(&device, &policy, &scale.rb, &TimeModel::default());

        print!("{day:<6}");
        for (i, (a, b)) in tracked.iter().enumerate() {
            let v = charac.conditional(*a, *b).unwrap_or(f64::NAN);
            min_max[i].0 = min_max[i].0.min(v);
            min_max[i].1 = min_max[i].1.max(v);
            print!(" {v:>18.4}");
        }
        print!(
            " {:>12.4} {:>12.4}",
            device.calibration().cx_error(Edge::new(13, 14)),
            device.calibration().cx_error(Edge::new(10, 15)),
        );
        let today = charac.high_pairs(3.0);
        let kept = known.iter().filter(|p| today.contains(p)).count();
        kept_total += kept;
        pair_days += known.len();
        println!(" {kept}/{}", known.len());
    }

    println!("\nconditional-rate variation across the week:");
    for ((a, b), (lo, hi)) in tracked.iter().zip(&min_max) {
        println!("  E({a}|{b}): {:.4} .. {:.4}  ({:.1}x)", lo, hi, hi / lo);
    }
    println!(
        "\nhigh-crosstalk set persistence: {kept_total}/{pair_days} pair-days re-detected\n\
         Paper shape check: conditional rates vary up to ~2x day-to-day but stay\n\
         far above the independent rates; the set of high pairs tends to persist\n\
         (borderline ~4.5x pairs occasionally dip under the 3x criterion)."
    );
}
