//! Figure 3: crosstalk characterization maps for the three 20-qubit
//! systems — which CNOT pairs have conditional error rates more than 3×
//! their independent rates.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig3_characterization [--full]
//! ```

use xtalk_bench::{devices, Scale};
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{characterize, CharacterizationPolicy};

fn main() {
    let scale = Scale::from_args();
    println!("=== Figure 3: high-crosstalk pair maps (threshold 3x) ===");
    println!("scale: {}\n", if scale.full { "paper (--full)" } else { "reduced" });

    for device in devices(scale.seed) {
        let (charac, report) = characterize(
            &device,
            &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
            &scale.rb,
            &TimeModel::default(),
        );
        let found = charac.high_pairs(3.0);
        let truth = device.crosstalk().high_unordered_pairs(3.0);
        let hits = truth.iter().filter(|p| found.contains(p)).count();

        println!("{}", device.name());
        println!(
            "  {} SRB experiments covering {} pairs ({} one-hop candidates of {} simultaneous)",
            report.num_experiments,
            report.num_pairs,
            device.topology().pairs_at_distance(1).len(),
            device.topology().simultaneous_pairs().len(),
        );
        println!("  detected high-crosstalk pairs (red dashed edges of Fig. 3):");
        for (a, b) in &found {
            let ia = charac.independent(*a);
            let ib = charac.independent(*b);
            let cab = charac.conditional(*a, *b).unwrap_or(ia);
            let cba = charac.conditional(*b, *a).unwrap_or(ib);
            let tag = if truth.contains(&(*a, *b)) { "" } else { "  [spurious]" };
            println!(
                "    {a} | {b}: E({a}|{b})={cab:.3} ({:.1}x), E({b}|{a})={cba:.3} ({:.1}x){tag}",
                cab / ia,
                cba / ib
            );
        }
        println!("  recall vs ground truth: {hits}/{} planted pairs", truth.len());
        // Paper observation: all interfering pairs are at 1 hop.
        let all_one_hop = found
            .iter()
            .all(|&(a, b)| device.topology().edge_distance(a, b) == Some(1));
        println!("  all detected pairs at 1 hop: {all_one_hop}\n");
    }
    println!(
        "Paper shape check: few high pairs per device (5 on Poughkeepsie), all at\n\
         1-hop separation, with factors up to 11x (CX10,15 | CX11,12)."
    );
}
