//! Figure 10: crosstalk characterization time for the baseline and the
//! three optimizations, on all three systems, at the paper's full
//! experiment scale (100 sequences × 1024 trials per experiment).
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig10_charac_time
//! ```

use xtalk_bench::devices;
use xtalk_charac::policy::TimeModel;
use xtalk_charac::{CharacterizationPolicy, RbConfig};

fn main() {
    let time_model = TimeModel::default();
    let executions = RbConfig::paper_scale().executions();

    println!("=== Figure 10: characterization time (hours, paper-scale RB) ===\n");
    println!(
        "{:<22} {:>14} {:>14} {:>20} {:>16} {:>10}",
        "system", "All pairs", "Opt1: 1-hop", "Opt2: +bin packing", "Opt3: high only", "reduction"
    );

    for device in devices(7) {
        let topo = device.topology();
        let known = device.crosstalk().high_unordered_pairs(3.0);
        let policies = [
            CharacterizationPolicy::AllPairs,
            CharacterizationPolicy::OneHop,
            CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
            CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known },
        ];
        let counts: Vec<usize> = policies.iter().map(|p| p.experiments(topo, 7).len()).collect();
        let hours: Vec<f64> =
            counts.iter().map(|&n| time_model.hours(n, executions)).collect();

        println!(
            "{:<22} {:>8} ({:>4.2}h) {:>7} ({:>4.2}h) {:>12} ({:>4.2}h) {:>9} ({:>5.3}h) {:>9.1}x",
            device.name(),
            counts[0],
            hours[0],
            counts[1],
            hours[1],
            counts[2],
            hours[2],
            counts[3],
            hours[3],
            counts[0] as f64 / counts[3] as f64,
        );
    }

    println!(
        "\ncolumns show: experiments (machine hours). Paper shape check: all-pairs\n\
         needs >8h-class budgets; Opt1 cuts ~5x, Opt2 a further ~2x, Opt3 another\n\
         ~4-7x, for 35-73x total — bringing daily characterization under 15 min."
    );
}
