//! Figure 7: XtalkSched error on crosstalk-affected SWAP paths vs the
//! "ideal" error measured on crosstalk-free paths of the same length —
//! near-optimal mitigation.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig7_optimality [--full]
//! ```

use std::collections::BTreeMap;
use xtalk_bench::{geomean, mean_sd, Scale};
use xtalk_core::pipeline::swap_bell_error;
use xtalk_core::routing::endpoint_pairs_by_crosstalk;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let cap_per_len = if scale.full { usize::MAX } else { 3 };

    println!("=== Figure 7: XtalkSched vs crosstalk-free ideal, {} ===\n", device.name());
    println!(
        "{:<10} {:>14} {:>22} {:>8}",
        "pair", "XtalkSched", "ideal (xtalk-free)", "len"
    );

    let mut ratios = Vec::new();
    let mut by_len: BTreeMap<u32, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for len in 3..=8u32 {
        let affected: Vec<_> = endpoint_pairs_by_crosstalk(device.topology(), &ctx, len, false)
            .into_iter()
            .take(cap_per_len)
            .collect();
        let free: Vec<_> = endpoint_pairs_by_crosstalk(device.topology(), &ctx, len, true)
            .into_iter()
            .take(cap_per_len)
            .collect();
        if affected.is_empty() || free.is_empty() {
            continue;
        }

        // Ideal: best scheduler per crosstalk-free path, averaged — the
        // paper's "lowest error schedule for each path".
        let mut ideal_errors = Vec::new();
        for &(a, b) in &free {
            let schedulers: [&dyn Scheduler; 3] =
                [&SerialSched::new(), &ParSched::new(), &XtalkSched::new(0.5)];
            let best = schedulers
                .iter()
                .map(|s| {
                    swap_bell_error(&device, &ctx, *s, a, b, scale.tomo_shots, scale.seed)
                        .expect("routing succeeds")
                        .error_rate
                })
                .fold(f64::INFINITY, f64::min);
            ideal_errors.push(best);
        }
        let (ideal_mean, ideal_sd) = mean_sd(&ideal_errors);

        for &(a, b) in &affected {
            let xt = swap_bell_error(
                &device,
                &ctx,
                &XtalkSched::new(0.5),
                a,
                b,
                scale.tomo_shots,
                scale.seed ^ (u64::from(a) << 8) ^ u64::from(b),
            )
            .expect("routing succeeds")
            .error_rate;
            println!(
                "{:<10} {:>14.4} {:>14.4} ± {:.3} {:>8}",
                format!("{a},{b}"),
                xt,
                ideal_mean,
                ideal_sd,
                len
            );
            ratios.push(((xt.max(1e-4)) / ideal_mean.max(1e-4)).max(1e-3));
            let e = by_len.entry(len).or_default();
            e.0.push(xt);
            e.1.push(ideal_mean);
        }
    }

    println!("\ngeomean XtalkSched/ideal error ratio: {:.3}", geomean(&ratios));
    println!(
        "Paper shape check: XtalkSched errors track the crosstalk-free ideal\n\
         (paper: within geomean 1% ± 16%), growing with path length."
    );
}
