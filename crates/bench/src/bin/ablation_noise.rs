//! Noise-source ablation: attribute XtalkSched's gains to the noise they
//! actually come from. With crosstalk disabled in the executor, the gap
//! between XtalkSched and ParSched must vanish; with decoherence
//! disabled, SerialSched stops losing. This validates that the headline
//! improvements are caused by the modeled mechanisms, not artifacts.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin ablation_noise
//! ```

use xtalk_bench::Scale;
use xtalk_core::routing::swap_benchmark;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;
use xtalk_ir::Qubit;
use xtalk_sim::tomography::{
    bell_phi_plus, expectations_from_distributions, tomography_circuits, DensityMatrix2,
};
use xtalk_sim::{Executor, ExecutorConfig};

/// Bell error under an explicit executor configuration (no readout
/// mitigation — raw physics, so the ablation is clean).
fn bell_error(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    a: u32,
    b: u32,
    cfg_base: ExecutorConfig,
) -> f64 {
    let bench = swap_benchmark(device.topology(), a, b).expect("connected");
    let (qa, qb): (Qubit, Qubit) = bench.bell_pair;
    let mut data = Vec::new();
    for (idx, (setting, circuit)) in
        tomography_circuits(&bench.circuit, qa, qb).into_iter().enumerate()
    {
        let sched = scheduler.schedule(&circuit, ctx).expect("schedulable");
        let cfg = ExecutorConfig { seed: cfg_base.seed ^ ((idx as u64 + 1) << 24), ..cfg_base };
        let counts = Executor::with_config(device, cfg).run(&sched);
        // Marginalize onto the two tomography clbits.
        let mut dist = vec![0.0; 4];
        for (outcome, count) in counts.iter() {
            dist[(outcome & 0b11) as usize] += count as f64 / counts.shots() as f64;
        }
        data.push((setting, dist));
    }
    let rho = DensityMatrix2::from_expectations(&expectations_from_distributions(&data));
    (1.0 - rho.fidelity_with(&bell_phi_plus())).clamp(0.0, 1.0)
}

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let (a, b) = (0u32, 13u32);

    let configs: [(&str, ExecutorConfig); 4] = [
        (
            "full noise",
            ExecutorConfig { shots: scale.tomo_shots, seed: 3, readout_noise: false, ..Default::default() },
        ),
        (
            "no crosstalk",
            ExecutorConfig {
                shots: scale.tomo_shots,
                seed: 3,
                crosstalk: false,
                readout_noise: false,
                ..Default::default()
            },
        ),
        (
            "no decoherence",
            ExecutorConfig {
                shots: scale.tomo_shots,
                seed: 3,
                decoherence: false,
                readout_noise: false,
                ..Default::default()
            },
        ),
        (
            "gate noise only",
            ExecutorConfig {
                shots: scale.tomo_shots,
                seed: 3,
                crosstalk: false,
                decoherence: false,
                readout_noise: false,
                ..Default::default()
            },
        ),
    ];

    println!("=== Noise-source ablation, SWAP {a}<->{b} on {} ===\n", device.name());
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14}",
        "noise model", "Serial", "Par", "Xtalk", "Xtalk gain"
    );
    for (name, cfg) in configs {
        let ser = bell_error(&device, &ctx, &SerialSched::new(), a, b, cfg);
        let par = bell_error(&device, &ctx, &ParSched::new(), a, b, cfg);
        let xt = bell_error(&device, &ctx, &XtalkSched::new(0.5), a, b, cfg);
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>12.4} {:>13.2}x",
            name,
            ser,
            par,
            xt,
            par / xt.max(1e-4)
        );
    }

    println!(
        "\nExpected: the Xtalk-vs-Par gain collapses to ~1x once crosstalk is\n\
         switched off (nothing left to mitigate), and SerialSched's deficit\n\
         versus ParSched disappears without decoherence."
    );
}
