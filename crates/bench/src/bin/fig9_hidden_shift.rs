//! Figure 9: Hidden Shift sensitivity to ω, without (a) and with (b)
//! redundant CNOTs — crosstalk-susceptible programs profit from a wide
//! range of ω.
//!
//! ```text
//! cargo run -p xtalk-bench --release --bin fig9_hidden_shift [--full]
//! ```

use xtalk_bench::Scale;
use xtalk_core::bench_circuits::hidden_shift;
use xtalk_core::pipeline::hidden_shift_error;
use xtalk_core::{ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;

fn main() {
    let scale = Scale::from_args();
    let device = Device::poughkeepsie(scale.seed);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let regions: [[u32; 4]; 4] =
        [[5, 10, 11, 12], [9, 14, 13, 12], [15, 10, 11, 12], [11, 12, 13, 14]];
    let omegas = [0.0, 0.2, 0.35, 0.5, 0.75, 1.0];
    let shift = 0b1010u8;

    for (panel, redundant) in [("(a) no redundant CNOTs", false), ("(b) redundant CNOTs", true)]
    {
        println!("=== Figure 9{panel} ===");
        print!("{:>8}", "omega");
        for region in &regions {
            print!(" {:>16}", format!("{region:?}"));
        }
        println!();

        let mut base_errors = vec![0.0f64; regions.len()];
        let mut best_mid = vec![f64::INFINITY; regions.len()];
        for &omega in &omegas {
            print!("{omega:>8.2}");
            for (r, region) in regions.iter().enumerate() {
                let circuit = hidden_shift(20, region, shift, redundant);
                let sched: Box<dyn Scheduler> = if omega == 0.0 {
                    Box::new(ParSched::new())
                } else if omega == 1.0 {
                    Box::new(SerialSched::new())
                } else {
                    Box::new(XtalkSched::new(omega))
                };
                let err = hidden_shift_error(
                    &device,
                    &ctx,
                    sched.as_ref(),
                    &circuit,
                    shift as u64,
                    scale.app_shots,
                    scale.seed ^ ((r as u64) << 16) ^ (omega * 100.0) as u64,
                )
                .expect("scheduling succeeds");
                if omega == 0.0 {
                    base_errors[r] = err;
                }
                if (0.2..=0.5).contains(&omega) {
                    best_mid[r] = best_mid[r].min(err);
                }
                print!(" {err:>16.4}");
            }
            println!();
        }
        for (r, region) in regions.iter().enumerate() {
            println!(
                "  region {region:?}: ω∈[0.2,0.5] best {:.4} vs ω=0 {:.4} ({:.2}x)",
                best_mid[r],
                base_errors[r],
                base_errors[r].max(1e-4) / best_mid[r].max(1e-4)
            );
        }
        println!();
    }
    println!(
        "Paper shape check: without redundancy only ω=1 helps (overlap windows are\n\
         short); with redundant CNOTs any ω ∈ [0.2, 0.5] beats ω=0, up to ~3x."
    );
}
