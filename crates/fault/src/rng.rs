//! SplitMix64 decision streams.
//!
//! The same philosophy as the executor's per-shot seed derivation: every
//! decision is a pure function of `(stream seed, decision index)`, so a
//! chaos run replays bit-for-bit from its seed and decisions can be
//! random-accessed without threading RNG state around.

/// Weyl increment of the SplitMix64 generator.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 output finalizer: a bijective avalanche mix.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a name, for deriving per-point stream seeds.
#[inline]
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A sequential SplitMix64 generator (used for retry jitter).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Random-access decision stream: `nth(seed, n)` is decision `n` of the
/// stream — exactly what `SplitMix64::new(seed)` would produce on its
/// `n+1`-th call, without the intermediate state.
#[inline]
pub fn nth(seed: u64, n: u64) -> u64 {
    mix(seed.wrapping_add(n.wrapping_add(1).wrapping_mul(GAMMA)))
}

/// `nth` mapped to a uniform draw in `[0, 1)`.
#[inline]
pub fn nth_f64(seed: u64, n: u64) -> f64 {
    (nth(seed, n) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_random_access_agree() {
        let mut seq = SplitMix64::new(0xfeed);
        for n in 0..64 {
            assert_eq!(seq.next_u64(), nth(0xfeed, n));
        }
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = (0..32).map(|n| nth(7, n)).collect();
        let b: Vec<u64> = (0..32).map(|n| nth(7, n)).collect();
        let c: Vec<u64> = (0..32).map(|n| nth(8, n)).collect();
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for n in 0..256 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = nth_f64(3, n);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn fnv1a_separates_point_names() {
        let names = ["pool.job", "pool.spawn", "codec.read", "codec.write", "sim.batch"];
        let mut seen = std::collections::HashSet::new();
        for name in names {
            assert!(seen.insert(fnv1a(name)), "hash collision on {name}");
        }
    }
}
