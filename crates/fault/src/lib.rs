//! `xtalk-fault` — deterministic fault injection for chaos testing.
//!
//! The paper's workflow assumes characterization re-runs every calibration
//! day because crosstalk drifts (§5); a production service built on it
//! must therefore survive characterization failures, worker deaths and
//! flaky I/O without dropping jobs. This crate makes those failure paths
//! *testable*: code under test declares named **injection points**
//! (`pool.job`, `codec.read`, …) and a **fault plan** decides — from a
//! seeded SplitMix64 decision stream, so every chaos run is
//! bit-reproducible — whether each crossing of a point panics, errors,
//! or stalls.
//!
//! Mirroring `xtalk-obs`, the whole layer hides behind one process-global
//! [`AtomicBool`]: while no plan is installed (the default, and the only
//! state production ever sees) every [`check`]/[`fire`] is a single
//! relaxed atomic load returning `None`.
//!
//! Plans parse from a compact spec, accepted by `xtalk serve --faults`
//! and the `XTALK_FAULTS` environment variable:
//!
//! ```text
//! pool.job:panic:0.01,codec.read:err:0.05,sim.batch:delay:0.2:15
//! ```
//!
//! i.e. comma-separated `point:action:probability[:millis]`, where
//! `action` is `panic` | `err` | `delay` (`millis` only applies to
//! `delay`, default 10).
//!
//! ```
//! xtalk_fault::install(xtalk_fault::FaultPlan::parse("demo.point:err:1.0", 7).unwrap());
//! assert!(matches!(xtalk_fault::check("demo.point"), Some(xtalk_fault::Fault::Err(_))));
//! assert!(xtalk_fault::check("other.point").is_none());
//! xtalk_fault::clear();
//! assert!(xtalk_fault::check("demo.point").is_none());
//! ```

pub mod rng;

pub use rng::SplitMix64;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What a fired fault does at its injection point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// The call site should panic (or [`fire`] panics for it).
    Panic(String),
    /// The call site should fail with this message.
    Err(String),
    /// The call site should stall for this long before proceeding.
    Delay(Duration),
}

/// The action configured for a point (the un-fired form of [`Fault`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Action {
    Panic,
    Err,
    Delay(u64),
}

/// One named injection point's configuration inside a plan.
#[derive(Debug)]
struct Point {
    name: String,
    prob: f64,
    action: Action,
    /// Seed of this point's decision stream, derived from the plan seed
    /// and the point name.
    stream_seed: u64,
    /// Decisions consumed so far. Shared across threads: the *sequence*
    /// of decisions at a point is deterministic in the seed; which thread
    /// observes each one depends on scheduling, as in any real system.
    crossings: AtomicU64,
}

/// A parsed, seeded fault plan.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    spec: String,
    points: Vec<Point>,
}

impl FaultPlan {
    /// Parses a `point:action:prob[:ms]` comma list. Whitespace around
    /// entries is tolerated; an empty spec is an error (install nothing
    /// instead).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut points = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            if !(3..=4).contains(&parts.len()) {
                return Err(format!(
                    "fault `{entry}`: expected point:action:prob[:ms]"
                ));
            }
            let name = parts[0].trim();
            if name.is_empty() {
                return Err(format!("fault `{entry}`: empty point name"));
            }
            let prob: f64 = parts[2]
                .parse()
                .map_err(|_| format!("fault `{entry}`: bad probability `{}`", parts[2]))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("fault `{entry}`: probability must be in [0,1]"));
            }
            let action = match (parts[1], parts.get(3)) {
                ("panic", None) => Action::Panic,
                ("err", None) => Action::Err,
                ("delay", ms) => {
                    let ms = match ms {
                        None => 10,
                        Some(v) => v
                            .parse()
                            .map_err(|_| format!("fault `{entry}`: bad millis `{v}`"))?,
                    };
                    Action::Delay(ms)
                }
                (other, None) => {
                    return Err(format!(
                        "fault `{entry}`: unknown action `{other}` (panic, err, delay)"
                    ))
                }
                (_, Some(_)) => {
                    return Err(format!("fault `{entry}`: millis only apply to delay"))
                }
            };
            points.push(Point {
                name: name.to_string(),
                prob,
                action,
                stream_seed: rng::mix(seed ^ rng::fnv1a(name)),
                crossings: AtomicU64::new(0),
            });
        }
        if points.is_empty() {
            return Err("empty fault spec".to_string());
        }
        Ok(FaultPlan { seed, spec: spec.to_string(), points })
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec string the plan was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Consumes one decision at `point`. `None` when the point is not in
    /// the plan or this crossing's draw stays under the threshold.
    pub fn decide(&self, point: &str) -> Option<Fault> {
        let p = self.points.iter().find(|p| p.name == point)?;
        let n = p.crossings.fetch_add(1, Ordering::Relaxed);
        if rng::nth_f64(p.stream_seed, n) >= p.prob {
            return None;
        }
        Some(match p.action {
            Action::Panic => Fault::Panic(format!("injected fault: {point} (crossing {n})")),
            Action::Err => Fault::Err(format!("injected fault: {point} (crossing {n})")),
            Action::Delay(ms) => Fault::Delay(Duration::from_millis(ms)),
        })
    }

    /// Total crossings observed at `point` (fired or not), for tests and
    /// reports.
    pub fn crossings(&self, point: &str) -> u64 {
        self.points
            .iter()
            .find(|p| p.name == point)
            .map_or(0, |p| p.crossings.load(Ordering::Relaxed))
    }
}

/// The canonical spec form: `point:action:prob[:ms]`, comma-separated,
/// no whitespace, millis always explicit on `delay`. Parsing the
/// rendered string yields a semantically identical plan (same points,
/// probabilities and actions), and re-rendering it is a fixed point —
/// the round-trip contract the spec-grammar property tests pin down.
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match p.action {
                Action::Panic => write!(f, "{}:panic:{}", p.name, p.prob)?,
                Action::Err => write!(f, "{}:err:{}", p.name, p.prob)?,
                Action::Delay(ms) => write!(f, "{}:delay:{}:{}", p.name, p.prob, ms)?,
            }
        }
        Ok(())
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether a fault plan is installed. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `plan` process-wide, replacing any previous plan.
pub fn install(plan: FaultPlan) {
    *plan_slot().lock().unwrap() = Some(Arc::new(plan));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Parses `spec` with `seed` and installs the result.
pub fn install_spec(spec: &str, seed: u64) -> Result<(), String> {
    FaultPlan::parse(spec, seed).map(install)
}

/// Installs a plan from `XTALK_FAULTS` (spec) and `XTALK_FAULT_SEED`
/// (default 0). Returns whether a plan was installed.
pub fn install_from_env() -> Result<bool, String> {
    let Ok(spec) = std::env::var("XTALK_FAULTS") else { return Ok(false) };
    if spec.trim().is_empty() {
        return Ok(false);
    }
    let seed = match std::env::var("XTALK_FAULT_SEED") {
        Err(_) => 0,
        Ok(s) => s.parse().map_err(|_| format!("XTALK_FAULT_SEED: bad seed `{s}`"))?,
    };
    install_spec(&spec, seed)?;
    Ok(true)
}

/// Removes the installed plan; every point goes quiet again.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *plan_slot().lock().unwrap() = None;
}

/// A one-line description of the active plan, if any.
pub fn active() -> Option<String> {
    if !enabled() {
        return None;
    }
    plan_slot()
        .lock()
        .unwrap()
        .as_ref()
        .map(|p| format!("{} (seed {})", p.spec(), p.seed()))
}

/// Consumes one decision at `point` against the installed plan. Free
/// (one relaxed load, no allocation) while no plan is installed. Fired
/// faults are counted in `xtalk-obs` as `fault.<point>.<action>` so
/// chaos runs are observable.
#[inline]
pub fn check(point: &str) -> Option<Fault> {
    if !enabled() {
        return None;
    }
    let plan = plan_slot().lock().unwrap().clone()?;
    let fault = plan.decide(point)?;
    if xtalk_obs::enabled() {
        let action = match &fault {
            Fault::Panic(_) => "panic",
            Fault::Err(_) => "err",
            Fault::Delay(_) => "delay",
        };
        xtalk_obs::counter_add(&format!("fault.{point}.{action}"), 1);
    }
    Some(fault)
}

/// [`check`] with the panic and delay actions executed in place: a
/// `panic` fault panics here, a `delay` fault sleeps and returns `None`,
/// and an `err` fault returns its message for the call site to convert
/// into its native error type.
///
/// ```text
/// if let Some(msg) = xtalk_fault::fire("codec.read") {
///     return Err(io::Error::new(io::ErrorKind::ConnectionReset, msg));
/// }
/// ```
#[inline]
pub fn fire(point: &str) -> Option<String> {
    match check(point)? {
        Fault::Panic(msg) => panic!("{msg}"),
        Fault::Err(msg) => Some(msg),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The plan registry is process-global; serialize the tests that
    /// install into it (same pattern as `xtalk-obs`).
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock().unwrap()
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan =
            FaultPlan::parse("pool.job:panic:0.01, codec.read:err:0.05,sim.batch:delay:1.0:25", 7)
                .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.points.len(), 3);
        assert_eq!(plan.points[0].action, Action::Panic);
        assert_eq!(plan.points[1].action, Action::Err);
        assert_eq!(plan.points[2].action, Action::Delay(25));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "  , ,",
            "justaname",
            "p:panic",
            "p:panic:1.5",
            "p:panic:-0.1",
            "p:frob:0.5",
            "p:panic:0.5:10", // millis on non-delay
            ":panic:0.5",
            "p:delay:0.5:soon",
            "p:panic:often",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn display_renders_canonical_form_and_reparses() {
        let plan = FaultPlan::parse(
            " pool.job:panic:0.01 , codec.read:err:0.05,sim.batch:delay:0.2,x:delay:1.0:25",
            7,
        )
        .unwrap();
        let canon = plan.to_string();
        assert_eq!(
            canon,
            "pool.job:panic:0.01,codec.read:err:0.05,sim.batch:delay:0.2:10,x:delay:1:25"
        );
        let reparsed = FaultPlan::parse(&canon, 7).unwrap();
        assert_eq!(reparsed.to_string(), canon, "canonical form must be a fixed point");
    }

    #[test]
    fn decisions_replay_bit_identically_from_the_seed() {
        let a = FaultPlan::parse("x:err:0.3,y:err:0.7", 99).unwrap();
        let b = FaultPlan::parse("x:err:0.3,y:err:0.7", 99).unwrap();
        let fired_a: Vec<bool> = (0..200).map(|_| a.decide("x").is_some()).collect();
        let fired_b: Vec<bool> = (0..200).map(|_| b.decide("x").is_some()).collect();
        assert_eq!(fired_a, fired_b, "same seed must fire identically");
        assert_eq!(a.crossings("x"), 200);

        let c = FaultPlan::parse("x:err:0.3,y:err:0.7", 100).unwrap();
        let fired_c: Vec<bool> = (0..200).map(|_| c.decide("x").is_some()).collect();
        assert_ne!(fired_a, fired_c, "different seed must diverge");

        // Each point consumes its own stream: y's decisions are
        // independent of how often x was crossed.
        let fresh = FaultPlan::parse("x:err:0.3,y:err:0.7", 99).unwrap();
        let y_after: Vec<bool> = (0..50).map(|_| a.decide("y").is_some()).collect();
        let y_fresh: Vec<bool> = (0..50).map(|_| fresh.decide("y").is_some()).collect();
        assert_eq!(y_after, y_fresh);
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let plan = FaultPlan::parse("p:err:0.25", 5).unwrap();
        let fired = (0..4000).filter(|_| plan.decide("p").is_some()).count();
        let rate = fired as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
        // Probability bounds behave.
        let never = FaultPlan::parse("p:err:0.0", 5).unwrap();
        assert!((0..100).all(|_| never.decide("p").is_none()));
        let always = FaultPlan::parse("p:err:1.0", 5).unwrap();
        assert!((0..100).all(|_| always.decide("p").is_some()));
    }

    #[test]
    fn unknown_points_never_fire() {
        let plan = FaultPlan::parse("p:err:1.0", 5).unwrap();
        assert!(plan.decide("q").is_none());
        assert_eq!(plan.crossings("q"), 0);
    }

    #[test]
    fn global_registry_installs_checks_and_clears() {
        let _g = lock();
        assert!(!enabled());
        assert!(check("demo").is_none());
        install_spec("demo:err:1.0", 1).unwrap();
        assert!(enabled());
        assert_eq!(active().unwrap(), "demo:err:1.0 (seed 1)");
        match check("demo") {
            Some(Fault::Err(msg)) => assert!(msg.contains("demo"), "{msg}"),
            other => panic!("expected err fault, got {other:?}"),
        }
        assert!(fire("demo").is_some());
        clear();
        assert!(!enabled());
        assert!(check("demo").is_none());
        assert!(active().is_none());
    }

    #[test]
    fn fire_executes_delay_and_panic_in_place() {
        let _g = lock();
        install_spec("slow:delay:1.0:30,boom:panic:1.0", 2).unwrap();
        let start = std::time::Instant::now();
        assert!(fire("slow").is_none(), "delay resolves to no error");
        assert!(start.elapsed() >= Duration::from_millis(25));
        let panic = std::panic::catch_unwind(|| fire("boom"));
        clear();
        let msg = *panic.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected fault: boom"), "{msg}");
    }

    #[test]
    fn env_install_roundtrip() {
        let _g = lock();
        // No env vars set by default in this test process.
        std::env::remove_var("XTALK_FAULTS");
        assert_eq!(install_from_env(), Ok(false));
        std::env::set_var("XTALK_FAULTS", "envpt:err:1.0");
        std::env::set_var("XTALK_FAULT_SEED", "9");
        assert_eq!(install_from_env(), Ok(true));
        assert!(check("envpt").is_some());
        clear();
        std::env::set_var("XTALK_FAULT_SEED", "not-a-number");
        assert!(install_from_env().is_err());
        std::env::remove_var("XTALK_FAULTS");
        std::env::remove_var("XTALK_FAULT_SEED");
    }
}
