//! Property tests for the fault-spec grammar (`point:action:prob[:ms]`).
//!
//! Two contracts:
//!
//! * **Total parsing** — `FaultPlan::parse` never panics, however hostile
//!   the input: random bytes, near-miss grammar fragments, pathological
//!   numbers. It returns `Err` for everything it cannot accept.
//! * **Round-trip** — every valid spec survives `Display`/parse: the
//!   rendered canonical form reparses to a semantically identical plan
//!   (same seeded decision stream per point) and re-rendering is a fixed
//!   point.
//!
//! These tests only construct plans locally; they never install into the
//! process-global registry, so they can run concurrently with anything.

use proptest::prelude::*;
use xtalk_fault::FaultPlan;

/// Characters that show up in real point names plus benign filler.
const NAME_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";

/// Tokens for near-miss grammar fuzzing: valid fragments, junk, and the
/// grammar's own separators.
const TOKENS: &[&str] = &[
    "pool.job", "panic", "err", "delay", "0.5", "1.0", "-0.1", "1.5", "10", "soon", "", " ",
    "nan", "inf", "1e309", "0x10", "panic:0.5", "::", "p", "18446744073709551616",
];

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..NAME_ALPHABET.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_ALPHABET[i] as char).collect())
}

/// One syntactically valid entry; probabilities are multiples of 1/1000
/// so their shortest `Display` form reparses to the same `f64`.
fn entry_strategy() -> impl Strategy<Value = String> {
    (name_strategy(), 0u8..3, 0u32..=1000, 1u64..5000).prop_map(|(name, action, p, ms)| {
        let prob = p as f64 / 1000.0;
        match action {
            0 => format!("{name}:panic:{prob}"),
            1 => format!("{name}:err:{prob}"),
            _ => format!("{name}:delay:{prob}:{ms}"),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded) never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..80), seed in 0u64..1000) {
        let s = String::from_utf8_lossy(&bytes).into_owned();
        let _ = FaultPlan::parse(&s, seed);
    }

    /// Near-miss inputs assembled from grammar fragments and separators
    /// never panic, and anything the parser *does* accept must round-trip
    /// through `Display`/parse to a fixed point.
    #[test]
    fn hostile_grammar_fragments_never_panic(
        picks in prop::collection::vec((0usize..TOKENS.len(), 0u8..3), 0..12),
        seed in 0u64..1000,
    ) {
        let spec: String = picks
            .into_iter()
            .map(|(t, sep)| {
                let sep = match sep {
                    0 => ":",
                    1 => ",",
                    _ => "",
                };
                format!("{}{}", TOKENS[t], sep)
            })
            .collect();
        if let Ok(plan) = FaultPlan::parse(&spec, seed) {
            let canon = plan.to_string();
            let reparsed = FaultPlan::parse(&canon, seed)
                .unwrap_or_else(|e| panic!("canonical form `{canon}` rejected: {e}"));
            prop_assert_eq!(reparsed.to_string(), canon);
        }
    }

    /// Valid specs round-trip: the canonical rendering reparses into a
    /// plan with bit-identical decision streams at every point, and
    /// rendering is a fixed point.
    #[test]
    fn valid_specs_round_trip(
        entries in prop::collection::vec(entry_strategy(), 1..5),
        seed in 0u64..1000,
        pad in 0u8..2,
    ) {
        // Whitespace and empty entries are tolerated on input but absent
        // from the canonical form.
        let sep = if pad == 0 { "," } else { " , " };
        let spec = entries.join(sep);
        let plan = FaultPlan::parse(&spec, seed)
            .unwrap_or_else(|e| panic!("valid spec `{spec}` rejected: {e}"));
        let canon = plan.to_string();
        let reparsed = FaultPlan::parse(&canon, seed)
            .unwrap_or_else(|e| panic!("canonical form `{canon}` rejected: {e}"));
        prop_assert_eq!(reparsed.to_string(), canon.clone(), "Display must be a fixed point");
        prop_assert_eq!(reparsed.seed(), plan.seed());

        // Semantic equality: the seeded decision stream of every point is
        // unchanged by the round-trip (names keep order; duplicates keep
        // first-match semantics).
        for entry in &entries {
            let point = entry.split(':').next().unwrap();
            let a: Vec<bool> = (0..32).map(|_| plan.decide(point).is_some()).collect();
            let b: Vec<bool> = (0..32).map(|_| reparsed.decide(point).is_some()).collect();
            prop_assert_eq!(&a, &b, "decision stream diverged at `{}`", point);
        }
    }
}
