//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification: an exact size, `lo..hi`, or `lo..=hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// `Vec`s of `element`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
