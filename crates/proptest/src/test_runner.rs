//! Execution plumbing: config, RNG, and failure type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// How many cases each property runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test's
/// module path and name, so failures reproduce run to run.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds deterministically from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A failed property case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
