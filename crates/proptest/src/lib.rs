//! Offline, dependency-free stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small random-testing harness under the same crate name. It keeps the
//! *API shape* of proptest — `proptest!`, range and tuple strategies,
//! `prop_map`/`prop_filter_map`, `prop_oneof!`, `prop::collection::vec`,
//! `prop_assert*!`, `ProptestConfig::with_cases` — but generates inputs by
//! plain seeded random sampling and does **not** shrink failing cases.
//! Failures print the generated input (via `Debug`) and the case number,
//! and every run is deterministic, so a failure reproduces exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable façade, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports the subset of proptest's grammar used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(0i64..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Deterministic per-test seed derived from the test path.
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the enclosing property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Picks uniformly among the listed strategies (all producing the same
/// value type). Weight prefixes are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::one_of_arm($strategy),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..10, (a, b) in (0i64..5, -3.0..3.0f64)) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((-3.0..3.0).contains(&b));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![0usize..3, 10usize..13], 0..6)) {
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x < 3 || (10..13).contains(&x));
            }
        }

        #[test]
        fn filter_map_retries(q in (0u32..4, 0u32..4).prop_filter_map("distinct", |(a, b)| {
            (a != b).then_some((a, b))
        })) {
            prop_assert_ne!(q.0, q.1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = crate::collection::vec(0u64..100, 3..9);
        for _ in 0..10 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[allow(dead_code)]
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_number() {
        always_fails();
    }
}
