//! Value-generation strategies: seeded random sampling, no shrinking.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree: `generate` draws one
/// sample directly from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, regenerating otherwise.
    /// `reason` labels the filter in the give-up panic message.
    fn prop_filter_map<T, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<T>,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Keeps only values satisfying `pred`, regenerating otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred, reason }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// How many times filters retry before giving up.
const FILTER_RETRIES: usize = 1_000;

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}` rejected {FILTER_RETRIES} samples in a row", self.reason)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected {FILTER_RETRIES} samples in a row", self.reason)
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty arm list.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

/// Boxes one `prop_oneof!` arm. A named generic function (rather than an
/// `as Box<dyn …>` cast) so the arm's value type unifies eagerly during
/// inference.
pub fn one_of_arm<V, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
    Box::new(s)
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
