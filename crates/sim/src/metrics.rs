//! Distribution-distance metrics used in the paper's evaluation
//! (Section 8.4): cross entropy for QAOA, success probability for Hidden
//! Shift, plus standard extras.

use crate::Counts;

/// Cross entropy `−Σ_x p(x)·ln q(x)` between an ideal distribution `p`
/// and an empirical distribution `q` (dense vectors of equal length).
/// Zero-probability measured outcomes are floored at `eps` so the metric
/// stays finite, as is conventional.
///
/// # Panics
///
/// Panics if lengths differ or `eps <= 0`.
pub fn cross_entropy(ideal: &[f64], measured: &[f64], eps: f64) -> f64 {
    assert_eq!(ideal.len(), measured.len(), "distribution lengths must match");
    assert!(eps > 0.0, "eps must be positive");
    ideal
        .iter()
        .zip(measured)
        .filter(|(&p, _)| p > 0.0)
        .map(|(&p, &q)| -p * q.max(eps).ln())
        .sum()
}

/// Cross entropy of counts against an ideal distribution, with the
/// conventional `1/(2·shots)` floor.
pub fn cross_entropy_counts(ideal: &[f64], counts: &Counts) -> f64 {
    let eps = 0.5 / counts.shots().max(1) as f64;
    cross_entropy(ideal, &counts.distribution(), eps)
}

/// Shannon entropy `−Σ p ln p` — the theoretical minimum of the cross
/// entropy, achieved when the measured distribution equals the ideal
/// (the paper's "Theoretical Ideal (Noise Free)" line in Figure 8).
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
}

/// Cross-entropy *loss*: `CE(p, q) − H(p) ≥ 0`, the quantity the paper's
/// improvement factors are computed over.
pub fn cross_entropy_loss(ideal: &[f64], counts: &Counts) -> f64 {
    (cross_entropy_counts(ideal, counts) - entropy(ideal)).max(0.0)
}

/// Total variation distance `½ Σ |p − q|`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths must match");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Hellinger distance `√(1 − Σ √(p·q))` (clamped for numerical safety).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hellinger(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths must match");
    let bc: f64 = p.iter().zip(q).map(|(a, b)| (a * b).sqrt()).sum();
    (1.0 - bc).max(0.0).sqrt()
}

/// Probability the counts reproduce the single correct bitstring — the
/// Hidden Shift metric (error rate is `1 −` this).
pub fn success_probability(counts: &Counts, target: u64) -> f64 {
    counts.success_fraction(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn cross_entropy_of_self_is_entropy() {
        let p = vec![0.5, 0.25, 0.25, 0.0];
        assert!((cross_entropy(&p, &p, 1e-12) - entropy(&p)).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_penalizes_mismatch() {
        let p = vec![1.0, 0.0];
        let close = vec![0.9, 0.1];
        let far = vec![0.1, 0.9];
        assert!(cross_entropy(&p, &close, 1e-9) < cross_entropy(&p, &far, 1e-9));
    }

    #[test]
    fn entropy_of_uniform() {
        let h = entropy(&uniform(4));
        assert!((h - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn loss_is_nonnegative_and_zero_on_match() {
        let p = vec![0.5, 0.5];
        let mut counts = Counts::new(1);
        for _ in 0..500 {
            counts.record(0);
            counts.record(1);
        }
        let loss = cross_entropy_loss(&p, &counts);
        assert!((0.0..1e-9).contains(&loss), "loss {loss}");
    }

    #[test]
    fn tvd_bounds() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert_eq!(total_variation(&p, &q), 1.0);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn hellinger_bounds() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!((hellinger(&p, &q) - 1.0).abs() < 1e-12);
        assert!(hellinger(&p, &p) < 1e-9);
        assert!(hellinger(&p, &uniform(2)) > 0.0);
    }

    #[test]
    fn success_probability_reads_counts() {
        let mut c = Counts::new(2);
        c.record(0b10);
        c.record(0b10);
        c.record(0b01);
        assert!((success_probability(&c, 0b10) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_rejected() {
        cross_entropy(&[1.0], &[0.5, 0.5], 1e-9);
    }
}
