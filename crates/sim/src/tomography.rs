//! Two-qubit state tomography (the paper's SWAP-circuit metric,
//! Section 8.4: Bell-state fidelity from 9 measurement bases × 1024
//! trials, giving an error rate in `[0, 1]`).

use crate::matrix::{single_qubit_matrix, Mat2, Mat4};
use crate::C64;
use xtalk_ir::{Circuit, Gate, Qubit};

/// The nine two-qubit measurement settings `{X,Y,Z}²`; the first letter
/// is the basis of the lower-indexed classical bit.
pub fn settings() -> [(char, char); 9] {
    [
        ('Z', 'Z'), ('Z', 'X'), ('Z', 'Y'),
        ('X', 'Z'), ('X', 'X'), ('X', 'Y'),
        ('Y', 'Z'), ('Y', 'X'), ('Y', 'Y'),
    ]
}

/// Appends the pre-measurement rotation mapping `basis` onto Z: nothing
/// for `Z`, `H` for `X`, `S†;H` for `Y`.
///
/// # Panics
///
/// Panics on an unknown basis letter.
pub fn append_basis_change(c: &mut Circuit, q: Qubit, basis: char) {
    match basis {
        'Z' => {}
        'X' => {
            c.h(q);
        }
        'Y' => {
            c.sdg(q).h(q);
        }
        other => panic!("unknown measurement basis `{other}`"),
    }
}

/// Builds the nine tomography circuits for the state prepared by `prep`
/// on qubits `(qa, qb)`: each clone of `prep` gets basis rotations and
/// measurements of `qa → clbit 0`, `qb → clbit 1`.
///
/// # Panics
///
/// Panics if `prep` contains measurements or fewer than 2 clbits.
pub fn tomography_circuits(prep: &Circuit, qa: Qubit, qb: Qubit) -> Vec<((char, char), Circuit)> {
    assert!(prep.count_gate("measure") == 0, "prep circuit must not measure");
    assert!(prep.num_clbits() >= 2, "prep circuit needs at least 2 clbits");
    settings()
        .into_iter()
        .map(|(ba, bb)| {
            let mut c = prep.clone();
            append_basis_change(&mut c, qa, ba);
            append_basis_change(&mut c, qb, bb);
            c.measure(qa, 0).measure(qb, 1);
            ((ba, bb), c)
        })
        .collect()
}

/// Pauli expectation values `⟨σ_p ⊗ σ_q⟩` (indices over `I,X,Y,Z`; first
/// index = clbit 0's qubit) estimated from per-setting outcome
/// distributions (dense length-4, bit 0 = clbit 0).
///
/// # Panics
///
/// Panics if any of the nine settings is missing or a distribution has
/// the wrong length.
pub fn expectations_from_distributions(
    data: &[((char, char), Vec<f64>)],
) -> [[f64; 4]; 4] {
    let idx = |b: char| match b {
        'X' => 1usize,
        'Y' => 2,
        'Z' => 3,
        other => panic!("unknown basis `{other}`"),
    };
    let mut joint = [[f64::NAN; 4]; 4];
    let mut marg_a_sum = [0.0f64; 4];
    let mut marg_a_n = [0u32; 4];
    let mut marg_b_sum = [0.0f64; 4];
    let mut marg_b_n = [0u32; 4];

    for ((ba, bb), dist) in data {
        assert_eq!(dist.len(), 4, "two-qubit distribution must have 4 entries");
        let (ia, ib) = (idx(*ba), idx(*bb));
        let mut e_joint = 0.0;
        let mut e_a = 0.0;
        let mut e_b = 0.0;
        for (o, &p) in dist.iter().enumerate() {
            let sa = if o & 1 == 0 { 1.0 } else { -1.0 };
            let sb = if o & 2 == 0 { 1.0 } else { -1.0 };
            e_joint += p * sa * sb;
            e_a += p * sa;
            e_b += p * sb;
        }
        joint[ia][ib] = e_joint;
        marg_a_sum[ia] += e_a;
        marg_a_n[ia] += 1;
        marg_b_sum[ib] += e_b;
        marg_b_n[ib] += 1;
    }

    let mut e = [[0.0f64; 4]; 4];
    e[0][0] = 1.0;
    for p in 1..4 {
        assert!(marg_a_n[p] > 0, "missing settings for first-qubit basis {p}");
        e[p][0] = marg_a_sum[p] / marg_a_n[p] as f64;
        assert!(marg_b_n[p] > 0, "missing settings for second-qubit basis {p}");
        e[0][p] = marg_b_sum[p] / marg_b_n[p] as f64;
        for q in 1..4 {
            assert!(!joint[p][q].is_nan(), "missing setting ({p},{q})");
            e[p][q] = joint[p][q];
        }
    }
    e
}

/// A reconstructed two-qubit density matrix (linear inversion):
/// `ρ = ¼ Σ_{p,q} ⟨σ_p⊗σ_q⟩ σ_p⊗σ_q`.
#[derive(Clone, PartialEq, Debug)]
pub struct DensityMatrix2(pub [[C64; 4]; 4]);

impl DensityMatrix2 {
    /// Builds from Pauli expectations.
    pub fn from_expectations(e: &[[f64; 4]; 4]) -> Self {
        let paulis: [Mat2; 4] = [
            Mat2::identity(),
            single_qubit_matrix(&Gate::X),
            single_qubit_matrix(&Gate::Y),
            single_qubit_matrix(&Gate::Z),
        ];
        let mut rho = [[C64::ZERO; 4]; 4];
        for p in 0..4 {
            for q in 0..4 {
                let m = Mat4::kron(&paulis[p], &paulis[q]);
                for (i, row) in rho.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        *cell += m.0[i][j].scale(e[p][q] * 0.25);
                    }
                }
            }
        }
        DensityMatrix2(rho)
    }

    /// Trace (should be ≈ 1).
    pub fn trace(&self) -> C64 {
        let mut t = C64::ZERO;
        for i in 0..4 {
            t += self.0[i][i];
        }
        t
    }

    /// Purity `Tr(ρ²)` (1 for pure states, ¼ for the maximally mixed).
    pub fn purity(&self) -> f64 {
        let mut p = C64::ZERO;
        for i in 0..4 {
            for k in 0..4 {
                p += self.0[i][k] * self.0[k][i];
            }
        }
        p.re
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure target state.
    pub fn fidelity_with(&self, psi: &[C64; 4]) -> f64 {
        let mut f = C64::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                f += psi[i].conj() * self.0[i][j] * psi[j];
            }
        }
        f.re
    }
}

/// The Bell state `|Φ+⟩ = (|00⟩+|11⟩)/√2` in the little-endian 2-qubit
/// basis.
pub fn bell_phi_plus() -> [C64; 4] {
    let r = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    [r, C64::ZERO, C64::ZERO, r]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal;

    /// Exact tomography of the circuit's output using ideal distributions.
    fn exact_tomography(prep: &Circuit) -> DensityMatrix2 {
        let circuits = tomography_circuits(prep, Qubit::new(0), Qubit::new(1));
        let data: Vec<((char, char), Vec<f64>)> = circuits
            .into_iter()
            .map(|(s, c)| (s, ideal::distribution(&c)))
            .collect();
        DensityMatrix2::from_expectations(&expectations_from_distributions(&data))
    }

    #[test]
    fn bell_state_reconstructs_perfectly() {
        let mut prep = Circuit::new(2, 2);
        prep.h(0).cx(0, 1);
        let rho = exact_tomography(&prep);
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
        assert!(rho.trace().im.abs() < 1e-9);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
        assert!((rho.fidelity_with(&bell_phi_plus()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_state_fidelity_with_bell_is_half() {
        let prep = Circuit::new(2, 2);
        let rho = exact_tomography(&prep);
        assert!((rho.fidelity_with(&bell_phi_plus()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn product_state_expectations() {
        // |+⟩ ⊗ |1⟩: ⟨X⊗I⟩ = 1, ⟨I⊗Z⟩ = −1, ⟨X⊗Z⟩ = −1.
        let mut prep = Circuit::new(2, 2);
        prep.h(0).x(1);
        let circuits = tomography_circuits(&prep, Qubit::new(0), Qubit::new(1));
        let data: Vec<_> = circuits
            .into_iter()
            .map(|(s, c)| (s, ideal::distribution(&c)))
            .collect();
        let e = expectations_from_distributions(&data);
        assert!((e[1][0] - 1.0).abs() < 1e-9, "⟨X⊗I⟩ {}", e[1][0]);
        assert!((e[0][3] + 1.0).abs() < 1e-9, "⟨I⊗Z⟩ {}", e[0][3]);
        assert!((e[1][3] + 1.0).abs() < 1e-9, "⟨X⊗Z⟩ {}", e[1][3]);
        assert!(e[3][0].abs() < 1e-9, "⟨Z⊗I⟩ {}", e[3][0]);
    }

    #[test]
    fn nine_settings_generated() {
        let mut prep = Circuit::new(2, 2);
        prep.h(0);
        let cs = tomography_circuits(&prep, Qubit::new(0), Qubit::new(1));
        assert_eq!(cs.len(), 9);
        for (_, c) in &cs {
            assert_eq!(c.count_gate("measure"), 2);
        }
    }

    #[test]
    fn maximally_mixed_from_uniform_expectations() {
        let mut e = [[0.0; 4]; 4];
        e[0][0] = 1.0;
        let rho = DensityMatrix2::from_expectations(&e);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!((rho.fidelity_with(&bell_phi_plus()) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not measure")]
    fn measured_prep_rejected() {
        let mut prep = Circuit::new(2, 2);
        prep.measure(0, 0);
        tomography_circuits(&prep, Qubit::new(0), Qubit::new(1));
    }
}
