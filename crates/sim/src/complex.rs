//! A minimal complex-number type (the approved dependency set has no
//! `num-complex`, and the simulator only needs a handful of operations).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` parts.
///
/// ```
/// use xtalk_sim::C64;
/// let i = C64::I;
/// assert_eq!(i * i, -C64::ONE);
/// assert!((C64::cis(std::f64::consts::PI) + C64::ONE).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// `true` if within `eps` of `other` (component-wise).
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, s: f64) -> C64 {
        self.scale(s)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    fn div(self, s: f64) -> C64 {
        C64 { re: self.re / s, im: self.im / s }
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(a * 2.0, C64::new(2.0, 4.0));
        assert_eq!(a / 2.0, C64::new(0.5, 1.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn cis_on_unit_circle() {
        for k in 0..8 {
            let t = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((C64::cis(t).norm() - 1.0).abs() < 1e-12);
        }
        assert!(C64::cis(std::f64::consts::FRAC_PI_2).approx_eq(C64::I, 1e-12));
    }

    #[test]
    fn display_sign_handling() {
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1.000000-1.000000i");
        assert_eq!(C64::new(0.0, 2.0).to_string(), "0.000000+2.000000i");
    }
}
