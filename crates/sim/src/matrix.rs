//! Gate matrices (2×2 and 4×4) over [`C64`].

use crate::C64;
use xtalk_ir::Gate;

/// A 2×2 complex matrix (single-qubit unitary), row-major.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Mat2(pub [[C64; 2]; 2]);

/// A 4×4 complex matrix (two-qubit unitary), row-major in the basis
/// `|q1 q0⟩` = `|00⟩,|01⟩,|10⟩,|11⟩` with *qubit 0 the least-significant
/// bit* (matching [`crate::StateVector`]'s little-endian convention).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Mat4(pub [[C64; 4]; 4]);

impl Mat2 {
    /// Identity.
    pub fn identity() -> Self {
        let o = C64::ONE;
        let z = C64::ZERO;
        Mat2([[o, z], [z, o]])
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &Mat2) -> Mat2 {
        let mut out = [[C64::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..2 {
                    *cell += self.0[i][k] * other.0[k][j];
                }
            }
        }
        Mat2(out)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat2 {
        let m = &self.0;
        Mat2([[m[0][0].conj(), m[1][0].conj()], [m[0][1].conj(), m[1][1].conj()]])
    }

    /// `true` if `U·U† = I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let p = self.mul(&self.dagger());
        let id = Mat2::identity();
        (0..2).all(|i| (0..2).all(|j| p.0[i][j].approx_eq(id.0[i][j], eps)))
    }
}

impl Mat4 {
    /// Identity.
    pub fn identity() -> Self {
        let mut m = [[C64::ZERO; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = C64::ONE;
        }
        Mat4(m)
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &Mat4) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..4 {
                    *cell += self.0[i][k] * other.0[k][j];
                }
            }
        }
        Mat4(out)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.0[j][i].conj();
            }
        }
        Mat4(out)
    }

    /// `true` if `U·U† = I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let p = self.mul(&self.dagger());
        let id = Mat4::identity();
        (0..4).all(|i| (0..4).all(|j| p.0[i][j].approx_eq(id.0[i][j], eps)))
    }

    /// Kronecker product `b ⊗ a` laid out so that `a` acts on qubit 0
    /// (LSB) and `b` on qubit 1.
    pub fn kron(a: &Mat2, b: &Mat2) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for i1 in 0..2 {
            for i0 in 0..2 {
                for j1 in 0..2 {
                    for j0 in 0..2 {
                        out[i1 * 2 + i0][j1 * 2 + j0] = b.0[i1][j1] * a.0[i0][j0];
                    }
                }
            }
        }
        Mat4(out)
    }
}

/// The unitary of a single-qubit gate.
///
/// # Panics
///
/// Panics for non-unitary or multi-qubit gates.
pub fn single_qubit_matrix(gate: &Gate) -> Mat2 {
    use std::f64::consts::FRAC_1_SQRT_2 as R;
    let z = C64::ZERO;
    let o = C64::ONE;
    let i = C64::I;
    match *gate {
        Gate::I => Mat2::identity(),
        Gate::X => Mat2([[z, o], [o, z]]),
        Gate::Y => Mat2([[z, -i], [i, z]]),
        Gate::Z => Mat2([[o, z], [z, -o]]),
        Gate::H => Mat2([[C64::real(R), C64::real(R)], [C64::real(R), C64::real(-R)]]),
        Gate::S => Mat2([[o, z], [z, i]]),
        Gate::Sdg => Mat2([[o, z], [z, -i]]),
        Gate::T => Mat2([[o, z], [z, C64::cis(std::f64::consts::FRAC_PI_4)]]),
        Gate::Tdg => Mat2([[o, z], [z, C64::cis(-std::f64::consts::FRAC_PI_4)]]),
        Gate::U1(l) => Mat2([[o, z], [z, C64::cis(l)]]),
        Gate::U2(phi, lam) => u3_matrix(std::f64::consts::FRAC_PI_2, phi, lam),
        Gate::U3(t, phi, lam) => u3_matrix(t, phi, lam),
        Gate::Rx(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            Mat2([[C64::real(c), C64::new(0.0, -s)], [C64::new(0.0, -s), C64::real(c)]])
        }
        Gate::Ry(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            Mat2([[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]])
        }
        Gate::Rz(a) => Mat2([[C64::cis(-a / 2.0), z], [z, C64::cis(a / 2.0)]]),
        ref g => panic!("`{g}` is not a single-qubit unitary"),
    }
}

fn u3_matrix(theta: f64, phi: f64, lam: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Mat2([
        [C64::real(c), C64::cis(lam).scale(-s)],
        [C64::cis(phi).scale(s), C64::cis(phi + lam).scale(c)],
    ])
}

/// The unitary of a two-qubit gate in the `[first, second]` qubit order of
/// the instruction, with `first` on the LSB of the 2-bit index.
///
/// # Panics
///
/// Panics for gates that are not two-qubit unitaries.
pub fn two_qubit_matrix(gate: &Gate) -> Mat4 {
    let z = C64::ZERO;
    let o = C64::ONE;
    match gate {
        // Control = qubit index 0 (LSB), target = qubit index 1:
        // |c t⟩ indices 0:|00⟩ 1:|c=1,t=0⟩→|11⟩… basis index = t*2 + c.
        Gate::Cx => Mat4([
            [o, z, z, z],
            [z, z, z, o],
            [z, z, o, z],
            [z, o, z, z],
        ]),
        Gate::Cz => Mat4([
            [o, z, z, z],
            [z, o, z, z],
            [z, z, o, z],
            [z, z, z, -o],
        ]),
        Gate::Swap => Mat4([
            [o, z, z, z],
            [z, z, o, z],
            [z, o, z, z],
            [z, z, z, o],
        ]),
        g => panic!("`{g}` is not a two-qubit unitary"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::U1(0.7),
            Gate::U2(0.3, -1.1),
            Gate::U3(0.5, 1.2, -0.4),
            Gate::Rx(0.9),
            Gate::Ry(-2.1),
            Gate::Rz(0.33),
        ];
        for g in gates {
            assert!(single_qubit_matrix(&g).is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [Gate::Cx, Gate::Cz, Gate::Swap] {
            assert!(two_qubit_matrix(&g).is_unitary(1e-12));
        }
    }

    #[test]
    fn h_squared_is_identity() {
        let h = single_qubit_matrix(&Gate::H);
        let hh = h.mul(&h);
        let id = Mat2::identity();
        for i in 0..2 {
            for j in 0..2 {
                assert!(hh.0[i][j].approx_eq(id.0[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn u3_specializations() {
        // u3(π/2, φ, λ) = u2(φ, λ); u3(0,0,λ) = u1(λ).
        let u2 = single_qubit_matrix(&Gate::U2(0.4, 0.9));
        let u3 = single_qubit_matrix(&Gate::U3(PI / 2.0, 0.4, 0.9));
        for i in 0..2 {
            for j in 0..2 {
                assert!(u2.0[i][j].approx_eq(u3.0[i][j], 1e-12));
            }
        }
        // H = u2(0, π) exactly (up to nothing — same convention).
        let h = single_qubit_matrix(&Gate::H);
        let u2h = single_qubit_matrix(&Gate::U2(0.0, PI));
        for i in 0..2 {
            for j in 0..2 {
                assert!(h.0[i][j].approx_eq(u2h.0[i][j], 1e-12), "H != u2(0,π)");
            }
        }
    }

    #[test]
    fn cx_truth_table() {
        let cx = two_qubit_matrix(&Gate::Cx);
        // basis index = target*2 + control; CX flips target when control=1.
        // |c=1,t=0⟩ = index 1 → |c=1,t=1⟩ = index 3.
        assert_eq!(cx.0[3][1], C64::ONE);
        assert_eq!(cx.0[1][3], C64::ONE);
        assert_eq!(cx.0[0][0], C64::ONE);
        assert_eq!(cx.0[2][2], C64::ONE);
    }

    #[test]
    fn kron_places_factors() {
        let x = single_qubit_matrix(&Gate::X);
        let id = Mat2::identity();
        // X on qubit 0: flips LSB.
        let m = Mat4::kron(&x, &id);
        assert_eq!(m.0[1][0], C64::ONE);
        assert_eq!(m.0[3][2], C64::ONE);
        // X on qubit 1: flips MSB.
        let m = Mat4::kron(&id, &x);
        assert_eq!(m.0[2][0], C64::ONE);
        assert_eq!(m.0[3][1], C64::ONE);
    }

    #[test]
    #[should_panic(expected = "not a single-qubit unitary")]
    fn measure_has_no_matrix() {
        single_qubit_matrix(&Gate::Measure);
    }
}
