//! Exact noise-free execution (the reference for cross-entropy metrics).

use crate::StateVector;
use xtalk_ir::Circuit;

/// Runs `circuit` without any noise and returns the exact probability
/// distribution over the classical register (dense, length
/// `2^num_clbits`), assuming each measured qubit receives no further
/// gates after its measurement.
///
/// # Panics
///
/// Panics if a qubit is operated on after being measured, or if the
/// classical register is wider than 24 bits (dense output).
///
/// ```
/// use xtalk_ir::Circuit;
/// use xtalk_sim::ideal;
/// let mut c = Circuit::new(2, 2);
/// c.h(0).cx(0, 1).measure_all();
/// let p = ideal::distribution(&c);
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
pub fn distribution(circuit: &Circuit) -> Vec<f64> {
    assert!(circuit.num_clbits() <= 24, "classical register too wide for dense output");
    let mut state = StateVector::new(circuit.num_qubits());
    // qubit → clbit for deferred measurement.
    let mut measured: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

    for instr in circuit.iter() {
        if instr.gate().is_barrier() {
            continue;
        }
        for q in instr.qubits() {
            assert!(
                measured[q.index()].is_none(),
                "qubit {q} is used after measurement; ideal execution assumes terminal readout"
            );
        }
        if instr.gate().is_measurement() {
            measured[instr.qubits()[0].index()] =
                Some(instr.clbit().expect("measure carries a clbit").index());
        } else {
            let qs: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
            state.apply_gate(instr.gate(), &qs);
        }
    }

    let mut out = vec![0.0; 1 << circuit.num_clbits()];
    for (b, p) in state.probabilities().into_iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let mut key = 0usize;
        for (q, m) in measured.iter().enumerate() {
            if let Some(c) = m {
                if (b >> q) & 1 == 1 {
                    key |= 1 << c;
                }
            }
        }
        out[key] += p;
    }
    out
}

/// The final statevector of a measurement-free circuit.
///
/// # Panics
///
/// Panics if the circuit contains measurements.
pub fn final_state(circuit: &Circuit) -> StateVector {
    let mut state = StateVector::new(circuit.num_qubits());
    for instr in circuit.iter() {
        if instr.gate().is_barrier() {
            continue;
        }
        assert!(
            !instr.gate().is_measurement(),
            "final_state requires a measurement-free circuit"
        );
        let qs: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        state.apply_gate(instr.gate(), &qs);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_circuit() {
        let mut c = Circuit::new(2, 2);
        c.x(0).measure_all();
        let p = distribution(&c);
        assert_eq!(p[0b01], 1.0);
    }

    #[test]
    fn unmeasured_qubits_are_marginalized() {
        let mut c = Circuit::new(2, 1);
        c.h(0).x(1).measure(0, 0);
        let p = distribution(&c);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clbit_permutation_respected() {
        let mut c = Circuit::new(2, 2);
        c.x(0).measure(0, 1).measure(1, 0);
        let p = distribution(&c);
        assert_eq!(p[0b10], 1.0);
    }

    #[test]
    #[should_panic(expected = "after measurement")]
    fn gate_after_measure_rejected() {
        let mut c = Circuit::new(1, 1);
        c.measure(0, 0).x(0);
        distribution(&c);
    }

    #[test]
    fn final_state_of_ghz() {
        let mut c = Circuit::new(3, 0);
        c.h(0).cx(0, 1).cx(1, 2);
        let s = final_state(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut c = Circuit::new(3, 3);
        c.h(0).h(1).cx(1, 2).t(0).measure_all();
        let p = distribution(&c);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
