//! Noisy quantum-circuit simulator: the stand-in for IBMQ hardware.
//!
//! The paper runs every experiment on three real 20-qubit IBM machines;
//! this crate replaces them with a Monte-Carlo *trajectory* statevector
//! simulator whose error model compounds the same way real hardware noise
//! does:
//!
//! * every gate is applied ideally, then hit by a depolarizing Pauli error
//!   whose probability comes from the device calibration — and, for
//!   two-qubit gates that *overlap in time* with a high-crosstalk partner,
//!   is amplified by the device's ground-truth [`xtalk_device::CrosstalkMap`]
//!   (taking the max over overlapping aggressors, the paper's Eq. 6 model);
//! * idle gaps on each qubit suffer amplitude damping (`1−e^{−t/T1}`) and
//!   dephasing (`1−e^{−t/T2}`), starting from the qubit's first operation
//!   (the IBM convention the paper exploits in its Figure 6 case study);
//! * readout flips each measured bit with the calibrated assignment error.
//!
//! Connected components of the circuit's interaction graph are simulated
//! independently (exact, since no unitary spans components), which keeps
//! bin-packed simultaneous-RB experiments cheap.
//!
//! Also provided: exact noise-free execution ([`ideal`]), two-qubit state
//! tomography ([`tomography`]), readout-error mitigation ([`mitigation`])
//! and distribution metrics ([`metrics`]) — the measurement toolkit of the
//! paper's Section 8.4.

mod complex;
mod counts;
pub mod density;
mod executor;
pub mod ideal;
mod matrix;
pub mod metrics;
pub mod mitigation;
mod noise;
mod state;
pub mod tomography;

pub use complex::C64;
pub use counts::Counts;
pub use executor::{Executor, ExecutorConfig, RunOutcome, BUDGET_BATCH_SHOTS};
pub use matrix::{single_qubit_matrix, two_qubit_matrix, Mat2, Mat4};
pub use noise::{
    depolarizing_prob_for_error_1q, depolarizing_prob_for_error_2q, NoiseModel,
};
pub use state::StateVector;
