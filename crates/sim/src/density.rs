//! Exact density-matrix evolution for small registers.
//!
//! The trajectory executor approximates open-system dynamics by Monte
//! Carlo sampling; this module evolves the density matrix *exactly* for
//! the same channels, giving an independent oracle against which the
//! sampler is validated (see the `trajectory_matches_density_*` tests and
//! the `simulator_physics` integration suite).

use crate::matrix::{single_qubit_matrix, two_qubit_matrix, Mat2};
use crate::{C64, StateVector};
use xtalk_ir::Gate;

/// An exact `2^n × 2^n` density matrix (`n ≤ 6` to stay small).
#[derive(Clone, PartialEq, Debug)]
pub struct DensityMatrix {
    n: usize,
    rho: Vec<Vec<C64>>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 6`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 6, "density matrices above 6 qubits are impractical here");
        let dim = 1 << n;
        let mut rho = vec![vec![C64::ZERO; dim]; dim];
        rho[0][0] = C64::ONE;
        DensityMatrix { n, rho }
    }

    /// The pure state `|ψ⟩⟨ψ|` of a statevector.
    pub fn from_state(state: &StateVector) -> Self {
        let n = state.num_qubits();
        assert!(n <= 6, "density matrices above 6 qubits are impractical here");
        let dim = 1 << n;
        let mut rho = vec![vec![C64::ZERO; dim]; dim];
        for (i, row) in rho.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = state.amp(i) * state.amp(j).conj();
            }
        }
        DensityMatrix { n, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Matrix element `⟨i|ρ|j⟩`.
    pub fn element(&self, i: usize, j: usize) -> C64 {
        self.rho[i][j]
    }

    /// Trace (≈ 1 for a physical state).
    pub fn trace(&self) -> C64 {
        let mut t = C64::ZERO;
        for i in 0..self.rho.len() {
            t += self.rho[i][i];
        }
        t
    }

    /// Purity `Tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        let mut p = C64::ZERO;
        for i in 0..self.rho.len() {
            for k in 0..self.rho.len() {
                p += self.rho[i][k] * self.rho[k][i];
            }
        }
        p.re
    }

    /// Measurement probabilities in the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.len()).map(|i| self.rho[i][i].re).collect()
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity_with(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.num_qubits(), self.n, "widths must match");
        let mut f = C64::ZERO;
        for i in 0..self.rho.len() {
            for j in 0..self.rho.len() {
                f += psi.amp(i).conj() * self.rho[i][j] * psi.amp(j);
            }
        }
        f.re
    }

    /// Applies a unitary gate `ρ → UρU†`.
    ///
    /// # Panics
    ///
    /// Panics for non-unitary gates.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        if gate.is_two_qubit() {
            let m = two_qubit_matrix(gate);
            // Left multiply on the ket index…
            for col in 0..self.rho.len() {
                let mut column: Vec<C64> = (0..self.rho.len()).map(|r| self.rho[r][col]).collect();
                apply_mat4_vec(&mut column, qubits[0], qubits[1], &m.0, false);
                for (r, v) in column.into_iter().enumerate() {
                    self.rho[r][col] = v;
                }
            }
            // …then U† on the bra index.
            for row in self.rho.iter_mut() {
                apply_mat4_vec(row, qubits[0], qubits[1], &m.0, true);
            }
        } else {
            let m = single_qubit_matrix(gate);
            self.apply_kraus_1q(qubits[0], &[m]);
        }
    }

    /// Applies a single-qubit Kraus channel `ρ → Σ_k K_k ρ K_k†`.
#[allow(clippy::needless_range_loop)]
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[Mat2]) {
        let dim = self.rho.len();
        let bit = 1usize << q;
        let mut out = vec![vec![C64::ZERO; dim]; dim];
        for k in kraus {
            // K ρ K†: transform kets then bras.
            let mut tmp = self.rho.clone();
            for col in 0..dim {
                for r0 in 0..dim {
                    if r0 & bit == 0 {
                        let r1 = r0 | bit;
                        let a0 = tmp[r0][col];
                        let a1 = tmp[r1][col];
                        tmp[r0][col] = k.0[0][0] * a0 + k.0[0][1] * a1;
                        tmp[r1][col] = k.0[1][0] * a0 + k.0[1][1] * a1;
                    }
                }
            }
            for row in &mut tmp {
                for c0 in 0..dim {
                    if c0 & bit == 0 {
                        let c1 = c0 | bit;
                        let a0 = row[c0];
                        let a1 = row[c1];
                        // (ρK†)[·, c] = Σ_k ρ[·, k] · conj(K[c][k]).
                        row[c0] = a0 * k.0[0][0].conj() + a1 * k.0[0][1].conj();
                        row[c1] = a0 * k.0[1][0].conj() + a1 * k.0[1][1].conj();
                    }
                }
            }
            for (o, t) in out.iter_mut().zip(&tmp) {
                for (a, b) in o.iter_mut().zip(t) {
                    *a += *b;
                }
            }
        }
        self.rho = out;
    }

    /// Exact single-qubit depolarizing channel: with probability `p`
    /// apply a uniformly random non-identity Pauli — the density-matrix
    /// form of [`crate::NoiseModel::depolarize_1q`].
    pub fn depolarize_1q(&mut self, q: usize, p: f64) {
        let mut acc = scaled(&self.rho, 1.0 - p);
        for g in [Gate::X, Gate::Y, Gate::Z] {
            let mut branch = self.clone();
            branch.apply_gate(&g, &[q]);
            add_scaled(&mut acc, &branch.rho, p / 3.0);
        }
        self.rho = acc;
    }

    /// Exact two-qubit depolarizing channel (15 non-identity Paulis).
    pub fn depolarize_2q(&mut self, a: usize, b: usize, p: f64) {
        let mut acc = scaled(&self.rho, 1.0 - p);
        let paulis = [None, Some(Gate::X), Some(Gate::Y), Some(Gate::Z)];
        for (i, ga) in paulis.iter().enumerate() {
            for (j, gb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut branch = self.clone();
                if let Some(g) = ga {
                    branch.apply_gate(g, &[a]);
                }
                if let Some(g) = gb {
                    branch.apply_gate(g, &[b]);
                }
                add_scaled(&mut acc, &branch.rho, p / 15.0);
            }
        }
        self.rho = acc;
    }

    /// Exact idle decoherence matching [`crate::NoiseModel::idle`]:
    /// amplitude damping `γ = 1 − e^{−dt/T1}` followed by pure dephasing
    /// with `1/T_φ = 1/T2 − 1/(2 T1)`.
    pub fn idle(&mut self, q: usize, dt_ns: f64, t1_ns: f64, t2_ns: f64) {
        if dt_ns <= 0.0 {
            return;
        }
        let gamma = 1.0 - (-dt_ns / t1_ns).exp();
        if gamma > 0.0 {
            let k0 = Mat2([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
            ]);
            let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
            self.apply_kraus_1q(q, &[k0, k1]);
        }
        let inv_tphi = (1.0 / t2_ns - 0.5 / t1_ns).max(0.0);
        if inv_tphi > 0.0 {
            let p_z = 0.5 * (1.0 - (-dt_ns * inv_tphi).exp());
            let mut flipped = self.clone();
            flipped.apply_gate(&Gate::Z, &[q]);
            let mut acc = scaled(&self.rho, 1.0 - p_z);
            add_scaled(&mut acc, &flipped.rho, p_z);
            self.rho = acc;
        }
    }

    /// Applies per-bit symmetric readout confusion to the classical
    /// distribution (diagonal), returning the observed distribution.
    pub fn readout_distribution(&self, flip: &[f64]) -> Vec<f64> {
        assert_eq!(flip.len(), self.n, "one flip probability per qubit");
        let diag = self.probabilities();
        let dim = diag.len();
        let mut out = vec![0.0; dim];
        for (truth, &p) in diag.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for (obs, o) in out.iter_mut().enumerate() {
                let mut w = p;
                for (q, &f) in flip.iter().enumerate() {
                    let flipped = ((truth >> q) ^ (obs >> q)) & 1 == 1;
                    w *= if flipped { f } else { 1.0 - f };
                }
                *o += w;
            }
        }
        out
    }
}

fn scaled(m: &[Vec<C64>], s: f64) -> Vec<Vec<C64>> {
    m.iter().map(|row| row.iter().map(|c| c.scale(s)).collect()).collect()
}

fn add_scaled(acc: &mut [Vec<C64>], m: &[Vec<C64>], s: f64) {
    for (a, b) in acc.iter_mut().zip(m) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y.scale(s);
        }
    }
}

/// Applies a 4×4 matrix (or its conjugate) to a dense vector over the
/// two target qubits; `conj` selects `U†`-from-the-right semantics.
fn apply_mat4_vec(v: &mut [C64], first: usize, second: usize, m: &[[C64; 4]; 4], conj: bool) {
    let fb = 1usize << first;
    let sb = 1usize << second;
    for b in 0..v.len() {
        if b & fb == 0 && b & sb == 0 {
            let idx = [b, b | fb, b | sb, b | fb | sb];
            let old = [v[idx[0]], v[idx[1]], v[idx[2]], v[idx[3]]];
            for (row, &t) in idx.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (col, &o) in old.iter().enumerate() {
                    acc += if conj {
                        // (ρ U†)[_, row] = Σ_col ρ[_, col] · conj(U[row][col])
                        m[row][col].conj() * o
                    } else {
                        m[row][col] * o
                    };
                }
                v[t] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pure_state_roundtrip() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cx, &[0, 1]);
        let rho = DensityMatrix::from_state(&s);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_with(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut rho = DensityMatrix::new(2);
        let mut s = StateVector::new(2);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cx, vec![0, 1]),
            (Gate::S, vec![0]),
            (Gate::Cz, vec![1, 0]),
        ] {
            rho.apply_gate(&g, &qs);
            s.apply_gate(&g, &qs);
        }
        assert!((rho.fidelity_with(&s) - 1.0).abs() < 1e-9);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_depolarization_yields_maximally_mixed() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(&Gate::H, &[0]);
        // p = 3/4 of the {I,X,Y,Z}/4 channel = full depolarizing.
        rho.depolarize_1q(0, 0.75);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_fixed_point_is_ground_state() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(&Gate::X, &[0]);
        rho.idle(0, 1e9, 100.0, 200.0); // dt >> T1
        let p = rho.probabilities();
        assert!(p[1] < 1e-9, "excited population {}", p[1]);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_matches_density_depolarizing() {
        // Monte-Carlo average over trajectories converges to the exact
        // channel output.
        let p = 0.2;
        let mut exact = DensityMatrix::new(2);
        exact.apply_gate(&Gate::H, &[0]);
        exact.apply_gate(&Gate::Cx, &[0, 1]);
        exact.depolarize_2q(0, 1, p);
        let want = exact.probabilities();

        let mut rng = StdRng::seed_from_u64(1);
        let trials = 60_000;
        let mut got = vec![0.0; 4];
        for _ in 0..trials {
            let mut s = StateVector::new(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            NoiseModel::depolarize_2q(&mut s, 0, 1, p, &mut rng);
            for (i, pr) in s.probabilities().iter().enumerate() {
                got[i] += pr / trials as f64;
            }
        }
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 0.01, "want {w} got {g}");
        }
    }

    #[test]
    fn trajectory_matches_density_idle() {
        let (t1, t2, dt) = (40_000.0, 30_000.0, 25_000.0);
        let mut exact = DensityMatrix::new(1);
        exact.apply_gate(&Gate::H, &[0]);
        exact.idle(0, dt, t1, t2);
        let want_p1 = exact.probabilities()[1];
        // Also check the off-diagonal decay (coherence).
        let want_coh = exact.element(0, 1).norm();

        let mut rng = StdRng::seed_from_u64(2);
        let trials = 60_000;
        let mut got_p1 = 0.0;
        let mut got_re = 0.0;
        let mut got_im = 0.0;
        for _ in 0..trials {
            let mut s = StateVector::new(1);
            s.apply_gate(&Gate::H, &[0]);
            NoiseModel::idle(&mut s, 0, dt, t1, t2, &mut rng);
            got_p1 += s.prob_one(0) / trials as f64;
            let coh = s.amp(0) * s.amp(1).conj();
            got_re += coh.re / trials as f64;
            got_im += coh.im / trials as f64;
        }
        let got_coh = (got_re * got_re + got_im * got_im).sqrt();
        assert!((want_p1 - got_p1).abs() < 0.01, "p1: want {want_p1} got {got_p1}");
        assert!((want_coh - got_coh).abs() < 0.01, "coh: want {want_coh} got {got_coh}");
    }

    #[test]
    fn readout_confusion_matches_tensor_model() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_gate(&Gate::X, &[0]);
        let obs = rho.readout_distribution(&[0.1, 0.05]);
        // Truth is |01⟩ (bit0 = 1): P(observe 01) = 0.9·0.95.
        assert!((obs[0b01] - 0.9 * 0.95).abs() < 1e-12);
        assert!((obs[0b00] - 0.1 * 0.95).abs() < 1e-12);
        assert!((obs[0b11] - 0.9 * 0.05).abs() < 1e-12);
        assert!((obs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_channel_preserves_trace() {
        let gamma: f64 = 0.3;
        let k0 = Mat2([
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
        let mut rho = DensityMatrix::new(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::Cx, &[0, 1]);
        rho.apply_kraus_1q(1, &[k0, k1]);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.trace().im.abs() < 1e-12);
        assert!(rho.purity() < 1.0);
    }
}
