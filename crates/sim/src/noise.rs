//! Trajectory noise channels and error-rate conversions.

use crate::matrix::Mat2;
use crate::{C64, StateVector};
use rand::Rng;
use xtalk_ir::Gate;

/// Converts a reported single-qubit gate error rate `r` (average gate
/// infidelity as measured by RB) into the probability `p` with which the
/// trajectory simulator applies a uniformly random non-identity Pauli.
///
/// For the channel "with probability `p` apply one of {X, Y, Z} uniformly",
/// the depolarizing parameter is `λ = 1 − 4p/3` and the RB-visible error
/// is `r = (d−1)/d · (1−λ) = 2p/3`, so `p = 3r/2`.
pub fn depolarizing_prob_for_error_1q(r: f64) -> f64 {
    (1.5 * r).clamp(0.0, 0.75)
}

/// Converts a reported CNOT error rate `r` into the probability of a
/// uniformly random non-identity two-qubit Pauli.
///
/// Here `λ = 1 − 16p/15` and `r = (d−1)/d · (1−λ) = 4p/5`, so `p = 5r/4`.
pub fn depolarizing_prob_for_error_2q(r: f64) -> f64 {
    (1.25 * r).clamp(0.0, 0.9375)
}

/// The stochastic noise model applied between and after ideal gates.
///
/// All channels are sampled per trajectory, so averaging over trajectories
/// reproduces the corresponding density-matrix channel exactly (for the
/// Pauli channels) or to first order (for the damping split between T1
/// and T2, the standard approximation).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoiseModel;

impl NoiseModel {
    /// Applies single-qubit depolarizing noise of strength `p` to `q`.
    pub fn depolarize_1q<R: Rng + ?Sized>(state: &mut StateVector, q: usize, p: f64, rng: &mut R) {
        if rng.gen_range(0.0..1.0) < p {
            let g = [Gate::X, Gate::Y, Gate::Z][rng.gen_range(0..3)];
            state.apply_gate(&g, &[q]);
        }
    }

    /// Applies two-qubit depolarizing noise of strength `p` to `(a, b)`:
    /// with probability `p`, one of the 15 non-identity Pauli pairs.
    pub fn depolarize_2q<R: Rng + ?Sized>(
        state: &mut StateVector,
        a: usize,
        b: usize,
        p: f64,
        rng: &mut R,
    ) {
        if rng.gen_range(0.0..1.0) < p {
            let k = rng.gen_range(1..16usize);
            let (pa, pb) = (k % 4, k / 4);
            for (which, q) in [(pa, a), (pb, b)] {
                match which {
                    1 => state.apply_gate(&Gate::X, &[q]),
                    2 => state.apply_gate(&Gate::Y, &[q]),
                    3 => state.apply_gate(&Gate::Z, &[q]),
                    _ => {}
                }
            }
        }
    }

    /// Applies idle decoherence to qubit `q` for a gap of `dt_ns`
    /// nanoseconds given `t1_ns`/`t2_ns`: amplitude damping with
    /// `γ = 1 − e^{−dt/T1}` followed by pure dephasing with rate derived
    /// from `1/T_φ = 1/T2 − 1/(2·T1)` (clamped at 0 when T2 is
    /// T1-limited).
    pub fn idle<R: Rng + ?Sized>(
        state: &mut StateVector,
        q: usize,
        dt_ns: f64,
        t1_ns: f64,
        t2_ns: f64,
        rng: &mut R,
    ) {
        if dt_ns <= 0.0 {
            return;
        }
        let gamma = 1.0 - (-dt_ns / t1_ns).exp();
        if gamma > 0.0 {
            let k0 = Mat2([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
            ]);
            let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
            state.apply_kraus_1q(q, &[k0, k1], rng);
        }
        // Pure dephasing beyond what T1 already causes.
        let inv_tphi = (1.0 / t2_ns - 0.5 / t1_ns).max(0.0);
        if inv_tphi > 0.0 {
            let p_z = 0.5 * (1.0 - (-dt_ns * inv_tphi).exp());
            if rng.gen_range(0.0..1.0) < p_z {
                state.apply_gate(&Gate::Z, &[q]);
            }
        }
    }

    /// Flips a classical bit with the given readout assignment error.
    pub fn readout_flip<R: Rng + ?Sized>(bit: bool, error: f64, rng: &mut R) -> bool {
        if rng.gen_range(0.0..1.0) < error {
            !bit
        } else {
            bit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conversion_constants() {
        assert!((depolarizing_prob_for_error_1q(0.001) - 0.0015).abs() < 1e-12);
        assert!((depolarizing_prob_for_error_2q(0.02) - 0.025).abs() < 1e-12);
        // Clamped at full depolarization.
        assert_eq!(depolarizing_prob_for_error_2q(10.0), 0.9375);
        assert_eq!(depolarizing_prob_for_error_1q(10.0), 0.75);
    }

    #[test]
    fn depolarize_1q_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        let trials = 20_000;
        let p = 0.3;
        let mut corrupted = 0;
        for _ in 0..trials {
            let mut s = StateVector::new(1);
            NoiseModel::depolarize_1q(&mut s, 0, p, &mut rng);
            // X or Y move |0⟩ to |1⟩; Z leaves it. Corruption detectable in
            // 2/3 of error draws.
            if s.prob_one(0) > 0.5 {
                corrupted += 1;
            }
        }
        let frac = corrupted as f64 / trials as f64;
        assert!((frac - p * 2.0 / 3.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn depolarize_2q_uniformity() {
        // On |00⟩, the 15 Paulis hit the four basis states in a fixed
        // pattern; just verify total corruption rate ≈ p·(12/15) (the 3
        // pure-Z/Z⊗Z/Z⊗I draws leave |00⟩ fixed).
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let p = 0.5;
        let mut moved = 0;
        for _ in 0..trials {
            let mut s = StateVector::new(2);
            NoiseModel::depolarize_2q(&mut s, 0, 1, p, &mut rng);
            if s.probabilities()[0] < 0.5 {
                moved += 1;
            }
        }
        let frac = moved as f64 / trials as f64;
        assert!((frac - p * 12.0 / 15.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn idle_decay_relaxes_excited_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 4000;
        let t1 = 50_000.0; // 50 µs
        let dt = 50_000.0; // one T1 → survival e^{-1} ≈ 0.368
        let mut survive = 0;
        for _ in 0..trials {
            let mut s = StateVector::new(1);
            s.apply_gate(&Gate::X, &[0]);
            NoiseModel::idle(&mut s, 0, dt, t1, 2.0 * t1, &mut rng);
            if s.prob_one(0) > 0.5 {
                survive += 1;
            }
        }
        let frac = survive as f64 / trials as f64;
        assert!((frac - (-1.0f64).exp()).abs() < 0.03, "survival {frac}");
    }

    #[test]
    fn idle_dephasing_destroys_superposition() {
        // With T2 ≪ T1, a |+⟩ state loses phase coherence: after many
        // trajectories the average X expectation decays.
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 4000;
        let (t1, t2) = (1.0e9, 10_000.0);
        let dt = 10_000.0;
        let mut x_exp = 0.0;
        for _ in 0..trials {
            let mut s = StateVector::new(1);
            s.apply_gate(&Gate::H, &[0]);
            NoiseModel::idle(&mut s, 0, dt, t1, t2, &mut rng);
            s.apply_gate(&Gate::H, &[0]);
            x_exp += 1.0 - 2.0 * s.prob_one(0);
        }
        x_exp /= trials as f64;
        // Expect ≈ e^{-dt/T2} = e^{-1} ≈ 0.368.
        assert!((x_exp - (-1.0f64).exp()).abs() < 0.05, "⟨X⟩ {x_exp}");
    }

    #[test]
    fn zero_gap_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::X, &[0]);
        NoiseModel::idle(&mut s, 0, 0.0, 100.0, 100.0, &mut rng);
        assert!((s.prob_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_flip_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let flips = (0..10_000)
            .filter(|_| NoiseModel::readout_flip(false, 0.05, &mut rng))
            .count();
        let frac = flips as f64 / 10_000.0;
        assert!((frac - 0.05).abs() < 0.01, "frac {frac}");
    }
}
