//! Readout-error mitigation (the paper applies Qiskit Ignis's
//! calibration-matrix method to every measured result, Section 8.4).

use crate::{Counts, Executor, ExecutorConfig};
use xtalk_device::Device;
use xtalk_ir::Circuit;

/// A measured readout calibration matrix over `k` classical bits:
/// `m[observed][prepared]` is the probability of reading `observed` when
/// `prepared` was the true state.
#[derive(Clone, PartialEq, Debug)]
pub struct CalibrationMatrix {
    k: usize,
    m: Vec<Vec<f64>>,
}

impl CalibrationMatrix {
    /// Measures the calibration matrix of `qubits` on `device` by
    /// preparing each of the `2^k` basis states and reading it out —
    /// exactly the Ignis calibration procedure.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() > 10` (the matrix would be huge) or if a
    /// qubit index repeats.
#[allow(clippy::needless_range_loop)]
    pub fn measure(device: &Device, qubits: &[u32], shots: u64, seed: u64) -> Self {
        let k = qubits.len();
        assert!(k <= 10, "calibration over {k} qubits is impractical");
        let n = device.topology().num_qubits();
        let mut m = vec![vec![0.0; 1 << k]; 1 << k];
        for prepared in 0..(1usize << k) {
            let mut c = Circuit::new(n, k);
            for (bit, &q) in qubits.iter().enumerate() {
                if (prepared >> bit) & 1 == 1 {
                    c.x(q);
                }
            }
            for (bit, &q) in qubits.iter().enumerate() {
                c.measure(q, bit as u32);
            }
            let sched = Executor::asap_schedule(&c, device.calibration());
            let cfg = ExecutorConfig { shots, seed: seed ^ prepared as u64, ..Default::default() };
            let counts = Executor::with_config(device, cfg).run(&sched);
            for (outcome, count) in counts.iter() {
                m[outcome as usize][prepared] += count as f64 / shots as f64;
            }
        }
        CalibrationMatrix { k, m }
    }

    /// Builds the ideal tensor-product matrix from per-qubit symmetric
    /// flip probabilities (useful when a measured matrix is overkill).
    pub fn from_flip_probabilities(flips: &[f64]) -> Self {
        let k = flips.len();
        let mut m = vec![vec![0.0; 1 << k]; 1 << k];
        for (obs, row) in m.iter_mut().enumerate() {
            for (prep, cell) in row.iter_mut().enumerate() {
                let mut p = 1.0;
                for (bit, &f) in flips.iter().enumerate() {
                    let flipped = ((obs >> bit) ^ (prep >> bit)) & 1 == 1;
                    p *= if flipped { f } else { 1.0 - f };
                }
                *cell = p;
            }
        }
        CalibrationMatrix { k, m }
    }

    /// Number of classical bits covered.
    pub fn num_bits(&self) -> usize {
        self.k
    }

    /// Matrix entry `P(observed | prepared)`.
    pub fn entry(&self, observed: usize, prepared: usize) -> f64 {
        self.m[observed][prepared]
    }

    /// Applies mitigation: solves `M · x = observed` for the underlying
    /// distribution `x`, clips negatives and renormalizes.
    ///
    /// Degenerate inputs are handled without NaNs: zero-shot counts
    /// mitigate to the uniform distribution, and if clipping wipes out
    /// the solved mass (possible when the observed distribution puts all
    /// weight on outcomes the matrix considers near-impossible) the
    /// observed distribution is returned unchanged rather than a 0/0.
    ///
    /// # Panics
    ///
    /// Panics if the counts' bit width disagrees with the matrix or the
    /// matrix is singular (cannot happen for physical readout errors
    /// < 50 %).
    pub fn mitigate(&self, counts: &Counts) -> Vec<f64> {
        assert_eq!(counts.num_bits(), self.k, "bit width mismatch");
        let n = 1usize << self.k;
        if counts.shots() == 0 {
            // `distribution()` would be 0/0 = NaN in every entry.
            return vec![1.0 / n as f64; n];
        }
        let observed = counts.distribution();
        let x = solve(&self.m, &observed);
        // Clip negatives; a non-finite entry (pathological matrix) is
        // treated as no mass rather than poisoning the normalizer.
        let mut x: Vec<f64> =
            x.into_iter().map(|v| if v.is_finite() { v.max(0.0) } else { 0.0 }).collect();
        let s: f64 = x.iter().sum();
        if s <= 1e-12 {
            return observed;
        }
        for v in &mut x {
            *v /= s;
        }
        x
    }
}

/// Solves the dense linear system `A·x = b` by Gaussian elimination with
/// partial pivoting.
///
/// # Panics
///
/// Panics if the matrix is numerically singular.
#[allow(clippy::needless_range_loop)]
fn solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .expect("nonempty column");
        assert!(m[pivot][col].abs() > 1e-12, "singular calibration matrix");
        m.swap(col, pivot);
        x.swap(col, pivot);
        let d = m[col][col];
        for j in col..n {
            m[col][j] /= d;
        }
        x[col] /= d;
        for i in 0..n {
            if i != col && m[i][col] != 0.0 {
                let f = m[i][col];
                for j in col..n {
                    m[i][j] -= f * m[col][j];
                }
                x[i] -= f * x[col];
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;

    #[test]
    fn tensor_matrix_columns_sum_to_one() {
        let m = CalibrationMatrix::from_flip_probabilities(&[0.05, 0.1]);
        for prep in 0..4 {
            let s: f64 = (0..4).map(|obs| m.entry(obs, prep)).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Diagonal dominates.
        assert!((m.entry(0, 0) - 0.95 * 0.9).abs() < 1e-12);
        assert!((m.entry(3, 0) - 0.05 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn mitigation_recovers_clean_distribution() {
        let m = CalibrationMatrix::from_flip_probabilities(&[0.08, 0.08]);
        // True distribution: Bell-like 50/50 on 00 and 11, corrupted by
        // the known flips.
        let truth = [0.5, 0.0, 0.0, 0.5];
        let mut corrupted = Counts::new(2);
        let shots = 200_000u64;
        for obs in 0..4usize {
            let p: f64 = (0..4).map(|prep| m.entry(obs, prep) * truth[prep]).sum();
            corrupted.record_many(obs as u64, (p * shots as f64).round() as u64);
        }
        let mitigated = m.mitigate(&corrupted);
        for (got, want) in mitigated.iter().zip(truth) {
            assert!((got - want).abs() < 0.01, "got {got} want {want}");
        }
    }

    #[test]
    fn measured_matrix_close_to_readout_errors() {
        let device = Device::line(2, 11);
        let m = CalibrationMatrix::measure(&device, &[0, 1], 4000, 3);
        let e0 = device.calibration().readout_error(0);
        // P(observe 01 | prepared 00) ≈ e0 (flip on bit 0 only).
        let expected = e0 * (1.0 - device.calibration().readout_error(1));
        assert!(
            (m.entry(0b01, 0b00) - expected).abs() < 0.03,
            "entry {} vs {}",
            m.entry(0b01, 0b00),
            expected
        );
    }

    #[test]
    fn end_to_end_mitigation_improves_fidelity() {
        let device = Device::line(2, 5);
        let mut bell = Circuit::new(2, 2);
        bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let sched = Executor::asap_schedule(&bell, device.calibration());
        let cfg = ExecutorConfig { shots: 8192, seed: 9, ..Default::default() };
        let counts = Executor::with_config(&device, cfg).run(&sched);
        let m = CalibrationMatrix::measure(&device, &[0, 1], 8192, 10);
        let raw = counts.distribution();
        let fixed = m.mitigate(&counts);
        let raw_good = raw[0] + raw[3];
        let fixed_good = fixed[0] + fixed[3];
        assert!(
            fixed_good > raw_good,
            "mitigation should increase Bell weight: raw {raw_good} fixed {fixed_good}"
        );
    }

    #[test]
    #[should_panic(expected = "bit width mismatch")]
    fn width_mismatch_rejected() {
        let m = CalibrationMatrix::from_flip_probabilities(&[0.1]);
        m.mitigate(&Counts::new(2));
    }

    #[test]
    fn zero_shot_counts_mitigate_to_uniform() {
        let m = CalibrationMatrix::from_flip_probabilities(&[0.05, 0.05]);
        let mitigated = m.mitigate(&Counts::new(2));
        assert_eq!(mitigated.len(), 4);
        for v in &mitigated {
            assert!(v.is_finite(), "NaN leaked from zero-shot mitigation");
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_probability_outcomes_stay_finite_and_normalized() {
        // All mass on one outcome with strong asymmetric flips: the solved
        // vector has large negative entries on the zero-probability
        // outcomes, which clipping used to be able to zero out entirely.
        let m = CalibrationMatrix::from_flip_probabilities(&[0.45, 0.45]);
        let mut counts = Counts::new(2);
        counts.record_many(0b00, 1000);
        let mitigated = m.mitigate(&counts);
        let sum: f64 = mitigated.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "not normalized: {sum}");
        for v in &mitigated {
            assert!(v.is_finite() && *v >= 0.0, "bad entry {v}");
        }
        // The observed outcome must remain the most likely one (at 45%
        // flips the near-singular inversion legitimately spreads mass,
        // but it must not invert the ranking).
        let max = mitigated.iter().cloned().fold(f64::MIN, f64::max);
        assert!((mitigated[0] - max).abs() < 1e-12, "00 no longer argmax: {mitigated:?}");
    }

    #[test]
    fn one_hot_counts_on_every_outcome_are_safe() {
        // Sweep every single-outcome distribution: none may panic or
        // produce NaN, even with near-pathological flip rates.
        let m = CalibrationMatrix::from_flip_probabilities(&[0.49, 0.49, 0.49]);
        for outcome in 0..8u64 {
            let mut counts = Counts::new(3);
            counts.record_many(outcome, 17);
            let mitigated = m.mitigate(&counts);
            let sum: f64 = mitigated.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "outcome {outcome}: sum {sum}");
            assert!(
                mitigated.iter().all(|v| v.is_finite() && *v >= 0.0),
                "outcome {outcome}: {mitigated:?}"
            );
        }
    }
}
