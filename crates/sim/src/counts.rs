//! Measurement outcome histograms.

use std::collections::HashMap;
use std::fmt;

/// A histogram of measured classical bitstrings, keyed little-endian
/// (clbit `i` is bit `i` of the key).
///
/// ```
/// use xtalk_sim::Counts;
/// let mut c = Counts::new(2);
/// c.record(0b00);
/// c.record(0b11);
/// c.record(0b11);
/// assert_eq!(c.shots(), 3);
/// assert!((c.probability(0b11) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(c.most_frequent(), Some(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counts {
    num_bits: usize,
    map: HashMap<u64, u64>,
    shots: u64,
}

impl Counts {
    /// An empty histogram over `num_bits` classical bits.
    pub fn new(num_bits: usize) -> Self {
        assert!(num_bits <= 64, "at most 64 classical bits");
        Counts { num_bits, map: HashMap::new(), shots: 0 }
    }

    /// Number of classical bits per outcome.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Records one shot.
    ///
    /// # Panics
    ///
    /// Panics if `outcome` uses bits beyond `num_bits`.
    pub fn record(&mut self, outcome: u64) {
        assert!(
            self.num_bits == 64 || outcome < (1u64 << self.num_bits),
            "outcome {outcome:#b} exceeds {} bits",
            self.num_bits
        );
        *self.map.entry(outcome).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Records `n` identical shots.
    pub fn record_many(&mut self, outcome: u64, n: u64) {
        for _ in 0..n.min(1) {
            self.record(outcome);
        }
        if n > 1 {
            *self.map.entry(outcome).or_insert(0) += n - 1;
            self.shots += n - 1;
        }
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Raw count of an outcome.
    pub fn count(&self, outcome: u64) -> u64 {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome (0 if no shots).
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.shots as f64
        }
    }

    /// The full empirical distribution as a dense vector of length
    /// `2^num_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits > 24` (the dense form would be enormous).
    pub fn distribution(&self) -> Vec<f64> {
        assert!(self.num_bits <= 24, "dense distribution too large");
        let mut v = vec![0.0; 1 << self.num_bits];
        if self.shots > 0 {
            for (&b, &c) in &self.map {
                v[b as usize] = c as f64 / self.shots as f64;
            }
        }
        v
    }

    /// The modal outcome, ties broken toward the smaller bitstring.
    pub fn most_frequent(&self) -> Option<u64> {
        self.map
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&b, _)| b)
    }

    /// Fraction of shots equal to `target` — the Hidden Shift success
    /// metric of the paper (error rate = `1 - success_fraction`).
    pub fn success_fraction(&self, target: u64) -> f64 {
        self.probability(target)
    }

    /// Iterates `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&b, &c)| (b, c))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics on bit-width mismatch.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.num_bits, other.num_bits, "bit widths must match");
        for (b, c) in other.iter() {
            *self.map.entry(b).or_insert(0) += c;
            self.shots += c;
        }
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(u64, u64)> = self.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        write!(f, "counts<{} shots>{{", self.shots)?;
        for (i, (b, c)) in entries.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b:0width$b}: {c}", width = self.num_bits)?;
        }
        if entries.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101);
        c.record(0b101);
        c.record(0b010);
        assert_eq!(c.count(0b101), 2);
        assert_eq!(c.shots(), 3);
        assert_eq!(c.most_frequent(), Some(0b101));
        assert!((c.success_fraction(0b010) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_many_matches_loop() {
        let mut a = Counts::new(2);
        a.record_many(0b01, 5);
        let mut b = Counts::new(2);
        for _ in 0..5 {
            b.record(0b01);
        }
        assert_eq!(a, b);
        a.record_many(0b10, 0);
        assert_eq!(a.shots(), 5);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut c = Counts::new(2);
        c.record(0);
        c.record(1);
        c.record(1);
        c.record(3);
        let d = c.distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d[1], 0.5);
    }

    #[test]
    fn empty_counts() {
        let c = Counts::new(2);
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.most_frequent(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::new(1);
        a.record(0);
        let mut b = Counts::new(1);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.shots(), 3);
        assert_eq!(a.count(1), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_outcome() {
        Counts::new(2).record(0b100);
    }

    #[test]
    fn display_shows_top_outcomes() {
        let mut c = Counts::new(2);
        c.record(0b11);
        c.record(0b11);
        c.record(0b00);
        let s = c.to_string();
        assert!(s.contains("11: 2"));
    }
}
