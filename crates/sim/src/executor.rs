//! Noisy execution of scheduled circuits against a device model.

use crate::noise::{
    depolarizing_prob_for_error_1q, depolarizing_prob_for_error_2q, NoiseModel,
};
use crate::{Counts, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use xtalk_budget::Budget;
use xtalk_device::{Calibration, Device, Edge};
use xtalk_ir::{Circuit, Gate, ScheduleSlot, ScheduledCircuit};

/// Shots per batch in [`Executor::run_budgeted`]. Fixed (independent of
/// the thread count) so the set of completed shots under an exhausted
/// budget is always a prefix `0..shots_completed` whose counts are
/// bit-identical to a fresh run of exactly that many shots at any thread
/// count.
pub const BUDGET_BATCH_SHOTS: u64 = 64;

/// Best-effort result of a budgeted run ([`Executor::run_budgeted`]).
#[derive(Clone, PartialEq, Debug)]
pub struct RunOutcome {
    /// Counts over the completed prefix of shots.
    pub counts: Counts,
    /// Exact number of trajectories sampled: shots `0..shots_completed`.
    pub shots_completed: u64,
    /// The configured shot target.
    pub shots_requested: u64,
    /// `true` iff every requested shot completed.
    pub complete: bool,
}

/// Knobs for the noisy executor; individual noise sources can be switched
/// off for ablation experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Trajectories to sample.
    pub shots: u64,
    /// Base RNG seed; every `(shot, component)` derives its own stream.
    pub seed: u64,
    /// Apply per-gate depolarizing noise.
    pub gate_noise: bool,
    /// Apply crosstalk amplification to overlapping two-qubit gates.
    pub crosstalk: bool,
    /// Apply T1/T2 idle decay.
    pub decoherence: bool,
    /// Apply readout assignment errors.
    pub readout_noise: bool,
    /// Combine multiple simultaneous aggressors by *adding* their excess
    /// error instead of taking the worst one (the paper's Eq. 6 takes the
    /// max, noting triplet effects were not significant; this switch
    /// exists to test that choice).
    pub compound_crosstalk: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            shots: 1024,
            seed: 0,
            gate_noise: true,
            crosstalk: true,
            decoherence: true,
            readout_noise: true,
            compound_crosstalk: false,
        }
    }
}

/// Runs [`ScheduledCircuit`]s against a [`Device`]'s ground-truth noise.
///
/// This is the stand-in for submitting a job to an IBMQ backend: the
/// executor (and only the executor) reads the device's hidden
/// [`xtalk_device::CrosstalkMap`].
///
/// ```
/// use xtalk_device::Device;
/// use xtalk_ir::Circuit;
/// use xtalk_sim::{Executor, ExecutorConfig};
///
/// let device = Device::line(2, 1);
/// let mut bell = Circuit::new(2, 2);
/// bell.h(0).cx(0, 1).measure_all();
/// let sched = Executor::asap_schedule(&bell, device.calibration());
/// let counts = Executor::new(&device).run(&sched);
/// assert_eq!(counts.shots(), 1024);
/// // Mostly 00/11 despite noise.
/// assert!(counts.probability(0b00) + counts.probability(0b11) > 0.8);
/// ```
#[derive(Debug)]
pub struct Executor<'a> {
    device: &'a Device,
    config: ExecutorConfig,
}

impl<'a> Executor<'a> {
    /// An executor with default configuration.
    pub fn new(device: &'a Device) -> Self {
        Executor { device, config: ExecutorConfig::default() }
    }

    /// An executor with explicit configuration.
    pub fn with_config(device: &'a Device, config: ExecutorConfig) -> Self {
        Executor { device, config }
    }

    /// The active configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// ASAP-schedules a circuit using the calibration's duration model —
    /// the "hardware default" timing used when no scheduler pass ran.
    pub fn asap_schedule(circuit: &Circuit, cal: &Calibration) -> ScheduledCircuit {
        let mut ready = vec![0u64; circuit.num_qubits()];
        let mut slots = Vec::with_capacity(circuit.len());
        for instr in circuit.iter() {
            let start =
                instr.qubits().iter().map(|q| ready[q.index()]).max().unwrap_or(0);
            let dur = cal.duration_of(instr.gate(), instr.qubits());
            for q in instr.qubits() {
                ready[q.index()] = start + dur;
            }
            slots.push(ScheduleSlot::new(start, dur));
        }
        ScheduledCircuit::new(circuit.clone(), slots).expect("slot count matches by construction")
    }

    /// Executes the schedule, returning measured counts over the circuit's
    /// classical register.
    ///
    /// Equivalent to [`Executor::run_parallel`] with one thread: every
    /// trajectory derives its own RNG stream from `(seed, shot)`, so the
    /// counts are identical however the shots are later split over
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid ([`ScheduledCircuit::validate`])
    /// or if a component exceeds the statevector limit.
    pub fn run(&self, sched: &ScheduledCircuit) -> Counts {
        self.run_parallel(sched, 1)
    }

    /// Executes the schedule with the Monte-Carlo trials split across
    /// `threads` OS threads (`0` = all available parallelism).
    ///
    /// Each shot seeds its own RNG from `(config.seed, shot)`, which makes
    /// the result **bit-identical** for a fixed seed regardless of thread
    /// count — `run_parallel(s, 8)` returns exactly `run(s)`'s counts.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid ([`ScheduledCircuit::validate`]),
    /// if a component exceeds the statevector limit, or if a worker thread
    /// panics.
    pub fn run_parallel(&self, sched: &ScheduledCircuit, threads: usize) -> Counts {
        let _span = xtalk_obs::span("sim.run_parallel");
        sched.validate().expect("executor requires a valid schedule");
        let prep = self.prepare(sched);
        let shots = self.config.shots;
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(shots.max(1) as usize)
        .max(1);

        if threads == 1 {
            return self.run_shot_batch(sched, &prep, 0, shots, 0);
        }

        let chunk = shots.div_ceil(threads as u64);
        std::thread::scope(|scope| {
            let prep = &prep;
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(shots);
                    scope.spawn(move || self.run_shot_batch(sched, prep, lo, hi, t as usize))
                })
                .collect();
            let mut counts = Counts::new(sched.circuit().num_clbits().max(1));
            for handle in handles {
                counts.merge(&handle.join().expect("trajectory worker panicked"));
            }
            counts
        })
    }

    /// Executes the schedule under a cooperative [`Budget`], checked only
    /// at shot-batch boundaries.
    ///
    /// Shots are split into fixed-size batches of [`BUDGET_BATCH_SHOTS`]
    /// claimed from a shared atomic counter in index order; a worker polls
    /// the budget *before* claiming and always finishes a batch it
    /// claimed. Completed batches therefore form a prefix `0..n`, so the
    /// returned [`RunOutcome`] reports an exact `shots_completed` and its
    /// counts are **bit-identical** to a fresh run of exactly that many
    /// shots at any thread count (each shot still derives its own RNG
    /// stream from `(config.seed, shot)`). Budget-expiry latency is at
    /// most one batch per worker.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid ([`ScheduledCircuit::validate`]),
    /// if a component exceeds the statevector limit, or if a worker thread
    /// panics.
    pub fn run_budgeted(
        &self,
        sched: &ScheduledCircuit,
        threads: usize,
        budget: &Budget,
    ) -> RunOutcome {
        let _span = xtalk_obs::span("sim.run_budgeted");
        sched.validate().expect("executor requires a valid schedule");
        let prep = self.prepare(sched);
        let shots = self.config.shots;
        let num_batches = shots.div_ceil(BUDGET_BATCH_SHOTS);
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(num_batches.max(1) as usize)
        .max(1);

        let next = AtomicU64::new(0);
        let run_worker = |thread_idx: usize| -> Counts {
            let mut counts = Counts::new(sched.circuit().num_clbits().max(1));
            loop {
                // Poll *before* claiming: a claimed batch always runs to
                // completion, keeping the completed set a prefix.
                if budget.exhausted().is_some() {
                    break;
                }
                let batch = next.fetch_add(1, Ordering::Relaxed);
                if batch >= num_batches {
                    break;
                }
                let lo = batch * BUDGET_BATCH_SHOTS;
                let hi = (lo + BUDGET_BATCH_SHOTS).min(shots);
                counts.merge(&self.run_shot_batch(sched, &prep, lo, hi, thread_idx));
                budget.charge(1);
            }
            counts
        };

        let counts = if threads == 1 {
            run_worker(0)
        } else {
            std::thread::scope(|scope| {
                let run_worker = &run_worker;
                let handles: Vec<_> =
                    (0..threads).map(|t| scope.spawn(move || run_worker(t))).collect();
                let mut counts = Counts::new(sched.circuit().num_clbits().max(1));
                for handle in handles {
                    counts.merge(&handle.join().expect("trajectory worker panicked"));
                }
                counts
            })
        };

        // Every batch index below the final counter value was claimed and
        // completed (overshoot past `num_batches` claims nothing).
        let claimed = next.load(Ordering::Relaxed).min(num_batches);
        let shots_completed = (claimed * BUDGET_BATCH_SHOTS).min(shots);
        debug_assert_eq!(counts.shots(), shots_completed);
        RunOutcome {
            counts,
            shots_completed,
            shots_requested: shots,
            complete: shots_completed == shots,
        }
    }

    /// [`Executor::run_shot_range`] plus per-batch observability: batch
    /// wall time and per-thread shot counts. Metrics never feed back into
    /// the trajectory RNG streams, so parallel results stay bit-identical
    /// whether profiling is on or off.
    fn run_shot_batch(
        &self,
        sched: &ScheduledCircuit,
        prep: &Prepared,
        lo: u64,
        hi: u64,
        thread_idx: usize,
    ) -> Counts {
        // `sim.batch` injection point: an injected error panics the batch
        // (propagating to the caller as a worker/job panic, exercising the
        // serve stack's quarantine path); a delay only stalls wall time.
        // Neither touches the per-shot RNG streams, so counts from
        // surviving runs stay bit-identical.
        if let Some(msg) = xtalk_fault::fire("sim.batch") {
            panic!("injected sim.batch fault: {msg}");
        }
        let _batch = xtalk_obs::span("sim.shot_batch");
        let counts = self.run_shot_range(sched, prep, lo, hi);
        if xtalk_obs::enabled() {
            xtalk_obs::counter_add("sim.shots", hi - lo);
            xtalk_obs::counter_add(&format!("sim.thread{thread_idx}.shots"), hi - lo);
        }
        counts
    }

    /// Precomputed schedule analysis shared by every trajectory.
    fn prepare(&self, sched: &ScheduledCircuit) -> Prepared {
        let circuit = sched.circuit();

        // Effective (crosstalk-conditioned) error factor per 2q gate: the
        // paper's Eq. 6 takes the max conditional error over overlapping
        // gates; with `compound_crosstalk` the excesses add instead.
        let mut factor = vec![1.0f64; circuit.len()];
        if self.config.crosstalk {
            for (i, j) in sched.overlapping_two_qubit_pairs() {
                let ei = edge_of(circuit, i);
                let ej = edge_of(circuit, j);
                let fi = self.device.crosstalk().factor(ei, ej);
                let fj = self.device.crosstalk().factor(ej, ei);
                if self.config.compound_crosstalk {
                    factor[i] += fi - 1.0;
                    factor[j] += fj - 1.0;
                } else {
                    factor[i] = factor[i].max(fi);
                    factor[j] = factor[j].max(fj);
                }
            }
        }

        let comps = components(circuit);

        // Per-component instruction lists in time order.
        let comp_instrs: Vec<Vec<usize>> = comps
            .iter()
            .map(|qubits| {
                let mut idx: Vec<usize> = (0..circuit.len())
                    .filter(|&i| {
                        let instr = &circuit.instructions()[i];
                        !instr.gate().is_barrier()
                            && instr.qubits().iter().any(|q| qubits.contains(&q.index()))
                    })
                    .collect();
                idx.sort_by_key(|&i| (sched.slot(i).start, i));
                idx
            })
            .collect();

        Prepared { factor, comps, comp_instrs }
    }

    /// Runs shots `lo..hi`, each on its own derived RNG stream.
    fn run_shot_range(
        &self,
        sched: &ScheduledCircuit,
        prep: &Prepared,
        lo: u64,
        hi: u64,
    ) -> Counts {
        let mut counts = Counts::new(sched.circuit().num_clbits().max(1));
        for shot in lo..hi {
            let mut rng = StdRng::seed_from_u64(shot_stream_seed(self.config.seed, shot));
            let mut outcome: u64 = 0;
            for (qubits, instrs) in prep.comps.iter().zip(&prep.comp_instrs) {
                outcome |= self.run_trajectory(sched, qubits, instrs, &prep.factor, &mut rng);
            }
            counts.record(outcome);
        }
        counts
    }

    /// One trajectory over one connected component; returns measured bits
    /// positioned at their clbit indices.
    fn run_trajectory(
        &self,
        sched: &ScheduledCircuit,
        comp_qubits: &[usize],
        instrs: &[usize],
        factor: &[f64],
        rng: &mut StdRng,
    ) -> u64 {
        let circuit = sched.circuit();
        let cal = self.device.calibration();
        let local: std::collections::HashMap<usize, usize> =
            comp_qubits.iter().enumerate().map(|(l, &p)| (p, l)).collect();
        let mut state = StateVector::new(comp_qubits.len());
        // Idle clocks start at each qubit's first operation (IBM
        // convention: decoherence starts at the first gate).
        let mut busy_until: Vec<u64> = comp_qubits
            .iter()
            .map(|&p| {
                sched
                    .qubit_first_start(xtalk_ir::Qubit::from(p))
                    .unwrap_or(0)
            })
            .collect();
        let mut bits: u64 = 0;

        for &i in instrs {
            let instr = &circuit.instructions()[i];
            let slot = sched.slot(i);
            let qs: Vec<usize> = instr.qubits().iter().map(|q| local[&q.index()]).collect();

            if self.config.decoherence {
                for (&lq, q) in qs.iter().zip(instr.qubits()) {
                    let gap = slot.start.saturating_sub(busy_until[lq]);
                    if gap > 0 {
                        NoiseModel::idle(
                            &mut state,
                            lq,
                            gap as f64,
                            cal.t1_us(q.raw()) * 1000.0,
                            cal.t2_us(q.raw()) * 1000.0,
                            rng,
                        );
                    }
                }
            }
            for &lq in &qs {
                busy_until[lq] = slot.finish();
            }

            match instr.gate() {
                Gate::Measure => {
                    let mut bit = state.measure_qubit(qs[0], rng);
                    if self.config.readout_noise {
                        bit = NoiseModel::readout_flip(
                            bit,
                            cal.readout_error(instr.qubits()[0].raw()),
                            rng,
                        );
                    }
                    if let Some(c) = instr.clbit() {
                        if bit {
                            bits |= 1u64 << c.index();
                        }
                    }
                }
                Gate::Barrier => {}
                g if g.is_two_qubit() => {
                    state.apply_gate(g, &qs);
                    if self.config.gate_noise {
                        let e = edge_of(circuit, i);
                        let base = match g {
                            Gate::Swap => {
                                let p1 = cal.cx_error(e);
                                1.0 - (1.0 - p1).powi(3)
                            }
                            _ => cal.cx_error(e),
                        };
                        let eff = (base * factor[i]).min(1.0);
                        let p = depolarizing_prob_for_error_2q(eff);
                        NoiseModel::depolarize_2q(&mut state, qs[0], qs[1], p, rng);
                    }
                }
                g => {
                    state.apply_gate(g, &qs);
                    if self.config.gate_noise && !g.is_virtual() {
                        let p =
                            depolarizing_prob_for_error_1q(cal.sq_error(instr.qubits()[0].raw()));
                        NoiseModel::depolarize_1q(&mut state, qs[0], p, rng);
                    }
                }
            }
        }
        bits
    }
}

/// Schedule analysis computed once and shared (read-only) by all shots.
struct Prepared {
    factor: Vec<f64>,
    comps: Vec<Vec<usize>>,
    comp_instrs: Vec<Vec<usize>>,
}

/// Derives shot `shot`'s RNG seed from the base seed (SplitMix64-style
/// finalizer). Independent of thread layout, so sequential and parallel
/// execution sample identical trajectories.
fn shot_stream_seed(base: u64, shot: u64) -> u64 {
    let mut z = base ^ shot.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x2545_f491_4f6c_dd1d);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn edge_of(circuit: &Circuit, i: usize) -> Edge {
    circuit.instructions()[i]
        .edge()
        .map(Edge::from)
        .expect("two-qubit instruction has an edge")
}

/// Connected components of the circuit's interaction graph: qubits joined
/// by any multi-qubit *unitary* (barriers and measurements do not
/// entangle). Only active qubits appear.
#[allow(clippy::needless_range_loop)]
fn components(circuit: &Circuit) -> Vec<Vec<usize>> {
    let n = circuit.num_qubits();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut active = vec![false; n];
    for instr in circuit.iter() {
        if instr.gate().is_barrier() {
            continue;
        }
        for q in instr.qubits() {
            active[q.index()] = true;
        }
        if instr.gate().is_two_qubit() {
            let a = find(&mut parent, instr.qubits()[0].index());
            let b = find(&mut parent, instr.qubits()[1].index());
            parent[a] = b;
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for q in 0..n {
        if active[q] {
            let root = find(&mut parent, q);
            groups.entry(root).or_default().push(q);
        }
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::{CrosstalkMap, Device};

    fn noiseless() -> ExecutorConfig {
        ExecutorConfig {
            shots: 256,
            seed: 7,
            gate_noise: false,
            crosstalk: false,
            decoherence: false,
            readout_noise: false,
            compound_crosstalk: false,
        }
    }

    #[test]
    fn noiseless_bell_is_perfectly_correlated() {
        let device = Device::line(2, 0);
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        let counts = Executor::with_config(&device, noiseless()).run(&sched);
        for (b, _) in counts.iter() {
            assert!(b == 0b00 || b == 0b11, "uncorrelated outcome {b:#b}");
        }
    }

    #[test]
    fn asap_schedule_is_valid_and_compact() {
        let device = Device::line(3, 0);
        let mut c = Circuit::new(3, 0);
        c.h(0).cx(0, 1).cx(1, 2);
        let sched = Executor::asap_schedule(&c, device.calibration());
        sched.validate().unwrap();
        assert_eq!(sched.slot(0).start, 0);
        assert_eq!(sched.slot(1).start, sched.slot(0).finish());
    }

    #[test]
    fn readout_noise_flips_bits() {
        let device = Device::line(1, 0);
        let mut c = Circuit::new(1, 1);
        c.measure(0, 0);
        let sched = Executor::asap_schedule(&c, device.calibration());
        let mut cfg = noiseless();
        cfg.readout_noise = true;
        cfg.shots = 4096;
        let counts = Executor::with_config(&device, cfg).run(&sched);
        let p1 = counts.probability(1);
        let expected = device.calibration().readout_error(0);
        assert!((p1 - expected).abs() < 0.02, "flip rate {p1} vs {expected}");
    }

    #[test]
    fn gate_noise_degrades_ghz() {
        let device = Device::line(3, 1);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        let mut cfg = noiseless();
        cfg.gate_noise = true;
        cfg.shots = 2048;
        let counts = Executor::with_config(&device, cfg).run(&sched);
        let good = counts.probability(0b000) + counts.probability(0b111);
        assert!(good < 1.0);
        assert!(good > 0.8, "too much noise: {good}");
    }

    #[test]
    fn crosstalk_amplifies_error_when_overlapping() {
        // Two CNOT pairs on a 4-qubit line with a planted 10x factor.
        let mut device = Device::line(4, 2);
        let mut xt = CrosstalkMap::new();
        xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), 10.0, 10.0);
        device = device.with_crosstalk(xt);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.03);
        cal.set_cx_error(Edge::new(2, 3), 0.03);
        let device = device.with_calibration(cal);

        let mut c = Circuit::new(4, 4);
        for _ in 0..6 {
            c.cx(0, 1).cx(2, 3);
        }
        c.measure_all();

        let run = |parallel: bool| {
            let sched = if parallel {
                Executor::asap_schedule(&c, device.calibration())
            } else {
                // Serialize by spacing starts.
                let mut t = 0;
                let mut slots = Vec::new();
                for instr in c.iter() {
                    let d = device.calibration().duration_of(instr.gate(), instr.qubits());
                    slots.push(ScheduleSlot::new(t, d));
                    t += d;
                }
                ScheduledCircuit::new(c.clone(), slots).unwrap()
            };
            let mut cfg = noiseless();
            cfg.gate_noise = true;
            cfg.crosstalk = true;
            cfg.shots = 4096;
            let counts = Executor::with_config(&device, cfg).run(&sched);
            counts.probability(0)
        };

        let p_parallel = run(true);
        let p_serial = run(false);
        assert!(
            p_serial > p_parallel + 0.1,
            "serialization should help: serial {p_serial} parallel {p_parallel}"
        );
    }

    #[test]
    fn decoherence_hurts_idle_qubits() {
        let mut device = Device::line(1, 3);
        let mut cal = device.calibration().clone();
        cal.set_coherence_us(0, 5.0, 5.0);
        device = device.with_calibration(cal);
        let mut c = Circuit::new(1, 1);
        c.x(0).measure(0, 0);
        // Insert a huge idle gap between X and measurement.
        let d_x = device.calibration().duration_of(&Gate::X, &[xtalk_ir::Qubit::new(0)]);
        let slots = vec![
            ScheduleSlot::new(0, d_x),
            ScheduleSlot::new(10_000, 1000), // 10 µs idle ≈ 2 T1
        ];
        let sched = ScheduledCircuit::new(c, slots).unwrap();
        let mut cfg = noiseless();
        cfg.decoherence = true;
        cfg.shots = 2048;
        let counts = Executor::with_config(&device, cfg).run(&sched);
        let p1 = counts.probability(1);
        assert!(p1 < 0.30, "excited population should decay, got {p1}");
    }

    #[test]
    fn run_parallel_is_bit_identical_to_run() {
        let device = Device::line(3, 1);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        // 1000 shots: deliberately not a multiple of the thread count.
        let cfg = ExecutorConfig { shots: 1000, seed: 99, ..Default::default() };
        let exec = Executor::with_config(&device, cfg);
        let serial = exec.run(&sched);
        for threads in [2, 3, 4, 7] {
            assert_eq!(
                serial,
                exec.run_parallel(&sched, threads),
                "thread count {threads} changed the counts"
            );
        }
        // `0` = auto must also match.
        assert_eq!(serial, exec.run_parallel(&sched, 0));
    }

    #[test]
    fn run_parallel_handles_more_threads_than_shots() {
        let device = Device::line(2, 0);
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        let mut cfg = noiseless();
        cfg.shots = 3;
        let exec = Executor::with_config(&device, cfg);
        let counts = exec.run_parallel(&sched, 64);
        assert_eq!(counts.shots(), 3);
        assert_eq!(counts, exec.run(&sched));
    }

    #[test]
    fn run_budgeted_unlimited_matches_run() {
        let device = Device::line(3, 1);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        // Not a multiple of the batch size.
        let cfg = ExecutorConfig { shots: 1000, seed: 99, ..Default::default() };
        let exec = Executor::with_config(&device, cfg);
        let serial = exec.run(&sched);
        for threads in [1usize, 2, 4, 7] {
            let out = exec.run_budgeted(&sched, threads, &Budget::unlimited());
            assert!(out.complete);
            assert_eq!(out.shots_completed, 1000);
            assert_eq!(out.shots_requested, 1000);
            assert_eq!(out.counts, serial, "thread count {threads} changed the counts");
        }
    }

    #[test]
    fn run_budgeted_cancelled_returns_empty_partial() {
        let device = Device::line(2, 0);
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        let exec = Executor::with_config(&device, noiseless());
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let out = exec.run_budgeted(&sched, 4, &budget);
        assert!(!out.complete);
        assert_eq!(out.shots_completed, 0);
        assert_eq!(out.counts.shots(), 0);
    }

    #[test]
    fn partial_counts_match_fresh_run_of_prefix_at_any_thread_count() {
        // The acceptance contract: whatever `shots_completed` a truncated
        // run reports, its counts equal a fresh full run configured with
        // exactly that many shots, at any thread count.
        let device = Device::line(3, 1);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = Executor::asap_schedule(&c, device.calibration());
        let cfg = ExecutorConfig { shots: 1000, seed: 5, ..Default::default() };
        let exec = Executor::with_config(&device, cfg);
        // A quota budget truncates mid-run; racing threads make the exact
        // stop point nondeterministic, which is precisely the point.
        let out =
            exec.run_budgeted(&sched, 4, &Budget::unlimited().with_quota(7));
        assert!(!out.complete);
        assert!(out.shots_completed > 0 && out.shots_completed < 1000);
        assert_eq!(out.shots_completed % BUDGET_BATCH_SHOTS, 0);
        let fresh_cfg = ExecutorConfig { shots: out.shots_completed, ..cfg };
        let fresh = Executor::with_config(&device, fresh_cfg);
        for threads in [1usize, 3, 8] {
            assert_eq!(
                fresh.run_parallel(&sched, threads),
                out.counts,
                "partial counts diverge from a fresh {}-shot run at {threads} threads",
                out.shots_completed
            );
        }
    }

    #[test]
    fn shot_seeds_are_distinct_streams() {
        // Adjacent shots and adjacent base seeds must not collide.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for shot in 0..64u64 {
                assert!(seen.insert(shot_stream_seed(base, shot)));
            }
        }
    }

    #[test]
    fn disjoint_components_execute_independently() {
        let device = Device::line(4, 0);
        let mut c = Circuit::new(4, 4);
        c.x(0).cx(2, 3).measure_all();
        let comps = components(&c);
        // Qubit 1 is active (it is measured) but entangled with nothing.
        assert_eq!(comps, vec![vec![0], vec![1], vec![2, 3]]);
        let sched = Executor::asap_schedule(&c, device.calibration());
        let counts = Executor::with_config(&device, noiseless()).run(&sched);
        // Qubit 0 always 1; qubits 2,3 always 0; qubit 1 unmeasured→0.
        assert_eq!(counts.probability(0b0001), 1.0);
    }
}
