//! Statevector representation and gate application.

use crate::matrix::{single_qubit_matrix, two_qubit_matrix, Mat2, Mat4};
use crate::C64;
use rand::Rng;
use xtalk_ir::Gate;

/// An `n`-qubit pure state, little-endian: basis index `b` assigns qubit
/// `q` the bit `(b >> q) & 1`.
///
/// ```
/// use xtalk_sim::StateVector;
/// use xtalk_ir::Gate;
/// let mut s = StateVector::new(2);
/// s.apply_gate(&Gate::H, &[0]);
/// s.apply_gate(&Gate::Cx, &[0, 1]);
/// // Bell state: P(00) = P(11) = 1/2.
/// let p = s.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 26` (the executor should have split components).
    pub fn new(n: usize) -> Self {
        assert!(n <= 26, "statevector over {n} qubits would need {} GiB", (1u64 << n) >> 26);
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Builds from explicit amplitudes (must have power-of-two length).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is not ≈ 1.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "length must be a power of two");
        let n = amps.len().trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state norm {norm} != 1");
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitude of basis state `b`.
    pub fn amp(&self, b: usize) -> C64 {
        self.amps[b]
    }

    /// All `2^n` basis probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(b, _)| b & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// ⟨self|other⟩.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "state widths must match");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    pub fn apply_mat2(&mut self, q: usize, m: &Mat2) {
        let bit = 1usize << q;
        for b in 0..self.amps.len() {
            if b & bit == 0 {
                let b1 = b | bit;
                let a0 = self.amps[b];
                let a1 = self.amps[b1];
                self.amps[b] = m.0[0][0] * a0 + m.0[0][1] * a1;
                self.amps[b1] = m.0[1][0] * a0 + m.0[1][1] * a1;
            }
        }
    }

    /// Applies a two-qubit unitary; `first` indexes the LSB of the matrix
    /// basis (see [`crate::Mat4`]).
    ///
    /// # Panics
    ///
    /// Panics if `first == second`.
    pub fn apply_mat4(&mut self, first: usize, second: usize, m: &Mat4) {
        assert_ne!(first, second, "two-qubit gate needs distinct qubits");
        let fb = 1usize << first;
        let sb = 1usize << second;
        for b in 0..self.amps.len() {
            if b & fb == 0 && b & sb == 0 {
                let idx = [b, b | fb, b | sb, b | fb | sb];
                let old = [self.amps[idx[0]], self.amps[idx[1]], self.amps[idx[2]], self.amps[idx[3]]];
                for (row, &target) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, &o) in old.iter().enumerate() {
                        acc += m.0[row][col] * o;
                    }
                    self.amps[target] = acc;
                }
            }
        }
    }

    /// Applies a unitary gate by name.
    ///
    /// # Panics
    ///
    /// Panics for non-unitary gates or arity mismatches.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        if gate.is_two_qubit() {
            self.apply_mat4(qubits[0], qubits[1], &two_qubit_matrix(gate));
        } else {
            self.apply_mat2(qubits[0], &single_qubit_matrix(gate));
        }
    }

    /// Applies a single-qubit Kraus channel by trajectory sampling: picks
    /// branch `k` with probability `‖K_k ψ‖²` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not trace-preserving within 1e-6.
    pub fn apply_kraus_1q<R: Rng + ?Sized>(&mut self, q: usize, kraus: &[Mat2], rng: &mut R) {
        let mut probs = Vec::with_capacity(kraus.len());
        let mut branches = Vec::with_capacity(kraus.len());
        for k in kraus {
            let mut branch = self.clone();
            branch.apply_mat2(q, k);
            let p: f64 = branch.amps.iter().map(|a| a.norm_sqr()).sum();
            probs.push(p);
            branches.push(branch);
        }
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "kraus set not trace preserving: {total}");
        let mut u: f64 = rng.gen_range(0.0..total);
        let mut chosen = None;
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                chosen = Some(i);
                break;
            }
            u -= p;
        }
        // Floating-point corner: fall back to the most likely branch.
        let i = chosen.unwrap_or_else(|| {
            probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("kraus set is nonempty")
        });
        let mut branch = branches.swap_remove(i);
        let scale = 1.0 / probs[i].sqrt();
        for a in &mut branch.amps {
            *a = a.scale(scale);
        }
        *self = branch;
    }

    /// Samples one measurement of all qubits in the Z basis, returning the
    /// basis index (little-endian bits). Does not collapse the state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        for (b, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if u < p {
                return b as u64;
            }
            u -= p;
        }
        (self.amps.len() - 1) as u64
    }

    /// Measures qubit `q` in the Z basis, collapsing the state and
    /// returning the outcome.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_range(0.0..1.0) < p1;
        let bit = 1usize << q;
        let keep = if outcome { bit } else { 0 };
        let norm = if outcome { p1 } else { 1.0 - p1 };
        let scale = 1.0 / norm.max(f64::MIN_POSITIVE).sqrt();
        for (b, a) in self.amps.iter_mut().enumerate() {
            if b & bit == keep {
                *a = a.scale(scale);
            } else {
                *a = C64::ZERO;
            }
        }
        outcome
    }

    /// Renormalizes (useful after numerical drift in long trajectories).
    pub fn normalize(&mut self) {
        let norm: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum();
        let s = 1.0 / norm.sqrt();
        for a in &mut self.amps {
            *a = a.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state() {
        let s = StateVector::new(3);
        assert_eq!(s.amp(0), C64::ONE);
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::X, &[1]);
        assert!((s.probabilities()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cx, &[0, 1]);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
    }

    #[test]
    fn cx_direction_matters() {
        // Control=1 flips target; control in |0⟩ does nothing.
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::X, &[1]); // set qubit 1 (will be control)
        s.apply_gate(&Gate::Cx, &[1, 0]);
        // Now both qubits are 1.
        assert!((s.probabilities()[3] - 1.0).abs() < 1e-12);
        let mut t = StateVector::new(2);
        t.apply_gate(&Gate::X, &[1]);
        t.apply_gate(&Gate::Cx, &[0, 1]); // control = qubit 0 = |0⟩
        assert!((t.probabilities()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges() {
        let mut s = StateVector::new(2);
        s.apply_gate(&Gate::X, &[0]);
        s.apply_gate(&Gate::Swap, &[0, 1]);
        assert!((s.prob_one(1) - 1.0).abs() < 1e-12);
        assert!(s.prob_one(0) < 1e-12);
    }

    #[test]
    fn fidelity_and_inner() {
        let a = StateVector::new(1);
        let mut b = StateVector::new(1);
        b.apply_gate(&Gate::H, &[0]);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!((a.fidelity(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::H, &[0]);
        let mut rng = StdRng::seed_from_u64(0);
        let ones: usize = (0..4000).map(|_| s.sample(&mut rng) as usize).sum();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn amplitude_damping_kraus_drives_to_zero() {
        // γ = 1: |1⟩ decays to |0⟩ deterministically.
        let gamma: f64 = 1.0;
        let k0 = Mat2([
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
        let mut s = StateVector::new(1);
        s.apply_gate(&Gate::X, &[0]);
        let mut rng = StdRng::seed_from_u64(1);
        s.apply_kraus_1q(0, &[k0, k1], &mut rng);
        assert!(s.prob_one(0) < 1e-12);
    }

    #[test]
    fn kraus_preserves_norm_statistically() {
        let gamma: f64 = 0.3;
        let k0 = Mat2([
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut s = StateVector::new(1);
            s.apply_gate(&Gate::X, &[0]);
            s.apply_kraus_1q(0, &[k0, k1], &mut rng);
            if s.prob_one(0) > 0.5 {
                ones += 1;
            }
        }
        let survive = ones as f64 / trials as f64;
        assert!((survive - 0.7).abs() < 0.05, "survival {survive}");
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn mat4_needs_two_qubits() {
        StateVector::new(2).apply_mat4(1, 1, &Mat4::identity());
    }

    #[test]
    fn from_amplitudes_roundtrip() {
        let s = StateVector::from_amplitudes(vec![
            C64::real(std::f64::consts::FRAC_1_SQRT_2),
            C64::real(std::f64::consts::FRAC_1_SQRT_2),
        ]);
        assert_eq!(s.num_qubits(), 1);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "norm")]
    fn unnormalized_rejected() {
        StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }
}
