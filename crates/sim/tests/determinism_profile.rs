//! Determinism matrix: `Executor::run_parallel` must return bit-identical
//! counts for every thread count **with profiling enabled**. The obs
//! layer records wall times and counters but must never touch the
//! per-shot RNG streams or reorder the merged counts.
//!
//! This lives in its own integration-test binary because the profiling
//! toggle is process-global.

use std::sync::{Mutex, MutexGuard, OnceLock};
use xtalk_device::Device;
use xtalk_ir::Circuit;
use xtalk_sim::{Counts, Executor, ExecutorConfig};

/// The profiling toggle and registry are process-global; the harness runs
/// tests concurrently, so serialize the ones that flip them.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap()
}

fn bench_circuit() -> (Device, Circuit) {
    let device = Device::poughkeepsie(3);
    let mut c = Circuit::new(20, 6);
    c.h(10).cx(10, 15).cx(11, 12).cx(15, 16).h(5).cx(5, 10);
    for (bit, q) in [10u32, 15, 11, 12, 16, 5].into_iter().enumerate() {
        c.measure(q, bit as u32);
    }
    (device, c)
}

fn run_with_threads(device: &Device, c: &Circuit, shots: u64, threads: usize) -> Counts {
    let sched = Executor::asap_schedule(c, device.calibration());
    let cfg = ExecutorConfig { shots, seed: 41, ..Default::default() };
    Executor::with_config(device, cfg).run_parallel(&sched, threads)
}

#[test]
fn counts_bit_identical_across_thread_matrix_with_profiling_on() {
    let _gate = obs_lock();
    let (device, c) = bench_circuit();
    // 999 shots: not a multiple of any thread count in the matrix, so
    // chunk boundaries differ between runs.
    let shots = 999;

    // Reference run with profiling off.
    xtalk_obs::set_enabled(false);
    let reference = run_with_threads(&device, &c, shots, 1);

    xtalk_obs::set_enabled(true);
    xtalk_obs::reset();
    for threads in [1usize, 2, 4, 7] {
        let counts = run_with_threads(&device, &c, shots, threads);
        assert_eq!(
            reference, counts,
            "profiling perturbed the counts at {threads} threads"
        );
    }
    let snap = xtalk_obs::snapshot();
    xtalk_obs::set_enabled(false);
    xtalk_obs::reset();

    // The profile itself must be coherent: 4 instrumented runs, and the
    // per-thread shot counters must account for every sampled shot.
    let runs = snap.span("sim.run_parallel").expect("run span missing");
    assert_eq!(runs.count, 4);
    assert_eq!(snap.counter("sim.shots"), Some(4 * shots));
    let per_thread: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("sim.thread"))
        .map(|c| c.value)
        .sum();
    assert_eq!(per_thread, 4 * shots, "per-thread shot counters disagree");
}

#[test]
fn toggling_profiling_mid_stream_does_not_change_results() {
    let _gate = obs_lock();
    let (device, c) = bench_circuit();
    xtalk_obs::set_enabled(false);
    let off = run_with_threads(&device, &c, 321, 3);
    xtalk_obs::set_enabled(true);
    let on = run_with_threads(&device, &c, 321, 3);
    xtalk_obs::set_enabled(false);
    xtalk_obs::reset();
    assert_eq!(off, on, "toggling profiling changed simulation results");
}
