//! Disabled-path overhead budget: with profiling off, the instrumentation
//! inside `Executor::run_parallel` must cost well under 5% of a run.
//!
//! Rather than comparing two noisy end-to-end timings (flaky on shared
//! CI hardware), this measures the two quantities that actually make up
//! the overhead and bounds their product:
//!
//! 1. the per-probe cost of a disabled span + counter check (one relaxed
//!    atomic load each, no allocation), measured over a large batch, and
//! 2. the wall time of one `run_parallel` call on a realistic circuit.
//!
//! `run_parallel` executes a fixed, small number of probes per call
//! (one top-level span, plus one batch span and one counter check per
//! worker thread), so `probes x per_probe_cost` is the total
//! instrumentation cost. The assertion leaves orders of magnitude of
//! headroom: ~10 probes of a few ns each against a run measured in
//! hundreds of microseconds.
//!
//! This lives in its own integration-test binary because the profiling
//! toggle is process-global and must stay off for the whole measurement.

use criterion::{black_box, Bencher};
use xtalk_device::Device;
use xtalk_ir::Circuit;
use xtalk_sim::{Executor, ExecutorConfig};

#[test]
fn disabled_profiling_overhead_is_under_five_percent() {
    xtalk_obs::set_enabled(false);

    // --- 1. Per-probe cost of the disabled instrumentation path. ---
    // Mirrors exactly what run_parallel executes per probe when
    // profiling is off: a span guard (single atomic load, inert guard)
    // and the `enabled()` gate in front of the counters.
    let probe_iters = 200_000u64;
    let mut probe = Bencher::new(probe_iters);
    probe.iter(|| {
        let _s = xtalk_obs::span(black_box("overhead.probe"));
        if xtalk_obs::enabled() {
            xtalk_obs::counter_add("overhead.probe.count", 1);
        }
    });
    // Sub-ns ops truncate through Duration math per iteration, so derive
    // the mean from the batch total.
    let per_probe_ns = probe.elapsed().as_nanos() as f64 / probe_iters as f64;

    // --- 2. Wall time of one instrumented run_parallel call. ---
    let threads = 4usize;
    let device = Device::poughkeepsie(3);
    let mut c = Circuit::new(20, 4);
    c.h(10).cx(10, 15).cx(11, 12).h(5).cx(5, 10);
    for (bit, q) in [10u32, 15, 11, 12].into_iter().enumerate() {
        c.measure(q, bit as u32);
    }
    let sched = Executor::asap_schedule(&c, device.calibration());
    let cfg = ExecutorConfig { shots: 2000, seed: 7, ..Default::default() };
    let exec = Executor::with_config(&device, cfg);
    let mut run = Bencher::new(5);
    run.iter(|| black_box(exec.run_parallel(&sched, threads)));
    // min over samples: the least-perturbed observation of the run cost.
    let run_ns = run.min_time().as_nanos() as f64;

    // --- 3. Bound the product. ---
    // Probes per run_parallel call: 1 top-level span + per thread one
    // shot-batch span and one counter gate. Double it for slack.
    let probes_per_run = (1 + 2 * threads) as f64 * 2.0;
    let overhead_ns = probes_per_run * per_probe_ns;
    let budget_ns = 0.05 * run_ns;
    assert!(
        overhead_ns < budget_ns,
        "disabled instrumentation too expensive: {probes_per_run} probes x \
         {per_probe_ns:.2} ns = {overhead_ns:.1} ns vs 5% budget {budget_ns:.1} ns \
         (run_parallel min {run_ns:.0} ns)"
    );

    // Sanity on the probe measurement itself: a disabled span + counter
    // gate is a couple of atomic loads. If it ever exceeds 1 µs per op,
    // something regressed catastrophically (e.g. allocation on the
    // disabled path) regardless of how slow the run is.
    assert!(
        per_probe_ns < 1_000.0,
        "disabled probe costs {per_probe_ns:.1} ns each; the disabled path \
         must be a bare atomic load"
    );
}
