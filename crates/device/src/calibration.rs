//! Daily calibration data: gate errors, durations, coherence, readout.

use crate::{CalibrationError, Edge, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xtalk_ir::{Gate, Qubit};

/// Pulse-length model for gate durations, in nanoseconds.
///
/// Virtual gates (`rz`, `u1`, `z`, `s`, `t`, barriers) take zero time;
/// one-pulse gates (`x`, `h`, `u2`, …) take [`GateDurations::sq_pulse_ns`];
/// `u3` takes two pulses; CNOT durations are per-edge (see
/// [`Calibration::cx_duration`]); a `swap` is three CNOTs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GateDurations {
    /// Duration of one single-qubit physical pulse (ns).
    pub sq_pulse_ns: u64,
    /// Duration of a readout operation (ns).
    pub measure_ns: u64,
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations { sq_pulse_ns: 50, measure_ns: 1000 }
    }
}

/// Statistical profile used to sample synthetic calibrations. Defaults
/// follow the populations the paper reports for the three IBMQ systems
/// (Section 2.2): CNOT error 0.5–6.5 % averaging ≈1.8 %, single-qubit
/// error ≈10× better, readout ≈4.8 %, coherence 10–100 µs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CalibrationProfile {
    /// Lower/upper bound on CNOT error rate.
    pub cx_error_range: (f64, f64),
    /// Median CNOT error (log-normal location).
    pub cx_error_median: f64,
    /// Ratio of single-qubit to CNOT error (paper: ≈0.1).
    pub sq_error_ratio: f64,
    /// Mean readout assignment error.
    pub readout_mean: f64,
    /// Spread of readout error.
    pub readout_sd: f64,
    /// Range of T1 (µs).
    pub t1_range_us: (f64, f64),
    /// Range of T2 (µs); additionally clamped to `2·T1`.
    pub t2_range_us: (f64, f64),
    /// Range of CNOT durations (ns).
    pub cx_duration_range_ns: (u64, u64),
}

impl Default for CalibrationProfile {
    fn default() -> Self {
        CalibrationProfile {
            cx_error_range: (0.005, 0.065),
            cx_error_median: 0.015,
            sq_error_ratio: 0.1,
            readout_mean: 0.048,
            readout_sd: 0.012,
            t1_range_us: (30.0, 100.0),
            t2_range_us: (15.0, 120.0),
            cx_duration_range_ns: (250, 450),
        }
    }
}

/// One day's calibration of a device: exactly the data IBM publishes
/// through its device API (independent gate errors, gate durations, T1/T2
/// and readout errors) — *without* any crosstalk information.
///
/// ```
/// use xtalk_device::{Calibration, CalibrationProfile, Edge, Topology};
/// let topo = Topology::line(4);
/// let cal = Calibration::sample(&topo, &CalibrationProfile::default(), 42);
/// let e = Edge::new(1, 2);
/// assert!(cal.cx_error(e) > 0.0 && cal.cx_error(e) < 0.1);
/// assert!(cal.coherence_ns(1) > 0.0);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Calibration {
    durations: GateDurations,
    cx_error: BTreeMap<Edge, f64>,
    cx_duration: BTreeMap<Edge, u64>,
    sq_error: Vec<f64>,
    readout_error: Vec<f64>,
    t1_us: Vec<f64>,
    t2_us: Vec<f64>,
}

impl Calibration {
    /// Builds a calibration from explicit per-gate data.
    ///
    /// # Panics
    ///
    /// Panics if the per-qubit vectors disagree in length.
    pub fn from_parts(
        durations: GateDurations,
        cx_error: BTreeMap<Edge, f64>,
        cx_duration: BTreeMap<Edge, u64>,
        sq_error: Vec<f64>,
        readout_error: Vec<f64>,
        t1_us: Vec<f64>,
        t2_us: Vec<f64>,
    ) -> Self {
        let n = sq_error.len();
        assert!(
            readout_error.len() == n && t1_us.len() == n && t2_us.len() == n,
            "per-qubit calibration vectors must agree in length"
        );
        Calibration { durations, cx_error, cx_duration, sq_error, readout_error, t1_us, t2_us }
    }

    /// Samples a synthetic calibration for `topology` from `profile`,
    /// deterministically in `seed`.
    pub fn sample(topology: &Topology, profile: &CalibrationProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = topology.num_qubits();

        let mut cx_error = BTreeMap::new();
        let mut cx_duration = BTreeMap::new();
        for &e in topology.edges() {
            let err = sample_lognormal(
                &mut rng,
                profile.cx_error_median,
                0.5,
                profile.cx_error_range,
            );
            cx_error.insert(e, err);
            cx_duration.insert(
                e,
                rng.gen_range(profile.cx_duration_range_ns.0..=profile.cx_duration_range_ns.1),
            );
        }

        let sq_error = cx_error_based_sq(&cx_error, profile, n, &mut rng);
        let readout_error = (0..n)
            .map(|_| {
                (profile.readout_mean + profile.readout_sd * standard_normal(&mut rng))
                    .clamp(0.005, 0.25)
            })
            .collect();
        let t1_us: Vec<f64> =
            (0..n).map(|_| rng.gen_range(profile.t1_range_us.0..profile.t1_range_us.1)).collect();
        let t2_us = t1_us
            .iter()
            .map(|&t1| {
                rng.gen_range(profile.t2_range_us.0..profile.t2_range_us.1).min(2.0 * t1)
            })
            .collect();

        Calibration {
            durations: GateDurations::default(),
            cx_error,
            cx_duration,
            sq_error,
            readout_error,
            t1_us,
            t2_us,
        }
    }

    /// Number of qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.sq_error.len()
    }

    /// `true` if `e` is a calibrated CNOT site (i.e. a coupling-map edge).
    pub fn has_cx_edge(&self, e: Edge) -> bool {
        self.cx_error.contains_key(&e)
    }

    /// All calibrated CNOT sites, in normalized `(lo, hi)` order — a
    /// deterministic iteration order suitable for content hashing.
    pub fn cx_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.cx_error.keys().copied()
    }

    /// Independent CNOT error rate `E(g)` for edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a calibrated edge; see
    /// [`Calibration::try_cx_error`] for the fallible form.
    pub fn cx_error(&self, e: Edge) -> f64 {
        self.try_cx_error(e).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Independent CNOT error rate `E(g)` for edge `e`, or an error if
    /// the edge is not calibrated.
    pub fn try_cx_error(&self, e: Edge) -> Result<f64, CalibrationError> {
        self.cx_error.get(&e).copied().ok_or(CalibrationError::UnknownEdge(e))
    }

    /// CNOT duration (ns) for edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a calibrated edge; see
    /// [`Calibration::try_cx_duration`] for the fallible form.
    pub fn cx_duration(&self, e: Edge) -> u64 {
        self.try_cx_duration(e).unwrap_or_else(|err| panic!("{err}"))
    }

    /// CNOT duration (ns) for edge `e`, or an error if the edge is not
    /// calibrated.
    pub fn try_cx_duration(&self, e: Edge) -> Result<u64, CalibrationError> {
        self.cx_duration.get(&e).copied().ok_or(CalibrationError::UnknownEdge(e))
    }

    /// Single-qubit gate error for qubit `q`.
    pub fn sq_error(&self, q: u32) -> f64 {
        self.sq_error[q as usize]
    }

    /// Readout assignment error for qubit `q` (probability of flipping the
    /// measured bit).
    pub fn readout_error(&self, q: u32) -> f64 {
        self.readout_error[q as usize]
    }

    /// T1 relaxation time (µs).
    pub fn t1_us(&self, q: u32) -> f64 {
        self.t1_us[q as usize]
    }

    /// T2 dephasing time (µs).
    pub fn t2_us(&self, q: u32) -> f64 {
        self.t2_us[q as usize]
    }

    /// The paper's available compute time `q.T` (Eq. 9): `min(T1, T2)`,
    /// in nanoseconds.
    pub fn coherence_ns(&self, q: u32) -> f64 {
        self.t1_us[q as usize].min(self.t2_us[q as usize]) * 1000.0
    }

    /// The duration model.
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Duration (ns) of `gate` applied to `qubits` under this calibration.
    ///
    /// # Panics
    ///
    /// Panics if a two-qubit gate is applied to a non-calibrated edge.
    pub fn duration_of(&self, gate: &Gate, qubits: &[Qubit]) -> u64 {
        if gate.is_virtual() {
            return 0;
        }
        match gate {
            Gate::Cx | Gate::Cz => self.cx_duration(Edge::new(qubits[0].raw(), qubits[1].raw())),
            Gate::Swap => 3 * self.cx_duration(Edge::new(qubits[0].raw(), qubits[1].raw())),
            Gate::Measure => self.durations.measure_ns,
            Gate::U3(..) => 2 * self.durations.sq_pulse_ns,
            // Everything else is a one-pulse single-qubit gate.
            _ => self.durations.sq_pulse_ns,
        }
    }

    /// Overrides the coherence of one qubit (used by device presets to
    /// plant outliers such as Poughkeepsie's low-coherence qubit 10).
    pub fn set_coherence_us(&mut self, q: u32, t1_us: f64, t2_us: f64) {
        self.t1_us[q as usize] = t1_us;
        self.t2_us[q as usize] = t2_us;
    }

    /// Overrides one CNOT's independent error rate.
    pub fn set_cx_error(&mut self, e: Edge, err: f64) {
        assert!(self.cx_error.contains_key(&e), "no calibration for edge {e}");
        self.cx_error.insert(e, err);
    }

    /// A next-day calibration: every error rate and coherence time jitters
    /// multiplicatively (log-normal), modeling the daily drift the paper
    /// observes (gate errors vary day to day; Section 5.1).
    pub fn drifted(&self, seed: u64) -> Calibration {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out = self.clone();
        for v in out.cx_error.values_mut() {
            *v = (*v * lognormal_factor(&mut rng, 0.18)).clamp(1e-4, 0.25);
        }
        for v in &mut out.sq_error {
            *v = (*v * lognormal_factor(&mut rng, 0.18)).clamp(1e-5, 0.05);
        }
        for v in &mut out.readout_error {
            *v = (*v * lognormal_factor(&mut rng, 0.1)).clamp(0.002, 0.3);
        }
        for v in &mut out.t1_us {
            *v = (*v * lognormal_factor(&mut rng, 0.08)).clamp(1.0, 300.0);
        }
        for v in &mut out.t2_us {
            *v = (*v * lognormal_factor(&mut rng, 0.08)).clamp(1.0, 300.0);
        }
        out
    }
}

fn cx_error_based_sq(
    cx_error: &BTreeMap<Edge, f64>,
    profile: &CalibrationProfile,
    n: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let avg_cx = if cx_error.is_empty() {
        profile.cx_error_median
    } else {
        cx_error.values().sum::<f64>() / cx_error.len() as f64
    };
    (0..n)
        .map(|_| (avg_cx * profile.sq_error_ratio * lognormal_factor(rng, 0.3)).max(1e-5))
        .collect()
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    // Box-Muller; `rand` 0.8 without `rand_distr` has no normal sampler.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn lognormal_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

fn sample_lognormal(rng: &mut StdRng, median: f64, sigma: f64, range: (f64, f64)) -> f64 {
    (median * lognormal_factor(rng, sigma)).clamp(range.0, range.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> (Topology, Calibration) {
        let t = Topology::poughkeepsie();
        let c = Calibration::sample(&t, &CalibrationProfile::default(), 1);
        (t, c)
    }

    #[test]
    fn sampled_values_in_range() {
        let (t, c) = cal();
        for &e in t.edges() {
            let err = c.cx_error(e);
            assert!((0.005..=0.065).contains(&err), "cx error {err}");
            assert!((250..=450).contains(&c.cx_duration(e)));
        }
        for q in 0..20 {
            assert!(c.sq_error(q) < 0.02);
            assert!((0.005..=0.25).contains(&c.readout_error(q)));
            assert!(c.t1_us(q) >= 30.0 && c.t1_us(q) <= 100.0);
            assert!(c.t2_us(q) <= 2.0 * c.t1_us(q) + 1e-9);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let t = Topology::line(5);
        let a = Calibration::sample(&t, &CalibrationProfile::default(), 9);
        let b = Calibration::sample(&t, &CalibrationProfile::default(), 9);
        assert_eq!(a, b);
        let c = Calibration::sample(&t, &CalibrationProfile::default(), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn durations_follow_gate_kinds() {
        let (_, c) = cal();
        let q = [Qubit::new(0), Qubit::new(1)];
        assert_eq!(c.duration_of(&Gate::Rz(1.0), &q[..1]), 0);
        assert_eq!(c.duration_of(&Gate::Barrier, &q), 0);
        assert_eq!(c.duration_of(&Gate::H, &q[..1]), 50);
        assert_eq!(c.duration_of(&Gate::U3(1.0, 2.0, 3.0), &q[..1]), 100);
        assert_eq!(c.duration_of(&Gate::Measure, &q[..1]), 1000);
        let cx = c.duration_of(&Gate::Cx, &q);
        assert_eq!(c.duration_of(&Gate::Swap, &q), 3 * cx);
    }

    #[test]
    fn coherence_is_min_t1_t2_in_ns() {
        let (_, mut c) = cal();
        c.set_coherence_us(3, 50.0, 20.0);
        assert!((c.coherence_ns(3) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn drift_changes_but_stays_in_bounds() {
        let (t, c) = cal();
        let d = c.drifted(1);
        assert_ne!(c, d);
        for &e in t.edges() {
            assert!(d.cx_error(e) > 0.0 && d.cx_error(e) <= 0.25);
            // Drift should be gentle: within ~2x.
            let ratio = d.cx_error(e) / c.cx_error(e);
            assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "no calibration for edge")]
    fn unknown_edge_panics() {
        let (_, c) = cal();
        c.cx_error(Edge::new(0, 19));
    }

    #[test]
    fn try_lookups_return_typed_errors() {
        let (t, c) = cal();
        let known = t.edges()[0];
        assert_eq!(c.try_cx_error(known), Ok(c.cx_error(known)));
        assert_eq!(c.try_cx_duration(known), Ok(c.cx_duration(known)));
        let bogus = Edge::new(0, 19);
        assert_eq!(c.try_cx_error(bogus), Err(CalibrationError::UnknownEdge(bogus)));
        assert_eq!(
            c.try_cx_duration(bogus).unwrap_err().to_string(),
            format!("no calibration for edge {bogus}")
        );
    }

    #[test]
    fn set_cx_error_overrides() {
        let (_, mut c) = cal();
        c.set_cx_error(Edge::new(10, 15), 0.01);
        assert_eq!(c.cx_error(Edge::new(10, 15)), 0.01);
    }

    #[test]
    #[should_panic(expected = "must agree in length")]
    fn from_parts_checks_lengths() {
        Calibration::from_parts(
            GateDurations::default(),
            BTreeMap::new(),
            BTreeMap::new(),
            vec![0.001],
            vec![0.05, 0.05],
            vec![50.0],
            vec![50.0],
        );
    }
}
