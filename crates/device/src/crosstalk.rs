//! Ground-truth crosstalk: conditional-error factors between CNOT pairs.

use crate::{Calibration, Edge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Ground-truth crosstalk model of a device.
///
/// For an ordered pair of simultaneously-driven CNOTs, the *conditional
/// error rate* is `E(gᵢ|gⱼ) = factor(gᵢ|gⱼ) · E(gᵢ)`. A factor of 1 means
/// no interference; the paper observes factors up to 11× on 1-hop pairs.
///
/// This map is the hidden state of the hardware: the simulator consults it
/// to corrupt overlapping gates, while the characterization module must
/// rediscover it through simultaneous RB.
///
/// ```
/// use xtalk_device::{CrosstalkMap, Edge};
/// let mut xt = CrosstalkMap::new();
/// xt.set_symmetric(Edge::new(10, 15), Edge::new(11, 12), 11.0, 4.0);
/// assert_eq!(xt.factor(Edge::new(10, 15), Edge::new(11, 12)), 11.0);
/// assert_eq!(xt.factor(Edge::new(11, 12), Edge::new(10, 15)), 4.0);
/// assert_eq!(xt.factor(Edge::new(0, 1), Edge::new(2, 3)), 1.0);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CrosstalkMap {
    /// `(affected, aggressor) → factor ≥ 1`.
    factors: BTreeMap<(Edge, Edge), f64>,
}

impl CrosstalkMap {
    /// An empty (crosstalk-free) map.
    pub fn new() -> Self {
        CrosstalkMap::default()
    }

    /// Sets the factor by which simultaneous operation of `aggressor`
    /// worsens `affected` (`E(affected|aggressor) = factor · E(affected)`).
    ///
    /// # Panics
    ///
    /// Panics if the edges share a qubit (such CNOTs can never be driven
    /// simultaneously) or if `factor < 1`.
    pub fn set(&mut self, affected: Edge, aggressor: Edge, factor: f64) {
        assert!(!affected.shares_qubit(aggressor), "{affected} and {aggressor} share a qubit");
        assert!(factor >= 1.0, "crosstalk factor must be >= 1, got {factor}");
        self.factors.insert((affected, aggressor), factor);
    }

    /// Sets both directions of a pair: `a` is worsened by `f_a_given_b`
    /// when `b` runs, and vice versa.
    pub fn set_symmetric(&mut self, a: Edge, b: Edge, f_a_given_b: f64, f_b_given_a: f64) {
        self.set(a, b, f_a_given_b);
        self.set(b, a, f_b_given_a);
    }

    /// The factor by which `affected` degrades while `aggressor` runs
    /// simultaneously (1.0 when the pair does not interfere).
    pub fn factor(&self, affected: Edge, aggressor: Edge) -> f64 {
        self.factors.get(&(affected, aggressor)).copied().unwrap_or(1.0)
    }

    /// The conditional error rate `E(affected|aggressor)` under
    /// `calibration`, clamped to 1.
    pub fn conditional_error(&self, cal: &Calibration, affected: Edge, aggressor: Edge) -> f64 {
        (cal.cx_error(affected) * self.factor(affected, aggressor)).min(1.0)
    }

    /// All ordered pairs with a factor `>= threshold` (the paper uses 3×
    /// to call a pair "high crosstalk").
    pub fn high_pairs(&self, threshold: f64) -> Vec<(Edge, Edge)> {
        self.factors
            .iter()
            .filter(|(_, &f)| f >= threshold)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Unordered pairs where *either* direction reaches `threshold` — the
    /// edges the scheduler must consider serializing.
    pub fn high_unordered_pairs(&self, threshold: f64) -> Vec<(Edge, Edge)> {
        let mut out: Vec<(Edge, Edge)> = Vec::new();
        for (&(a, b), &f) in &self.factors {
            if f >= threshold {
                let key = if a < b { (a, b) } else { (b, a) };
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Iterates over all `(affected, aggressor) → factor` entries.
    pub fn iter(&self) -> impl Iterator<Item = ((Edge, Edge), f64)> + '_ {
        self.factors.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of stored directed entries.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` if no crosstalk is modeled.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// A next-day crosstalk model: factors jitter multiplicatively by up to
    /// roughly ±2× over a week while remaining ≥ 1 — matching the paper's
    /// observation that conditional error rates vary 2–3× day to day but
    /// the *set* of high-crosstalk pairs stays stable (Figure 4).
    pub fn drifted(&self, seed: u64) -> CrosstalkMap {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        let mut out = self.clone();
        for v in out.factors.values_mut() {
            let jitter = (0.22 * normal(&mut rng)).exp();
            *v = (*v * jitter).max(1.0);
        }
        out
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CalibrationProfile, Topology};

    fn sample_map() -> CrosstalkMap {
        let mut xt = CrosstalkMap::new();
        xt.set_symmetric(Edge::new(10, 15), Edge::new(11, 12), 11.0, 4.0);
        xt.set_symmetric(Edge::new(13, 14), Edge::new(18, 19), 5.0, 4.5);
        xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), 1.5, 1.4);
        xt
    }

    #[test]
    fn default_factor_is_one() {
        let xt = CrosstalkMap::new();
        assert_eq!(xt.factor(Edge::new(0, 1), Edge::new(2, 3)), 1.0);
        assert!(xt.is_empty());
    }

    #[test]
    fn asymmetric_factors() {
        let xt = sample_map();
        assert_eq!(xt.factor(Edge::new(10, 15), Edge::new(11, 12)), 11.0);
        assert_eq!(xt.factor(Edge::new(11, 12), Edge::new(10, 15)), 4.0);
    }

    #[test]
    fn high_pairs_filtering() {
        let xt = sample_map();
        let high = xt.high_unordered_pairs(3.0);
        assert_eq!(high.len(), 2);
        assert!(!high.contains(&(Edge::new(0, 1), Edge::new(2, 3))));
        // Directed view contains both directions of pair (10,15)-(11,12).
        assert_eq!(xt.high_pairs(3.0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "share a qubit")]
    fn shared_qubit_rejected() {
        CrosstalkMap::new().set(Edge::new(0, 1), Edge::new(1, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn subunit_factor_rejected() {
        CrosstalkMap::new().set(Edge::new(0, 1), Edge::new(2, 3), 0.5);
    }

    #[test]
    fn conditional_error_clamped() {
        let topo = Topology::line(4);
        let mut cal = Calibration::sample(&topo, &CalibrationProfile::default(), 3);
        cal.set_cx_error(Edge::new(0, 1), 0.2);
        let mut xt = CrosstalkMap::new();
        xt.set(Edge::new(0, 1), Edge::new(2, 3), 11.0);
        assert_eq!(xt.conditional_error(&cal, Edge::new(0, 1), Edge::new(2, 3)), 1.0);
    }

    #[test]
    fn drift_preserves_high_pair_set_roughly() {
        let xt = sample_map();
        // Across a week of drift, the two genuinely-high pairs stay >= 3x.
        for day in 0..7 {
            let d = xt.drifted(day);
            let high = d.high_unordered_pairs(3.0);
            assert!(
                high.contains(&(Edge::new(10, 15), Edge::new(11, 12)))
                    || high.contains(&(Edge::new(11, 12), Edge::new(10, 15))),
                "day {day} lost the dominant pair"
            );
            for (_, f) in d.iter() {
                assert!(f >= 1.0);
            }
        }
    }
}
