//! Coupling graphs and hop-distance queries.

use crate::Edge;
use std::fmt;

/// A device coupling graph: qubits are nodes, possible CNOT sites are
/// edges. Precomputes all-pairs hop distances (BFS) so the frequent
/// queries of the characterization and scheduling layers are O(1).
///
/// ```
/// use xtalk_device::{Edge, Topology};
/// let t = Topology::line(4);
/// assert_eq!(t.qubit_distance(0, 3), Some(3));
/// // Gate distance between CX0,1 and CX2,3 is 1 hop (via qubits 1-2).
/// assert_eq!(t.edge_distance(Edge::new(0, 1), Edge::new(2, 3)), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    num_qubits: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<u32>>,
    dist: Vec<Vec<u32>>,
}

const UNREACHABLE: u32 = u32::MAX;

impl Topology {
    /// Builds a topology from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= num_qubits` or if the edge
    /// list contains duplicates.
    pub fn new(num_qubits: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut edges: Vec<Edge> = edge_list.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        edges.sort_unstable();
        for w in edges.windows(2) {
            assert_ne!(w[0], w[1], "duplicate edge {}", w[0]);
        }
        let mut adj = vec![Vec::new(); num_qubits];
        for e in &edges {
            assert!(
                (e.hi() as usize) < num_qubits,
                "edge {e} references qubit outside register of {num_qubits}"
            );
            adj[e.lo() as usize].push(e.hi());
            adj[e.hi() as usize].push(e.lo());
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        let dist = all_pairs_bfs(num_qubits, &adj);
        Topology { num_qubits, edges, adj, dist }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of coupling edges (hardware CNOT sites).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, sorted.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of qubit `q`, sorted.
    pub fn neighbors(&self, q: u32) -> &[u32] {
        &self.adj[q as usize]
    }

    /// `true` if a CNOT can be driven directly between `a` and `b`.
    pub fn are_adjacent(&self, a: u32, b: u32) -> bool {
        a != b && self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// `true` if `e` is an edge of this topology.
    pub fn has_edge(&self, e: Edge) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Hop distance between two qubits; `None` if disconnected.
    pub fn qubit_distance(&self, a: u32, b: u32) -> Option<u32> {
        let d = self.dist[a as usize][b as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Gate (edge) distance: the minimum hop distance between any endpoint
    /// of `a` and any endpoint of `b`. Two CNOTs that share a qubit have
    /// distance 0; the paper's "1-hop" interfering pairs have distance 1.
    /// `None` if the edges lie in disconnected components.
    pub fn edge_distance(&self, a: Edge, b: Edge) -> Option<u32> {
        let mut best: Option<u32> = None;
        for x in [a.lo(), a.hi()] {
            for y in [b.lo(), b.hi()] {
                if let Some(d) = self.qubit_distance(x, y) {
                    best = Some(best.map_or(d, |c| c.min(d)));
                }
            }
        }
        best
    }

    /// All unordered pairs of edges that do not share a qubit — the CNOT
    /// pairs that *can* be driven simultaneously, i.e. the experiment space
    /// of all-pairs simultaneous RB.
    pub fn simultaneous_pairs(&self) -> Vec<(Edge, Edge)> {
        let mut out = Vec::new();
        for (i, &a) in self.edges.iter().enumerate() {
            for &b in &self.edges[i + 1..] {
                if !a.shares_qubit(b) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The simultaneous pairs at exactly `hops` gate distance.
    pub fn pairs_at_distance(&self, hops: u32) -> Vec<(Edge, Edge)> {
        self.simultaneous_pairs()
            .into_iter()
            .filter(|&(a, b)| self.edge_distance(a, b) == Some(hops))
            .collect()
    }

    /// A shortest qubit path from `a` to `b` (inclusive); `None` if
    /// disconnected. Ties broken toward smaller qubit indices, so the
    /// result is deterministic.
    pub fn shortest_path(&self, a: u32, b: u32) -> Option<Vec<u32>> {
        self.qubit_distance(a, b)?;
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = *self.adj[cur as usize]
                .iter()
                .find(|&&n| {
                    self.dist[n as usize][b as usize] + 1 == self.dist[cur as usize][b as usize]
                })
                .expect("distance structure is consistent");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// A path (line) topology of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)).collect();
        Topology::new(n, &edges)
    }

    /// A full `rows × cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let at = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((at(r, c), at(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((at(r, c), at(r + 1, c)));
                }
            }
        }
        Topology::new(rows * cols, &edges)
    }

    /// The 20-qubit IBMQ Poughkeepsie coupling map (22 edges): four
    /// horizontal chains of five qubits, with vertical links at the row
    /// ends (0-5, 4-9, 5-10, 9-14, 10-15, 14-19).
    pub fn poughkeepsie() -> Self {
        Topology::new(
            20,
            &[
                (0, 1), (1, 2), (2, 3), (3, 4),
                (5, 6), (6, 7), (7, 8), (8, 9),
                (10, 11), (11, 12), (12, 13), (13, 14),
                (15, 16), (16, 17), (17, 18), (18, 19),
                (0, 5), (4, 9), (5, 10), (9, 14), (10, 15), (14, 19),
            ],
        )
    }

    /// The 20-qubit IBMQ Johannesburg coupling map (23 edges):
    /// Poughkeepsie plus the central vertical link 7-12.
    pub fn johannesburg() -> Self {
        Topology::new(
            20,
            &[
                (0, 1), (1, 2), (2, 3), (3, 4),
                (5, 6), (6, 7), (7, 8), (8, 9),
                (10, 11), (11, 12), (12, 13), (13, 14),
                (15, 16), (16, 17), (17, 18), (18, 19),
                (0, 5), (4, 9), (5, 10), (9, 14), (10, 15), (14, 19),
                (7, 12),
            ],
        )
    }

    /// The 20-qubit IBMQ Boeblingen coupling map (23 edges): four
    /// horizontal chains with staggered vertical links
    /// (1-6, 3-8, 5-10, 7-12, 9-14, 11-16, 13-18).
    pub fn boeblingen() -> Self {
        Topology::new(
            20,
            &[
                (0, 1), (1, 2), (2, 3), (3, 4),
                (5, 6), (6, 7), (7, 8), (8, 9),
                (10, 11), (11, 12), (12, 13), (13, 14),
                (15, 16), (16, 17), (17, 18), (18, 19),
                (1, 6), (3, 8), (5, 10), (7, 12), (9, 14), (11, 16), (13, 18),
            ],
        )
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology<{} qubits, {} edges>", self.num_qubits, self.edges.len())
    }
}

#[allow(clippy::needless_range_loop)]
fn all_pairs_bfs(n: usize, adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![UNREACHABLE; n]; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        dist[s][s] = 0;
        queue.clear();
        queue.push_back(s as u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[s][u as usize];
            for &v in &adj[u as usize] {
                if dist[s][v as usize] == UNREACHABLE {
                    dist[s][v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let t = Topology::line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.qubit_distance(0, 4), Some(4));
        assert!(t.are_adjacent(1, 2));
        assert!(!t.are_adjacent(0, 2));
    }

    #[test]
    fn grid_shape() {
        let t = Topology::grid(2, 3);
        assert_eq!(t.num_qubits(), 6);
        assert_eq!(t.num_edges(), 7); // 2*2 horizontal + 3 vertical
        assert_eq!(t.qubit_distance(0, 5), Some(3));
    }

    #[test]
    fn disconnected_reported() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(t.qubit_distance(0, 3), None);
        assert_eq!(t.edge_distance(Edge::new(0, 1), Edge::new(2, 3)), None);
        assert_eq!(t.shortest_path(0, 2), None);
    }

    #[test]
    fn edge_distance_semantics() {
        let t = Topology::line(6);
        // CX0,1 and CX1,2 share qubit 1 → distance 0.
        assert_eq!(t.edge_distance(Edge::new(0, 1), Edge::new(1, 2)), Some(0));
        assert_eq!(t.edge_distance(Edge::new(0, 1), Edge::new(2, 3)), Some(1));
        assert_eq!(t.edge_distance(Edge::new(0, 1), Edge::new(3, 4)), Some(2));
    }

    #[test]
    fn poughkeepsie_shape() {
        let t = Topology::poughkeepsie();
        assert_eq!(t.num_qubits(), 20);
        assert_eq!(t.num_edges(), 22);
        assert!(t.has_edge(Edge::new(10, 15)));
        assert!(t.has_edge(Edge::new(11, 12)));
        assert!(!t.has_edge(Edge::new(7, 12)));
        // The paper's meet-in-the-middle example: 0-5-10 and 13-12-11.
        assert_eq!(t.shortest_path(0, 10), Some(vec![0, 5, 10]));
    }

    #[test]
    fn johannesburg_has_central_link() {
        let t = Topology::johannesburg();
        assert_eq!(t.num_edges(), 23);
        assert!(t.has_edge(Edge::new(7, 12)));
    }

    #[test]
    fn boeblingen_staggered_links() {
        let t = Topology::boeblingen();
        assert_eq!(t.num_edges(), 23);
        assert!(t.has_edge(Edge::new(1, 6)));
        assert!(t.has_edge(Edge::new(13, 18)));
        assert!(!t.has_edge(Edge::new(0, 5)));
    }

    #[test]
    fn simultaneous_pairs_exclude_shared_qubits() {
        let t = Topology::line(4);
        // Edges: 01, 12, 23. Only (01, 23) is simultaneous.
        assert_eq!(t.simultaneous_pairs(), vec![(Edge::new(0, 1), Edge::new(2, 3))]);
    }

    #[test]
    fn poughkeepsie_simultaneous_pair_count() {
        // 22 edges → C(22,2)=231 minus 28 qubit-sharing pairs = 203.
        let t = Topology::poughkeepsie();
        assert_eq!(t.simultaneous_pairs().len(), 203);
    }

    #[test]
    fn pairs_at_distance_filters() {
        let t = Topology::line(6);
        let one_hop = t.pairs_at_distance(1);
        assert!(one_hop.contains(&(Edge::new(0, 1), Edge::new(2, 3))));
        assert!(!one_hop.contains(&(Edge::new(0, 1), Edge::new(3, 4))));
    }

    #[test]
    fn shortest_path_is_shortest_and_deterministic() {
        let t = Topology::poughkeepsie();
        let p = t.shortest_path(0, 13).unwrap();
        assert_eq!(p.len() as u32 - 1, t.qubit_distance(0, 13).unwrap());
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&13));
        assert_eq!(p, t.shortest_path(0, 13).unwrap());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        Topology::new(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn out_of_range_edge_rejected() {
        Topology::new(2, &[(0, 5)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random connected-ish topologies: a spanning line plus extra edges.
    fn topology_strategy() -> impl Strategy<Value = Topology> {
        (4usize..12, prop::collection::vec((0u32..12, 0u32..12), 0..8)).prop_map(|(n, extra)| {
            let mut edges: Vec<(u32, u32)> =
                (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            for (a, b) in extra {
                let (a, b) = (a % n as u32, b % n as u32);
                if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            Topology::new(n, &edges)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn distances_are_metric(topo in topology_strategy()) {
            let n = topo.num_qubits() as u32;
            for a in 0..n {
                prop_assert_eq!(topo.qubit_distance(a, a), Some(0));
                for b in 0..n {
                    // Symmetry.
                    prop_assert_eq!(topo.qubit_distance(a, b), topo.qubit_distance(b, a));
                    // Adjacency ⇔ distance 1.
                    prop_assert_eq!(topo.are_adjacent(a, b), topo.qubit_distance(a, b) == Some(1));
                    // Triangle inequality through every midpoint.
                    if let Some(dab) = topo.qubit_distance(a, b) {
                        for m in 0..n {
                            if let (Some(dam), Some(dmb)) =
                                (topo.qubit_distance(a, m), topo.qubit_distance(m, b))
                            {
                                prop_assert!(dab <= dam + dmb);
                            }
                        }
                    }
                }
            }
        }

        #[test]
        fn shortest_paths_realize_distances(topo in topology_strategy()) {
            let n = topo.num_qubits() as u32;
            for a in 0..n {
                for b in 0..n {
                    if let Some(path) = topo.shortest_path(a, b) {
                        prop_assert_eq!(
                            path.len() as u32 - 1,
                            topo.qubit_distance(a, b).unwrap()
                        );
                        for w in path.windows(2) {
                            prop_assert!(topo.are_adjacent(w[0], w[1]));
                        }
                    }
                }
            }
        }

        #[test]
        fn simultaneous_pairs_consistent(topo in topology_strategy()) {
            let pairs = topo.simultaneous_pairs();
            // No pair shares a qubit, every pair is of real edges, and the
            // count matches the combinatorial formula.
            for &(a, b) in &pairs {
                prop_assert!(!a.shares_qubit(b));
                prop_assert!(topo.has_edge(a) && topo.has_edge(b));
            }
            let e = topo.num_edges();
            let sharing: usize = (0..topo.num_qubits() as u32)
                .map(|q| {
                    let d = topo.neighbors(q).len();
                    d * (d - 1) / 2
                })
                .sum();
            prop_assert_eq!(pairs.len(), e * (e - 1) / 2 - sharing);
        }
    }
}
