//! Normalized coupling-map edges.

use std::fmt;
use xtalk_ir::Qubit;

/// An undirected edge of the coupling map — the site of one hardware CNOT.
///
/// Endpoints are stored normalized (`lo < hi`), so an `Edge` is directly
/// usable as a map key regardless of gate direction.
///
/// ```
/// use xtalk_device::Edge;
/// assert_eq!(Edge::new(5, 0), Edge::new(0, 5));
/// assert_eq!(Edge::new(0, 5).to_string(), "CX0,5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    lo: u32,
    hi: u32,
}

impl Edge {
    /// Creates a normalized edge.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — an edge connects two distinct qubits.
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "edge endpoints must differ");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// Smaller endpoint.
    pub const fn lo(self) -> u32 {
        self.lo
    }

    /// Larger endpoint.
    pub const fn hi(self) -> u32 {
        self.hi
    }

    /// Both endpoints as qubits.
    pub fn qubits(self) -> [Qubit; 2] {
        [Qubit::new(self.lo), Qubit::new(self.hi)]
    }

    /// `true` if `q` is one of the endpoints.
    pub fn contains(self, q: u32) -> bool {
        self.lo == q || self.hi == q
    }

    /// `true` if the two edges share an endpoint (such CNOTs cannot be
    /// driven simultaneously).
    pub fn shares_qubit(self, other: Edge) -> bool {
        self.contains(other.lo) || self.contains(other.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CX{},{}", self.lo, self.hi)
    }
}

impl From<(Qubit, Qubit)> for Edge {
    fn from((a, b): (Qubit, Qubit)) -> Self {
        Edge::new(a.raw(), b.raw())
    }
}

impl From<(u32, u32)> for Edge {
    fn from((a, b): (u32, u32)) -> Self {
        Edge::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let e = Edge::new(9, 4);
        assert_eq!(e.lo(), 4);
        assert_eq!(e.hi(), 9);
        assert_eq!(e, Edge::new(4, 9));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_loop_rejected() {
        Edge::new(3, 3);
    }

    #[test]
    fn sharing() {
        assert!(Edge::new(0, 1).shares_qubit(Edge::new(1, 2)));
        assert!(!Edge::new(0, 1).shares_qubit(Edge::new(2, 3)));
    }

    #[test]
    fn conversion_from_qubits() {
        let e: Edge = (Qubit::new(7), Qubit::new(2)).into();
        assert_eq!(e, Edge::new(2, 7));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Edge::new(0, 1) < Edge::new(0, 2));
        assert!(Edge::new(0, 9) < Edge::new(1, 2));
    }
}
