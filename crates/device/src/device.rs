//! Complete device models with named presets.

use crate::{Calibration, CalibrationProfile, CrosstalkMap, Edge, Topology};
use std::fmt;

/// A complete hardware model: topology, daily calibration, and the
/// ground-truth crosstalk map.
///
/// The three named presets model the IBMQ systems of the paper. Their
/// high-crosstalk pairs are planted on 1-hop edge pairs with factors in
/// the observed 3–11× range (Poughkeepsie includes the paper's marquee
/// 11× pair CX10,15 | CX11,12 and the low-coherence qubit 10 called out
/// in the Figure 6 case study).
///
/// ```
/// use xtalk_device::{Device, Edge};
/// let dev = Device::poughkeepsie(7);
/// assert_eq!(dev.name(), "ibmq_poughkeepsie");
/// assert_eq!(dev.crosstalk().factor(Edge::new(10, 15), Edge::new(11, 12)), 11.0);
/// // Qubit 10 has under 6 µs of usable coherence.
/// assert!(dev.calibration().coherence_ns(10) < 6_000.0);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Device {
    name: String,
    topology: Topology,
    calibration: Calibration,
    crosstalk: CrosstalkMap,
}

impl Device {
    /// Builds a device from parts.
    ///
    /// # Panics
    ///
    /// Panics if the calibration width does not match the topology, or if
    /// a crosstalk entry references a non-edge.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        calibration: Calibration,
        crosstalk: CrosstalkMap,
    ) -> Self {
        assert_eq!(
            calibration.num_qubits(),
            topology.num_qubits(),
            "calibration width must match topology"
        );
        for ((a, b), _) in crosstalk.iter() {
            assert!(topology.has_edge(a), "crosstalk references non-edge {a}");
            assert!(topology.has_edge(b), "crosstalk references non-edge {b}");
        }
        Device { name: name.into(), topology, calibration, crosstalk }
    }

    /// Device name (e.g. `ibmq_poughkeepsie`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current calibration (what IBM would publish daily).
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The ground-truth crosstalk map. **Only the simulator should read
    /// this**; compilers must use characterization estimates.
    pub fn crosstalk(&self) -> &CrosstalkMap {
        &self.crosstalk
    }

    /// Replaces the calibration (e.g. with a drifted one).
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        assert_eq!(calibration.num_qubits(), self.topology.num_qubits());
        self.calibration = calibration;
        self
    }

    /// Replaces the crosstalk map.
    pub fn with_crosstalk(mut self, crosstalk: CrosstalkMap) -> Self {
        self.crosstalk = crosstalk;
        self
    }

    /// The device as it would calibrate on a later `day`: both gate errors
    /// and crosstalk factors drift, deterministically in `(seed, day)`.
    pub fn on_day(&self, day: u32) -> Device {
        let seed = hash_name(&self.name) ^ u64::from(day).wrapping_mul(0x0100_0000_01b3);
        Device {
            name: self.name.clone(),
            topology: self.topology.clone(),
            calibration: self.calibration.drifted(seed),
            crosstalk: self.crosstalk.drifted(seed),
        }
    }

    /// 20-qubit IBMQ Poughkeepsie model.
    ///
    /// Plants the five 1-hop high-crosstalk pairs the paper reports,
    /// anchored by CX10,15 | CX11,12 at 11× (independent error forced to
    /// 1 % so the conditional error is the paper's 11 %), and sets qubit
    /// 10's coherence below 6 µs (10× below the device average).
    pub fn poughkeepsie(seed: u64) -> Self {
        let topology = Topology::poughkeepsie();
        let mut calibration =
            Calibration::sample(&topology, &CalibrationProfile::default(), seed);
        calibration.set_cx_error(Edge::new(10, 15), 0.01);
        calibration.set_coherence_us(10, 5.8, 5.2);

        let mut xt = CrosstalkMap::new();
        xt.set_symmetric(Edge::new(10, 15), Edge::new(11, 12), 11.0, 4.2);
        xt.set_symmetric(Edge::new(13, 14), Edge::new(18, 19), 5.1, 4.6);
        xt.set_symmetric(Edge::new(5, 10), Edge::new(11, 12), 6.5, 5.5);
        xt.set_symmetric(Edge::new(0, 1), Edge::new(5, 6), 4.6, 4.2);
        xt.set_symmetric(Edge::new(12, 13), Edge::new(9, 14), 4.8, 4.4);
        // A couple of sub-threshold nuisance pairs (factor < 3) that the
        // characterizer must correctly leave out of the high set.
        xt.set_symmetric(Edge::new(0, 5), Edge::new(6, 7), 1.6, 1.5);
        xt.set_symmetric(Edge::new(15, 16), Edge::new(10, 11), 1.4, 1.5);

        Device::new("ibmq_poughkeepsie", topology, calibration, xt)
    }

    /// 20-qubit IBMQ Johannesburg model with four 1-hop high-crosstalk
    /// pairs around the central 7-12 link.
    pub fn johannesburg(seed: u64) -> Self {
        let topology = Topology::johannesburg();
        let calibration = Calibration::sample(&topology, &CalibrationProfile::default(), seed);
        let mut xt = CrosstalkMap::new();
        xt.set_symmetric(Edge::new(5, 10), Edge::new(6, 7), 6.0, 5.2);
        xt.set_symmetric(Edge::new(7, 12), Edge::new(8, 9), 5.0, 4.4);
        xt.set_symmetric(Edge::new(10, 11), Edge::new(7, 12), 4.2, 3.8);
        xt.set_symmetric(Edge::new(12, 13), Edge::new(9, 14), 4.6, 4.2);
        xt.set_symmetric(Edge::new(0, 1), Edge::new(5, 6), 1.7, 1.6);
        Device::new("ibmq_johannesburg", topology, calibration, xt)
    }

    /// 20-qubit IBMQ Boeblingen model with six 1-hop high-crosstalk pairs
    /// spread across the staggered vertical links.
    pub fn boeblingen(seed: u64) -> Self {
        let topology = Topology::boeblingen();
        let calibration = Calibration::sample(&topology, &CalibrationProfile::default(), seed);
        let mut xt = CrosstalkMap::new();
        xt.set_symmetric(Edge::new(0, 1), Edge::new(5, 6), 5.0, 4.4);
        xt.set_symmetric(Edge::new(2, 3), Edge::new(7, 8), 7.0, 6.2);
        xt.set_symmetric(Edge::new(6, 7), Edge::new(11, 12), 9.0, 7.5);
        xt.set_symmetric(Edge::new(15, 16), Edge::new(10, 11), 4.6, 4.2);
        xt.set_symmetric(Edge::new(17, 18), Edge::new(12, 13), 5.2, 4.8);
        xt.set_symmetric(Edge::new(8, 9), Edge::new(13, 14), 4.6, 4.0);
        xt.set_symmetric(Edge::new(16, 17), Edge::new(11, 12), 1.8, 1.7);
        Device::new("ibmq_boeblingen", topology, calibration, xt)
    }

    /// All three IBMQ presets with the same seed — the evaluation set of
    /// the paper.
    pub fn all_ibmq(seed: u64) -> Vec<Device> {
        vec![
            Device::poughkeepsie(seed),
            Device::johannesburg(seed),
            Device::boeblingen(seed),
        ]
    }

    /// A crosstalk-free line device — useful for tests and for measuring
    /// "ideal" baselines as the paper does on crosstalk-free regions.
    pub fn line(n: usize, seed: u64) -> Self {
        let topology = Topology::line(n);
        let calibration = Calibration::sample(&topology, &CalibrationProfile::default(), seed);
        Device::new(format!("line_{n}"), topology, calibration, CrosstalkMap::new())
    }

    /// A synthetic future device: a full `rows × cols` grid with
    /// crosstalk planted on a random `high_fraction` of its 1-hop CNOT
    /// pairs (factors 3.5–9×). Used for the scaling projections — the
    /// paper argues crosstalk mitigation matters more as devices grow.
    ///
    /// # Panics
    ///
    /// Panics unless `high_fraction ∈ [0, 1]`.
    pub fn synthetic_grid(rows: usize, cols: usize, high_fraction: f64, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!((0.0..=1.0).contains(&high_fraction), "fraction in [0,1]");
        let topology = Topology::grid(rows, cols);
        let calibration = Calibration::sample(&topology, &CalibrationProfile::default(), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9f1d);
        let mut xt = CrosstalkMap::new();
        for (a, b) in topology.pairs_at_distance(1) {
            if rng.gen_bool(high_fraction) {
                let f: f64 = rng.gen_range(3.5..9.0);
                let g: f64 = f * rng.gen_range(0.7..1.0);
                xt.set_symmetric(a, b, f, g);
            }
        }
        Device::new(format!("grid_{rows}x{cols}"), topology, calibration, xt)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <{} qubits, {} edges, {} crosstalk entries>",
            self.name,
            self.topology.num_qubits(),
            self.topology.num_edges(),
            self.crosstalk.len()
        )
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, deterministic across runs (unlike `DefaultHasher`).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for dev in Device::all_ibmq(5) {
            assert_eq!(dev.topology().num_qubits(), 20);
            // Every planted crosstalk pair is on real edges at 1 hop.
            for ((a, b), f) in dev.crosstalk().iter() {
                assert!(f >= 1.0);
                assert_eq!(
                    dev.topology().edge_distance(a, b),
                    Some(1),
                    "{}: pair {a},{b} not at 1 hop",
                    dev.name()
                );
            }
        }
    }

    #[test]
    fn poughkeepsie_marquee_numbers() {
        let dev = Device::poughkeepsie(1);
        // CX10,15: independent 1%, conditional 11% (the paper's example).
        let e = Edge::new(10, 15);
        assert_eq!(dev.calibration().cx_error(e), 0.01);
        let cond = dev.crosstalk().conditional_error(dev.calibration(), e, Edge::new(11, 12));
        assert!((cond - 0.11).abs() < 1e-12);
        // 5 high pairs at the 3x threshold.
        assert_eq!(dev.crosstalk().high_unordered_pairs(3.0).len(), 5);
    }

    #[test]
    fn day_drift_is_deterministic_and_distinct() {
        let dev = Device::poughkeepsie(1);
        let d1 = dev.on_day(1);
        let d1_again = dev.on_day(1);
        let d2 = dev.on_day(2);
        assert_eq!(d1, d1_again);
        assert_ne!(d1, d2);
        assert_eq!(d1.name(), dev.name());
    }

    #[test]
    fn line_device_is_crosstalk_free() {
        let dev = Device::line(6, 3);
        assert!(dev.crosstalk().is_empty());
        assert_eq!(dev.topology().num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn crosstalk_on_non_edges_rejected() {
        let topology = Topology::line(4);
        let cal = Calibration::sample(&topology, &CalibrationProfile::default(), 0);
        let mut xt = CrosstalkMap::new();
        xt.set(Edge::new(0, 2), Edge::new(1, 3), 3.0);
        Device::new("bad", topology, cal, xt);
    }

    #[test]
    fn display_mentions_name() {
        let dev = Device::line(3, 0);
        assert!(dev.to_string().contains("line_3"));
    }

    #[test]
    fn synthetic_grid_plants_one_hop_crosstalk() {
        let dev = Device::synthetic_grid(6, 6, 0.08, 5);
        assert_eq!(dev.topology().num_qubits(), 36);
        let high = dev.crosstalk().high_unordered_pairs(3.0);
        assert!(!high.is_empty(), "8% of 1-hop pairs should yield some");
        for (a, b) in high {
            assert_eq!(dev.topology().edge_distance(a, b), Some(1));
        }
        // Deterministic in seed.
        assert_eq!(dev, Device::synthetic_grid(6, 6, 0.08, 5));
        assert_ne!(dev, Device::synthetic_grid(6, 6, 0.08, 6));
    }

    #[test]
    fn zero_fraction_grid_is_clean() {
        let dev = Device::synthetic_grid(3, 3, 0.0, 1);
        assert!(dev.crosstalk().is_empty());
    }
}
