//! NISQ hardware models.
//!
//! This crate is the *device substrate* of the reproduction: it stands in
//! for the three 20-qubit IBMQ machines the paper measures (Poughkeepsie,
//! Johannesburg, Boeblingen). A [`Device`] bundles
//!
//! * a [`Topology`] — the CNOT coupling graph with hop-distance queries,
//! * a [`Calibration`] — per-gate error rates and durations, per-qubit
//!   T1/T2 and readout error (the data IBM publishes daily), and
//! * a [`CrosstalkMap`] — the *ground-truth* conditional-error factors that
//!   the real hardware hides and the characterization module must discover
//!   through simultaneous randomized benchmarking.
//!
//! Only the simulator may look at the [`CrosstalkMap`]; the scheduler is
//! given estimates produced by `xtalk-charac`, mirroring the paper's
//! toolflow (its Figure 2).
//!
//! ```
//! use xtalk_device::Device;
//! let dev = Device::poughkeepsie(7);
//! assert_eq!(dev.topology().num_qubits(), 20);
//! assert_eq!(dev.topology().num_edges(), 22);
//! assert!(!dev.crosstalk().high_pairs(3.0).is_empty());
//! ```

mod calibration;
mod crosstalk;
mod device;
mod edge;
mod topology;

pub use calibration::{Calibration, CalibrationProfile, GateDurations};
pub use crosstalk::CrosstalkMap;
pub use device::Device;
pub use edge::Edge;
pub use topology::Topology;

/// Failure looking up calibration data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CalibrationError {
    /// The queried edge is not a calibrated CNOT site.
    UnknownEdge(Edge),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::UnknownEdge(e) => write!(f, "no calibration for edge {e}"),
        }
    }
}

impl std::error::Error for CalibrationError {}
