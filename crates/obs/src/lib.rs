//! `xtalk-obs` — lightweight tracing spans, counters and latency
//! histograms for the crosstalk-mitigation pipeline.
//!
//! The whole layer is gated by one process-global [`AtomicBool`]. While
//! profiling is disabled (the default) every entry point is a single
//! relaxed atomic load and returns without allocating, so instrumented
//! hot loops pay effectively nothing. When enabled:
//!
//! * [`span`] returns an RAII guard that records wall time into a
//!   log-scale [`Histogram`](hist::Histogram) keyed by the span's
//!   hierarchical path. Nested spans join their names with `/` via a
//!   thread-local stack, so a `realize` span opened inside a
//!   `sched.xtalk` span shows up as `sched.xtalk/realize`.
//! * [`counter_add`] bumps a named monotonic counter.
//!
//! Metrics live in a sharded registry (name lookup under a brief
//! per-shard lock, updates as relaxed atomics) and are read out with
//! [`snapshot`], which renders to stable text or single-line JSON.
//!
//! ```
//! xtalk_obs::set_enabled(true);
//! {
//!     let _outer = xtalk_obs::span("transpile");
//!     let _inner = xtalk_obs::span("layout");
//!     xtalk_obs::counter_add("gates", 42);
//! }
//! let snap = xtalk_obs::snapshot();
//! assert!(snap.span("transpile/layout").is_some());
//! assert_eq!(snap.counter("gates"), Some(42));
//! xtalk_obs::set_enabled(false);
//! xtalk_obs::reset();
//! ```

mod hist;
mod registry;

pub mod export;

pub use export::{CounterStat, Snapshot, SpanStat};
pub use hist::Histogram;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Whether profiling is currently on. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// An open span; records its wall time when dropped.
///
/// `None` when profiling was disabled at entry — dropping then is free.
#[must_use = "a span records time when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    open: Option<(String, Instant)>,
}

/// Opens a span named `name` under the spans already open on this
/// thread. Returns an inert guard (no allocation) when disabled.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join("/")
    });
    SpanGuard { open: Some((path, Instant::now())) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((path, start)) = self.open.take() {
            let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            registry::registry().hist(&path).record(elapsed);
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Adds `n` to the counter named `name`. No-op (and no allocation)
/// while disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        registry::registry().counter(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Records a pre-measured duration into the span histogram `name`,
/// bypassing the thread-local stack. Useful when the measurement site
/// can't hold a guard across the region. No-op while disabled.
#[inline]
pub fn record_ns(name: &str, ns: u64) {
    if enabled() {
        registry::registry().hist(name).record(ns);
    }
}

/// Copies every span and counter into a [`Snapshot`], sorted by name.
pub fn snapshot() -> Snapshot {
    let reg = registry::registry();
    let spans = reg
        .hists()
        .into_iter()
        .map(|(name, h)| SpanStat {
            name,
            count: h.count(),
            total_ns: h.sum(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
            max_ns: h.max(),
        })
        .collect();
    let counters = reg
        .counters()
        .into_iter()
        .map(|(name, value)| CounterStat { name, value })
        .collect();
    Snapshot { enabled: enabled(), spans, counters }
}

/// Discards every recorded metric (the enabled flag is left alone).
pub fn reset() {
    registry::registry().reset();
}

/// Opens a span for the rest of the enclosing scope:
/// `let _g = span!("layout");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Bumps a counter: `counter!("smt.leaves")` adds 1,
/// `counter!("sim.shots", n)` adds `n`. Arguments are not evaluated
/// while profiling is disabled, so `counter!(&format!(...), n)` costs
/// nothing on the hot path.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, 1);
        }
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $n);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry and enable flag are process-global; serialize the
    /// tests that touch them.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock().unwrap()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("quiet");
            counter_add("quiet.count", 5);
        }
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        {
            let _top = span("inner");
        }
        let snap = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("outer/inner").unwrap().count, 2);
        assert_eq!(snap.span("inner").unwrap().count, 1);
    }

    #[test]
    fn counters_and_record_ns_accumulate() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter!("c");
        counter!("c", 4);
        record_ns("manual", 1_000);
        record_ns("manual", 3_000);
        let snap = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(snap.counter("c"), Some(5));
        let manual = snap.span("manual").unwrap();
        assert_eq!(manual.count, 2);
        assert_eq!(manual.total_ns, 4_000);
    }

    #[test]
    fn toggling_mid_span_never_corrupts_the_stack() {
        let _g = lock();
        set_enabled(false);
        reset();
        // Opened disabled, closed enabled: guard is inert, must not pop.
        let disabled_guard = span("phantom");
        set_enabled(true);
        {
            let _live = span("live");
            drop(disabled_guard);
        }
        let snap = snapshot();
        set_enabled(false);
        reset();
        assert!(snap.span("phantom").is_none());
        assert_eq!(snap.span("live").unwrap().count, 1);
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn snapshot_roundtrips_through_its_own_json() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = span("roundtrip");
        }
        counter_add("roundtrip.n", 2);
        let json = snapshot().to_json();
        set_enabled(false);
        reset();
        assert!(json.contains("\"name\":\"roundtrip\""));
        assert!(json.contains("\"roundtrip.n\",\"value\":2"));
    }
}
