//! Stable text and JSON rendering of a metrics snapshot.

use std::fmt::Write as _;

/// Aggregated statistics of one span (all durations in nanoseconds).
#[derive(Clone, PartialEq, Debug)]
pub struct SpanStat {
    /// Hierarchical span path (`/`-separated).
    pub name: String,
    /// Times the span closed.
    pub count: u64,
    /// Total wall time across closes.
    pub total_ns: u64,
    /// Mean wall time per close.
    pub mean_ns: u64,
    /// Median (octave resolution).
    pub p50_ns: u64,
    /// 90th percentile (octave resolution).
    pub p90_ns: u64,
    /// 99th percentile (octave resolution).
    pub p99_ns: u64,
    /// Worst observed close.
    pub max_ns: u64,
}

/// One named monotonic counter.
#[derive(Clone, PartialEq, Debug)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// A point-in-time copy of every span and counter, sorted by name.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Whether profiling was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Span statistics.
    pub spans: Vec<SpanStat>,
    /// Counter values.
    pub counters: Vec<CounterStat>,
}

impl Snapshot {
    /// Finds a span by exact path.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Finds a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Serializes to one line of JSON. The schema is stable:
    ///
    /// ```json
    /// {"enabled":true,
    ///  "spans":[{"name":"...","count":1,"total_ns":9,"mean_ns":9,
    ///            "p50_ns":9,"p90_ns":9,"p99_ns":9,"max_ns":9}],
    ///  "counters":[{"name":"...","value":3}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&s.name, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\
                 \"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.mean_ns, s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns
            );
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&c.name, &mut out);
            let _ = write!(out, ",\"value\":{}}}", c.value);
        }
        out.push_str("]}");
        out
    }

    /// Renders a human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "mean", "p50", "p90", "p99"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p90_ns),
                fmt_ns(s.p99_ns),
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>8}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(out, "{:<44} {:>8}", c.name, c.value);
            }
        }
        out
    }
}

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            enabled: true,
            spans: vec![SpanStat {
                name: "a/b".into(),
                count: 2,
                total_ns: 3_000_000,
                mean_ns: 1_500_000,
                p50_ns: 1_500_000,
                p90_ns: 1_500_000,
                p99_ns: 1_500_000,
                max_ns: 2_000_000,
            }],
            counters: vec![CounterStat { name: "n \"q\"".into(), value: 7 }],
        }
    }

    #[test]
    fn json_is_one_escaped_line() {
        let j = sample().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"enabled\":true,\"spans\":[{\"name\":\"a/b\""));
        assert!(j.contains("\\\"q\\\""));
        assert!(j.ends_with("\"value\":7}]}"));
    }

    #[test]
    fn text_mentions_every_metric() {
        let t = sample().to_text();
        assert!(t.contains("a/b"));
        assert!(t.contains("1.50ms"));
        assert!(t.contains("n \"q\""));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_200), "1.20µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
