//! The global sharded metric registry.
//!
//! Metric names hash to one of [`SHARDS`] independently locked maps, so
//! concurrent recorders only contend when their names collide on a
//! shard. Each map entry is an `Arc` to an atomically-updated metric:
//! the shard lock is held only for the name lookup, never while the
//! metric itself is updated — "lock-free-ish".

use crate::hist::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count; power of two so the hash folds cheaply.
const SHARDS: usize = 16;

/// One shard: counters and span histograms under independent locks.
#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    hists: Mutex<HashMap<String, Arc<Histogram>>>,
}

/// The process-wide registry.
pub(crate) struct Registry {
    shards: [Shard; SHARDS],
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry { shards: std::array::from_fn(|_| Shard::default()) })
}

/// FNV-1a; stable and dependency-free.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl Registry {
    /// The counter registered under `name`, created on first use.
    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.shards[shard_of(name)].counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The histogram registered under `name`, created on first use.
    pub(crate) fn hist(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.shards[shard_of(name)].hists.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Clears every metric.
    pub(crate) fn reset(&self) {
        for shard in &self.shards {
            shard.counters.lock().unwrap().clear();
            shard.hists.lock().unwrap().clear();
        }
    }

    /// All counters, sorted by name.
    pub(crate) fn counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().unwrap().iter() {
                out.push((name.clone(), c.load(Ordering::Relaxed)));
            }
        }
        out.sort();
        out
    }

    /// All histograms, sorted by name.
    pub(crate) fn hists(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, h) in shard.hists.lock().unwrap().iter() {
                out.push((name.clone(), h.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_are_shared_by_name() {
        let r = Registry { shards: std::array::from_fn(|_| Shard::default()) };
        r.counter("a").fetch_add(2, Ordering::Relaxed);
        r.counter("a").fetch_add(3, Ordering::Relaxed);
        r.hist("h").record(7);
        assert_eq!(r.counters(), vec![("a".to_string(), 5)]);
        assert_eq!(r.hists()[0].1.count(), 1);
        r.reset();
        assert!(r.counters().is_empty());
        assert!(r.hists().is_empty());
    }

    #[test]
    fn listing_is_sorted_across_shards() {
        let r = Registry { shards: std::array::from_fn(|_| Shard::default()) };
        for name in ["zebra", "alpha", "mid", "beta"] {
            r.counter(name);
        }
        let names: Vec<String> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "beta", "mid", "zebra"]);
    }
}
