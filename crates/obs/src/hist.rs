//! Log-scale latency histogram with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` holds values whose
/// `ilog2` is `i`, covering 1 ns .. ~584 years. More than enough for
/// wall-clock spans.
pub const BUCKETS: usize = 64;

/// A histogram of `u64` samples (nanoseconds by convention) in
/// power-of-two buckets, plus exact count/sum/min/max. Every update is a
/// relaxed atomic, so recording never blocks and is safe from any thread.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile `q ∈ [0, 1]` from the log buckets: the bucket
    /// holding the `⌈q·n⌉`-th sample, represented by its midpoint and
    /// clamped to the observed `[min, max]`. Resolution is one octave —
    /// exactly what a profiling report needs, at 8 bytes per bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = 1u64 << i;
                // Arithmetic midpoint of [2^i, 2^(i+1)).
                let mid = lo + lo / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }
}

/// Bucket index of a value: `ilog2(max(value, 1))`.
fn bucket_of(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn stats_track_samples() {
        let h = Histogram::default();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert_eq!(h.mean(), 25);
    }

    #[test]
    fn quantiles_are_octave_accurate() {
        let h = Histogram::default();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // p50 lands in the 1 µs octave, p99 in the 1 ms octave.
        assert!((512..2048).contains(&p50), "p50 {p50}");
        assert!((524_288..2_097_152).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let h = Histogram::default();
        h.record(100);
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(0.99), 100);
    }
}
