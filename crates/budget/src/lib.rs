//! Cooperative execution budgets for long-running pipeline stages.
//!
//! A [`Budget`] bundles three independent limits:
//!
//! * a **wall-clock deadline** (absolute [`Instant`]),
//! * an **atomic cancel token** ([`CancelToken`]) that any thread can trip,
//! * an optional **work quota** (an abstract unit count — solver leaves,
//!   shot batches, characterization bins — charged via [`Budget::charge`]).
//!
//! The contract is *cooperative*: nothing is preempted. Long-running code
//! polls [`Budget::exhausted`] at coarse checkpoints (a decision point, a
//! shot-batch boundary, a characterization bin) and, when the budget is
//! gone, stops cleanly and returns its best-effort partial result tagged
//! with how far it got. Checkpoints are cheap — a relaxed atomic load plus
//! (at most) one `Instant::now` — so they can sit inside hot loops as long
//! as the loop body does real work between polls.
//!
//! Budgets are `Clone`: clones share the same cancel token and quota
//! counter, so a budget handed down through `core → smt/sim/charac` keeps
//! one coherent limit across layers.
//!
//! ```
//! use std::time::Duration;
//! use xtalk_budget::{Budget, Exhausted};
//!
//! let budget = Budget::with_deadline(Duration::from_millis(0));
//! std::thread::sleep(Duration::from_millis(1));
//! assert_eq!(budget.exhausted(), Some(Exhausted::Deadline));
//!
//! let budget = Budget::unlimited();
//! assert_eq!(budget.exhausted(), None);
//! budget.cancel_token().cancel();
//! assert_eq!(budget.exhausted(), Some(Exhausted::Cancelled));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped the work.
///
/// Ordered by how deliberate the stop was: an explicit cancel beats a
/// deadline beats a quota, and [`Budget::exhausted`] reports the first
/// one that holds in that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// The cancel token was tripped (client cancel, server shutdown).
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The work quota was spent.
    Quota,
}

impl Exhausted {
    /// Stable wire/metric label (`"cancelled"`, `"deadline"`, `"quota"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Exhausted::Cancelled => "cancelled",
            Exhausted::Deadline => "deadline",
            Exhausted::Quota => "quota",
        }
    }
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shareable cancellation flag.
///
/// Cheap to clone (one `Arc`); tripping it is sticky — there is no
/// un-cancel. The serve layer keeps one per in-flight job so a `cancel`
/// request can reach work already running on a worker thread.
#[derive(Clone, Default, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cooperative execution budget: deadline + cancel token + work quota.
///
/// Clones share the cancel token and the quota counter; the deadline is a
/// plain `Instant` copied into each clone. [`Budget::unlimited`] never
/// exhausts (short of an explicit cancel) and is the default handed to
/// code paths with no caller-imposed limit.
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: CancelToken,
    /// Work units spent so far, shared across clones.
    spent: Arc<AtomicU64>,
    quota: Option<u64>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no deadline and no quota; only an explicit cancel
    /// can exhaust it.
    pub fn unlimited() -> Budget {
        Budget {
            deadline: None,
            cancel: CancelToken::new(),
            spent: Arc::new(AtomicU64::new(0)),
            quota: None,
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Budget {
        Budget { deadline: Some(Instant::now() + timeout), ..Budget::unlimited() }
    }

    /// A budget expiring at an absolute instant (used by the serve layer
    /// to pin the deadline at request arrival, before queue wait).
    pub fn with_deadline_at(deadline: Instant) -> Budget {
        Budget { deadline: Some(deadline), ..Budget::unlimited() }
    }

    /// Adds a work quota (abstract units, charged via [`charge`]).
    ///
    /// [`charge`]: Budget::charge
    pub fn with_quota(mut self, quota: u64) -> Budget {
        self.quota = Some(quota);
        self
    }

    /// Replaces the cancel token with an externally held one, so a
    /// registry (e.g. the serve cancel table) can trip this budget.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// The shared cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline; `None` means unlimited. A deadline
    /// in the past yields `Some(Duration::ZERO)`.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Charges `units` of work against the quota. Returns the reason if
    /// the budget is now (or already was) exhausted. Charging is allowed
    /// to overshoot — the *next* checkpoint sees the quota spent.
    pub fn charge(&self, units: u64) -> Option<Exhausted> {
        self.spent.fetch_add(units, Ordering::Relaxed);
        self.exhausted()
    }

    /// Work units charged so far across all clones.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The checkpoint poll: `None` while the budget holds, or the first
    /// exhausted limit (cancel ≻ deadline ≻ quota).
    pub fn exhausted(&self) -> Option<Exhausted> {
        if self.cancel.is_cancelled() {
            return Some(Exhausted::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exhausted::Deadline);
            }
        }
        if let Some(quota) = self.quota {
            if self.spent.load(Ordering::Relaxed) >= quota {
                return Some(Exhausted::Quota);
            }
        }
        None
    }

    /// `true` while the budget still holds.
    pub fn ok(&self) -> bool {
        self.exhausted().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert_eq!(b.exhausted(), None);
        assert!(b.ok());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.charge(1 << 40), None);
    }

    #[test]
    fn past_deadline_exhausts() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.exhausted(), Some(Exhausted::Deadline));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_holds() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert_eq!(b.exhausted(), None);
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let b = Budget::unlimited();
        let clone = b.clone();
        b.cancel_token().cancel();
        assert_eq!(clone.exhausted(), Some(Exhausted::Cancelled));
        // Cancel wins over a spent quota.
        let b = Budget::unlimited().with_quota(0);
        b.cancel_token().cancel();
        assert_eq!(b.exhausted(), Some(Exhausted::Cancelled));
    }

    #[test]
    fn quota_spends_across_clones() {
        let b = Budget::unlimited().with_quota(10);
        let clone = b.clone();
        assert_eq!(b.charge(4), None);
        assert_eq!(clone.charge(5), None);
        assert_eq!(b.charge(1), Some(Exhausted::Quota));
        assert_eq!(b.spent(), 10);
        assert_eq!(clone.exhausted(), Some(Exhausted::Quota));
    }

    #[test]
    fn external_token_reaches_budget() {
        let token = CancelToken::new();
        let b = Budget::with_deadline(Duration::from_secs(3600)).with_cancel_token(token.clone());
        assert!(b.ok());
        token.cancel();
        assert_eq!(b.exhausted(), Some(Exhausted::Cancelled));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Exhausted::Cancelled.to_string(), "cancelled");
        assert_eq!(Exhausted::Deadline.as_str(), "deadline");
        assert_eq!(Exhausted::Quota.as_str(), "quota");
    }
}
