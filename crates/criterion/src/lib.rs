//! Offline, dependency-free stand-in for the slice of `criterion` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal wall-clock benchmark harness under the same crate name. It
//! keeps the API shape — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`
//! — and reports mean/min wall time per iteration to stdout. There is no
//! statistical analysis, HTML report, or outlier detection.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label()), self.sample_size, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.label()), self.sample_size, |b| {
            f(b, input);
        });
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Hands the routine under test to the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    min: Duration,
}

impl Bencher {
    /// A standalone bencher for use outside `Criterion` drivers (e.g.
    /// asserting timing properties inside ordinary tests).
    pub fn new(iters: u64) -> Self {
        assert!(iters > 0, "need at least one iteration");
        Bencher { iters: iters.max(1), elapsed: Duration::ZERO, min: Duration::MAX }
    }

    /// Total wall time of the last [`Bencher::iter`] run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Fastest single iteration of the last [`Bencher::iter`] run
    /// (`Duration::MAX` if no loop ran yet).
    pub fn min_time(&self) -> Duration {
        self.min
    }

    /// Mean wall time per iteration of the last [`Bencher::iter`] run.
    pub fn mean_time(&self) -> Duration {
        self.elapsed / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX)
    }

    /// Times `f`, called `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.elapsed = total;
        self.min = min;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO, min: Duration::MAX };
    f(&mut b);
    if b.elapsed == Duration::ZERO && b.min == Duration::MAX {
        println!("{name:<40} (no timing loop ran)");
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "{name:<40} mean {:>12} min {:>12} ({} iters)",
        format_time(mean),
        format_time(b.min.as_secs_f64()),
        b.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into one runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // warm-up + sample_size timed iterations
        assert_eq!(calls, 31);
    }

    #[test]
    fn standalone_bencher_reports_timings() {
        let mut b = Bencher::new(8);
        b.iter(|| std::thread::sleep(Duration::from_micros(100)));
        assert!(b.elapsed() >= Duration::from_micros(800));
        assert!(b.min_time() >= Duration::from_micros(100));
        assert!(b.mean_time() >= b.min_time());
        assert!(b.elapsed() >= b.mean_time());
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                total += x;
            })
        });
        group.finish();
        assert_eq!(total, 6 * 7);
    }
}
