//! End-to-end characterization: run a policy's experiment plan against a
//! device and assemble the error-rate tables the scheduler consumes.

use crate::policy::{CharacterizationPolicy, TimeModel};
use crate::rb::RbConfig;
use crate::srb::run_srb_bin;
use std::collections::BTreeMap;
use xtalk_budget::Budget;
use xtalk_device::{Device, Edge};

/// Estimated error rates: the compiler-facing product of characterization
/// (paper Figure 2). Independent rates come from daily calibration;
/// conditional rates from SRB.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Characterization {
    independent: BTreeMap<Edge, f64>,
    conditional: BTreeMap<(Edge, Edge), f64>,
}

impl Characterization {
    /// An empty characterization.
    pub fn new() -> Self {
        Characterization::default()
    }

    /// A characterization with *perfect* knowledge, taken straight from a
    /// device's ground truth. Useful for tests and upper-bound studies —
    /// a real compiler only ever sees estimates.
    pub fn from_ground_truth(device: &Device) -> Self {
        let mut c = Characterization::new();
        for &e in device.topology().edges() {
            c.set_independent(e, device.calibration().cx_error(e));
        }
        for ((affected, aggressor), _) in device.crosstalk().iter() {
            c.set_conditional(
                affected,
                aggressor,
                device.crosstalk().conditional_error(device.calibration(), affected, aggressor),
            );
        }
        c
    }

    /// Records an independent error rate.
    pub fn set_independent(&mut self, e: Edge, rate: f64) {
        self.independent.insert(e, rate.clamp(0.0, 1.0));
    }

    /// Records a conditional error rate `E(of | given)`.
    pub fn set_conditional(&mut self, of: Edge, given: Edge, rate: f64) {
        self.conditional.insert((of, given), rate.clamp(0.0, 1.0));
    }

    /// Independent error rate `E(e)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` was never characterized; see
    /// [`Characterization::try_independent`] for the fallible form.
    pub fn independent(&self, e: Edge) -> f64 {
        self.try_independent(e).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Independent error rate `E(e)`, or an error if the edge was never
    /// characterized.
    pub fn try_independent(&self, e: Edge) -> Result<f64, CharacError> {
        self.independent.get(&e).copied().ok_or(CharacError::Uncharacterized(e))
    }

    /// Conditional rate `E(of | given)`, if measured.
    pub fn conditional(&self, of: Edge, given: Edge) -> Option<f64> {
        self.conditional.get(&(of, given)).copied()
    }

    /// `E(of | given)` falling back to the independent rate when the pair
    /// was not measured (i.e. assumed interference-free).
    pub fn conditional_or_independent(&self, of: Edge, given: Edge) -> f64 {
        self.conditional(of, given).unwrap_or_else(|| self.independent(of))
    }

    /// Unordered pairs whose conditional rate exceeds
    /// `threshold × independent` in either direction — the paper's "high
    /// crosstalk pairs" (threshold 3 in Figure 3).
    pub fn high_pairs(&self, threshold: f64) -> Vec<(Edge, Edge)> {
        let mut out: Vec<(Edge, Edge)> = Vec::new();
        for (&(of, given), &cond) in &self.conditional {
            if let Some(&ind) = self.independent.get(&of) {
                if cond > threshold * ind {
                    let key = if of < given { (of, given) } else { (given, of) };
                    if !out.contains(&key) {
                        out.push(key);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of measured conditional entries (directed).
    pub fn num_conditional(&self) -> usize {
        self.conditional.len()
    }

    /// Iterates measured conditional entries.
    pub fn conditional_iter(&self) -> impl Iterator<Item = ((Edge, Edge), f64)> + '_ {
        self.conditional.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates measured independent entries, in edge order.
    pub fn independent_iter(&self) -> impl Iterator<Item = (Edge, f64)> + '_ {
        self.independent.iter().map(|(&k, &v)| (k, v))
    }
}

impl xtalk_pass::ContentHash for Characterization {
    /// Structural hash over both rate tables (`BTreeMap` iteration order
    /// is deterministic), so scheduling artifacts derived from different
    /// characterizations never share a cache row.
    fn content_hash(&self, h: &mut xtalk_pass::Fnv1a) {
        h.write_usize(self.independent.len());
        for (e, v) in &self.independent {
            e.content_hash(h);
            h.write_f64(*v);
        }
        h.write_usize(self.conditional.len());
        for ((of, given), v) in &self.conditional {
            of.content_hash(h);
            given.content_hash(h);
            h.write_f64(*v);
        }
    }
}

/// Failure looking up characterization data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CharacError {
    /// The queried edge has no measured independent rate.
    Uncharacterized(Edge),
}

impl std::fmt::Display for CharacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharacError::Uncharacterized(e) => write!(f, "no independent rate for {e}"),
        }
    }
}

impl std::error::Error for CharacError {}

/// Cost accounting of a characterization run.
#[derive(Clone, PartialEq, Debug)]
pub struct CharacterizationReport {
    /// Policy display name.
    pub policy: &'static str,
    /// Machine experiments performed.
    pub num_experiments: usize,
    /// SRB pairs measured (across all experiments).
    pub num_pairs: usize,
    /// Total circuit executions.
    pub executions: u64,
    /// Estimated machine time in hours under the [`TimeModel`].
    pub machine_time_hours: f64,
    /// Experiment bins actually run (RB + SRB); equals `bins_total`
    /// unless a [`Budget`] truncated the sweep.
    pub bins_completed: usize,
    /// Experiment bins the plan called for (RB + SRB).
    pub bins_total: usize,
    /// `true` iff every planned bin ran. A partial characterization only
    /// covers the edges/pairs of its completed bins; the serve layer
    /// treats it as a failed rebuild and rides the degradation ladder.
    pub complete: bool,
}

/// Runs the policy's SRB plan against `device` (simulated), producing the
/// compiler-facing [`Characterization`] plus its cost report.
///
/// Independent error rates are measured by *parallel isolated RB* (edges
/// packed ≥2 hops apart, one experiment per bin) — the same protocol IBM
/// runs daily. This keeps the independent and conditional estimates
/// consistently biased (both include decoherence and 1q-gate
/// contributions accrued during the sequence), so the paper's
/// `E(gᵢ|gⱼ) > 3·E(gᵢ)` criterion compares like with like; conditional
/// rates then come from the policy's simultaneous-RB plan.
pub fn characterize(
    device: &Device,
    policy: &CharacterizationPolicy,
    config: &RbConfig,
    time_model: &TimeModel,
) -> (Characterization, CharacterizationReport) {
    characterize_budgeted(device, policy, config, time_model, &Budget::unlimited())
}

/// [`characterize`] under a cooperative [`Budget`], polled before each
/// experiment bin (an RB bin or an SRB bin — the natural checkpoint: a
/// bin is one machine experiment). On exhaustion the sweep stops and the
/// partial [`Characterization`] covers exactly the completed bins, with
/// `report.bins_completed < report.bins_total` and
/// `report.complete == false`.
pub fn characterize_budgeted(
    device: &Device,
    policy: &CharacterizationPolicy,
    config: &RbConfig,
    time_model: &TimeModel,
    budget: &Budget,
) -> (Characterization, CharacterizationReport) {
    let _span = xtalk_obs::span("charac.characterize");
    let plan = policy.experiments(device.topology(), config.seed);
    let mut charac = Characterization::new();
    let edge_bins = crate::binpack::pack_edges(
        device.topology(),
        device.topology().edges(),
        2,
        50,
        config.seed,
    );
    let bins_total = edge_bins.len() + plan.len();
    let mut bins_completed = 0usize;
    // One RB circuit per (length, sequence) per bin; SRB runs the same
    // grid on each pair's two edges plus the simultaneous variant.
    let circuits_per_bin = (config.lengths.len() * config.seqs_per_length) as u64;
    for bin in &edge_bins {
        if budget.exhausted().is_some() {
            break;
        }
        let _bin_span = xtalk_obs::span("charac.rb_bin");
        xtalk_obs::counter!("charac.rb.circuits", circuits_per_bin);
        xtalk_obs::counter!("charac.rb.shots", circuits_per_bin * config.shots);
        for (e, rate) in crate::srb::run_rb_bin(device, bin, config) {
            charac.set_independent(e, rate);
        }
        bins_completed += 1;
        budget.charge(1);
    }

    let mut num_pairs = 0;
    let mut experiments_run = 0usize;
    for bin in &plan {
        if budget.exhausted().is_some() {
            break;
        }
        let _bin_span = xtalk_obs::span("charac.srb_bin");
        xtalk_obs::counter!("charac.srb.pairs", bin.len() as u64);
        xtalk_obs::counter!("charac.srb.circuits", circuits_per_bin);
        xtalk_obs::counter!("charac.srb.shots", circuits_per_bin * config.shots);
        num_pairs += bin.len();
        for out in run_srb_bin(device, bin, config) {
            charac.set_conditional(out.first, out.second, out.first_given_second);
            charac.set_conditional(out.second, out.first, out.second_given_first);
        }
        bins_completed += 1;
        experiments_run += 1;
        budget.charge(1);
    }

    let complete = bins_completed == bins_total;
    if !complete {
        xtalk_obs::counter!("charac.truncated", 1);
    }
    let report = CharacterizationReport {
        policy: policy.name(),
        num_experiments: plan.len(),
        num_pairs,
        executions: experiments_run as u64 * config.executions(),
        machine_time_hours: time_model.hours(experiments_run, config.executions()),
        bins_completed,
        bins_total,
        complete,
    };
    (charac, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RbConfig {
        RbConfig { lengths: vec![2, 8, 16, 26], seqs_per_length: 3, shots: 96, seed: 5 }
    }

    #[test]
    fn ground_truth_characterization_matches_device() {
        let device = Device::poughkeepsie(3);
        let c = Characterization::from_ground_truth(&device);
        let e = Edge::new(10, 15);
        assert_eq!(c.independent(e), 0.01);
        assert!((c.conditional(e, Edge::new(11, 12)).unwrap() - 0.11).abs() < 1e-12);
        assert_eq!(c.high_pairs(3.0).len(), 5);
    }

    #[test]
    fn fallback_to_independent() {
        let device = Device::poughkeepsie(3);
        let c = Characterization::from_ground_truth(&device);
        let of = Edge::new(0, 1);
        let far = Edge::new(17, 18);
        assert_eq!(c.conditional(of, far), None);
        assert_eq!(c.conditional_or_independent(of, far), c.independent(of));
    }

    #[test]
    fn measured_characterization_finds_planted_pairs() {
        // Use a small line device with one strong planted pair so the
        // test runs fast.
        let mut device = Device::line(6, 9);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.012);
        cal.set_cx_error(Edge::new(2, 3), 0.015);
        cal.set_cx_error(Edge::new(4, 5), 0.012);
        device = device.with_calibration(cal);
        let mut xt = xtalk_device::CrosstalkMap::new();
        xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), 9.0, 7.0);
        let device = device.with_crosstalk(xt);

        let (charac, report) = characterize(
            &device,
            &CharacterizationPolicy::OneHop,
            &small_config(),
            &TimeModel::default(),
        );
        let high = charac.high_pairs(3.0);
        assert!(
            high.contains(&(Edge::new(0, 1), Edge::new(2, 3))),
            "planted pair not detected: {high:?}"
        );
        assert!(report.num_experiments > 0);
        assert_eq!(report.policy, "Opt 1: One hop");
    }

    #[test]
    fn report_costs_scale_with_plan() {
        let device = Device::line(8, 1);
        let tm = TimeModel::default();
        let cfg = small_config();
        let (_, all) =
            characterize(&device, &CharacterizationPolicy::AllPairs, &cfg, &tm);
        let (_, packed) = characterize(
            &device,
            &CharacterizationPolicy::OneHopBinPacked { k_hops: 2 },
            &cfg,
            &tm,
        );
        assert!(packed.num_experiments < all.num_experiments);
        assert!(packed.machine_time_hours < all.machine_time_hours);
        assert_eq!(
            all.executions,
            all.num_experiments as u64 * cfg.executions()
        );
    }

    #[test]
    fn complete_sweep_reports_all_bins() {
        let device = Device::line(6, 1);
        let (_, report) = characterize(
            &device,
            &CharacterizationPolicy::OneHop,
            &small_config(),
            &TimeModel::default(),
        );
        assert!(report.complete);
        assert_eq!(report.bins_completed, report.bins_total);
        assert!(report.bins_total > 0);
    }

    #[test]
    fn cancelled_budget_yields_empty_partial() {
        let device = Device::line(6, 1);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let (charac, report) = characterize_budgeted(
            &device,
            &CharacterizationPolicy::OneHop,
            &small_config(),
            &TimeModel::default(),
            &budget,
        );
        assert!(!report.complete);
        assert_eq!(report.bins_completed, 0);
        assert_eq!(report.executions, 0);
        assert_eq!(charac.num_conditional(), 0);
        assert!(charac.try_independent(Edge::new(0, 1)).is_err());
    }

    #[test]
    fn quota_budget_stops_between_bins() {
        let device = Device::line(8, 1);
        let budget = Budget::unlimited().with_quota(2);
        let (_, report) = characterize_budgeted(
            &device,
            &CharacterizationPolicy::AllPairs,
            &small_config(),
            &TimeModel::default(),
            &budget,
        );
        assert!(!report.complete);
        assert_eq!(report.bins_completed, 2);
        assert!(report.bins_completed < report.bins_total);
    }

    #[test]
    #[should_panic(expected = "no independent rate")]
    fn missing_edge_panics() {
        Characterization::new().independent(Edge::new(0, 1));
    }

    #[test]
    fn try_independent_returns_typed_error() {
        let mut c = Characterization::new();
        let e = Edge::new(0, 1);
        assert_eq!(c.try_independent(e), Err(CharacError::Uncharacterized(e)));
        assert_eq!(
            c.try_independent(e).unwrap_err().to_string(),
            format!("no independent rate for {e}")
        );
        c.set_independent(e, 0.02);
        assert_eq!(c.try_independent(e), Ok(0.02));
    }
}
