//! Two-qubit randomized benchmarking against the simulator.

use crate::fit::{error_per_clifford, fit_decay_fixed_offset, DecayFit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xtalk_clifford::group::{two_qubit_cliffords, LocalGate};
use xtalk_clifford::random::uniform_element;
use xtalk_clifford::CliffordTableau;
use xtalk_device::{Device, Edge};
use xtalk_ir::{Circuit, Qubit};
use xtalk_sim::{Executor, ExecutorConfig};

/// Randomized-benchmarking experiment parameters.
///
/// The paper's full scale (Section 8.1) is 100 random sequences of up to
/// 40 Cliffords with 1024 trials each; [`RbConfig::default`] is scaled
/// down so full-device characterization runs in seconds, and
/// [`RbConfig::paper_scale`] restores the published parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct RbConfig {
    /// Clifford sequence lengths to sample.
    pub lengths: Vec<usize>,
    /// Random sequences per length.
    pub seqs_per_length: usize,
    /// Trials (shots) per sequence.
    pub shots: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for RbConfig {
    fn default() -> Self {
        RbConfig { lengths: vec![2, 6, 12, 20, 30], seqs_per_length: 4, shots: 128, seed: 0 }
    }
}

impl RbConfig {
    /// The paper's published parameters: 100 sequences (20 per length
    /// across 5 lengths up to 40), 1024 trials.
    pub fn paper_scale() -> Self {
        RbConfig {
            lengths: vec![2, 8, 16, 28, 40],
            seqs_per_length: 20,
            shots: 1024,
            seed: 0,
        }
    }

    /// Total circuit executions this configuration costs per benchmarked
    /// gate (sequences × shots).
    pub fn executions(&self) -> u64 {
        (self.lengths.len() * self.seqs_per_length) as u64 * self.shots
    }
}

/// One random RB sequence on a pair of physical qubits: `m` uniform
/// two-qubit Cliffords followed by the inverse of their product, as native
/// gates, ending with measurement of both qubits into clbits
/// `(clbit_base, clbit_base+1)`.
///
/// Returns the circuit fragment (to be appended to a wider circuit) and
/// the number of CNOTs it contains.
pub fn rb_sequence(
    circuit: &mut Circuit,
    qa: Qubit,
    qb: Qubit,
    m: usize,
    clbit_base: u32,
    rng: &mut StdRng,
) -> usize {
    let group = two_qubit_cliffords();
    let mut total = CliffordTableau::identity(2);
    let mut cx = 0usize;
    let phys = [qa, qb];
    let emit = |circuit: &mut Circuit, gates: &[LocalGate], cx: &mut usize| {
        for instr in xtalk_clifford::instantiate(gates, &phys) {
            if instr.gate().is_two_qubit() {
                *cx += 1;
            }
            circuit.push(instr);
        }
    };
    for _ in 0..m {
        let idx = uniform_element(group, rng);
        let gates = group.decomposition(idx);
        emit(circuit, &gates, &mut cx);
        for (g, qs) in &gates {
            total.apply_gate(g, qs);
        }
    }
    let inv = group
        .inverse_decomposition(&total)
        .expect("product of group elements is in the group");
    emit(circuit, &inv, &mut cx);
    circuit.measure(qa, clbit_base).measure(qb, clbit_base + 1);
    cx
}

/// Runs single-qubit RB on `q`, estimating its 1q gate error rate.
///
/// The paper ignores single-qubit conditional errors because standalone
/// 1q error rates are ~10× below CNOT rates (Section 7.2); this measures
/// exactly that ratio on our devices.
pub fn run_rb_1q(device: &Device, q: u32, config: &RbConfig) -> f64 {
    use xtalk_clifford::group::single_qubit_cliffords;
    let n = device.topology().num_qubits();
    let group = single_qubit_cliffords();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1111 ^ u64::from(q));
    let mut data = Vec::new();
    let mut total_gates = 0usize;
    let mut total_cliffords = 0usize;
    for &m in &config.lengths {
        let mut mean = 0.0;
        for s in 0..config.seqs_per_length {
            let mut c = Circuit::new(n, 1);
            let mut total = CliffordTableau::identity(1);
            let phys = [Qubit::new(q)];
            for _ in 0..m {
                let idx = uniform_element(group, &mut rng);
                for instr in xtalk_clifford::instantiate(&group.decomposition(idx), &phys) {
                    // Virtual gates (S, Z, …) are error-free frame changes;
                    // only physical pulses carry error.
                    if !instr.gate().is_virtual() {
                        total_gates += 1;
                    }
                    c.push(instr);
                }
                for (g, qs) in group.decomposition(idx) {
                    total.apply_gate(&g, &qs);
                }
            }
            for instr in xtalk_clifford::instantiate(
                &group.inverse_decomposition(&total).expect("closed group"),
                &phys,
            ) {
                if !instr.gate().is_virtual() {
                    total_gates += 1;
                }
                c.push(instr);
            }
            total_cliffords += m + 1;
            c.measure(q, 0);
            // Execute what hardware would: the native lowering shared
            // with the compiler's LowerPass (1 physical pulse per
            // non-virtual Clifford gate, so EPC accounting is unchanged).
            let c = xtalk_pass::lower_to_native(&c);
            let sched = Executor::asap_schedule(&c, device.calibration());
            let cfg = ExecutorConfig {
                shots: config.shots,
                seed: config.seed ^ ((m as u64) << 16) ^ s as u64 ^ 0x11,
                ..Default::default()
            };
            let counts = Executor::with_config(device, cfg).run(&sched);
            mean += counts.probability(0);
        }
        data.push((m, mean / config.seqs_per_length as f64));
    }
    let fit = fit_decay_fixed_offset(&data, 0.5);
    let epc = error_per_clifford(fit.alpha, 1);
    let gates_per_clifford = (total_gates as f64 / total_cliffords as f64).max(1e-9);
    (epc / gates_per_clifford).clamp(0.0, 1.0)
}

/// Outcome of an RB run on one edge.
#[derive(Clone, PartialEq, Debug)]
pub struct RbOutcome {
    /// The benchmarked edge.
    pub edge: Edge,
    /// Decay fit of the survival curve.
    pub fit: DecayFit,
    /// Error per Clifford `(1−α)·3/4`.
    pub epc: f64,
    /// Estimated CNOT error: EPC divided by the measured mean CX count
    /// per Clifford (≈1.5).
    pub cnot_error: f64,
    /// Mean survival probability per sequence length.
    pub survival: Vec<(usize, f64)>,
}

/// Runs standard (isolated) two-qubit RB on `edge`, estimating its
/// independent CNOT error rate `E(g)`.
///
/// # Panics
///
/// Panics if `edge` is not in the device topology.
pub fn run_rb(device: &Device, edge: Edge, config: &RbConfig) -> RbOutcome {
    assert!(device.topology().has_edge(edge), "edge {edge} not in topology");
    let n = device.topology().num_qubits();
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ 0xda7a ^ ((edge.lo() as u64) << 32) ^ edge.hi() as u64,
    );
    let [qa, qb] = edge.qubits();

    let mut survival = Vec::new();
    let mut data = Vec::new();
    let mut total_cx = 0usize;
    let mut total_cliffords = 0usize;
    for &m in &config.lengths {
        let mut mean = 0.0;
        for s in 0..config.seqs_per_length {
            let mut c = Circuit::new(n, 2);
            total_cx += rb_sequence(&mut c, qa, qb, m, 0, &mut rng);
            total_cliffords += m + 1;
            let c = xtalk_pass::lower_to_native(&c);
            let sched = Executor::asap_schedule(&c, device.calibration());
            let cfg = ExecutorConfig {
                shots: config.shots,
                seed: config.seed ^ (m as u64) << 20 ^ s as u64,
                ..Default::default()
            };
            let counts = Executor::with_config(device, cfg).run(&sched);
            mean += counts.probability(0b00);
        }
        mean /= config.seqs_per_length as f64;
        survival.push((m, mean));
        data.push((m, mean));
    }
    let fit = fit_decay_fixed_offset(&data, 0.25);
    let epc = error_per_clifford(fit.alpha, 2);
    let cx_per_clifford = total_cx as f64 / total_cliffords as f64;
    RbOutcome {
        edge,
        fit,
        epc,
        cnot_error: epc / cx_per_clifford.max(1e-9),
        survival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_inverts_to_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Circuit::new(2, 2);
        rb_sequence(&mut c, Qubit::new(0), Qubit::new(1), 6, 0, &mut rng);
        // Strip measurements, check the unitary is identity.
        let mut unitary_only = Circuit::new(2, 0);
        for instr in c.iter().filter(|i| !i.gate().is_measurement()) {
            unitary_only.push(instr.clone());
        }
        assert!(CliffordTableau::from_circuit(&unitary_only).is_identity());
    }

    #[test]
    fn noiseless_rb_survival_is_one() {
        let device = Device::line(2, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = Circuit::new(2, 2);
        rb_sequence(&mut c, Qubit::new(0), Qubit::new(1), 10, 0, &mut rng);
        let sched = Executor::asap_schedule(&c, device.calibration());
        let cfg = ExecutorConfig {
            shots: 64,
            gate_noise: false,
            crosstalk: false,
            decoherence: false,
            readout_noise: false,
            compound_crosstalk: false,
            seed: 0,
        };
        let counts = Executor::with_config(&device, cfg).run(&sched);
        assert_eq!(counts.probability(0b00), 1.0);
    }

    #[test]
    fn rb_recovers_injected_cnot_error() {
        // Inject a known CNOT error on an isolated pair and check RB
        // estimates it within a loose tolerance. Decoherence/readout are
        // enabled, so expect some upward bias.
        let mut device = Device::line(2, 6);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.03);
        device = device.with_calibration(cal);
        let config = RbConfig { seqs_per_length: 6, shots: 256, ..Default::default() };
        let out = run_rb(&device, Edge::new(0, 1), &config);
        assert!(
            (out.cnot_error - 0.03).abs() < 0.015,
            "estimated {} vs injected 0.03",
            out.cnot_error
        );
        // Survival decays with length.
        assert!(out.survival.first().unwrap().1 > out.survival.last().unwrap().1);
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn foreign_edge_rejected() {
        let device = Device::line(3, 0);
        run_rb(&device, Edge::new(0, 2), &RbConfig::default());
    }

    #[test]
    fn one_qubit_rb_confirms_ten_x_gap() {
        // The paper's premise for pruning CanOlp to 2q gates: 1q error
        // rates sit ~10x below CNOT rates.
        let device = Device::line(2, 6);
        let config = RbConfig {
            lengths: vec![4, 16, 40, 80],
            seqs_per_length: 5,
            shots: 256,
            seed: 2,
        };
        let e1 = run_rb_1q(&device, 0, &config);
        let e2 = run_rb(&device, Edge::new(0, 1), &config).cnot_error;
        assert!(e1 > 0.0, "1q error should be measurable");
        assert!(
            e1 * 3.0 < e2,
            "1q error {e1} should sit well below CNOT error {e2}"
        );
    }

    #[test]
    fn executions_accounting() {
        let c = RbConfig::paper_scale();
        assert_eq!(c.executions(), 100 * 1024);
    }
}
