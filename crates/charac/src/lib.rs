//! Fast crosstalk characterization (paper Section 5 and 8.1).
//!
//! Crosstalk between two hardware CNOTs is measured by *simultaneous
//! randomized benchmarking* (SRB): run two-qubit RB on gate `gᵢ` while
//! also running it on `gⱼ`; if the conditional error rate `E(gᵢ|gⱼ)` far
//! exceeds the independent rate `E(gᵢ)`, the pair interferes. Measuring
//! every simultaneous pair is prohibitively expensive (>8 h of machine
//! time on a 20-qubit device), so the paper introduces three
//! optimizations, all implemented here:
//!
//! 1. **One-hop only** ([`policy::CharacterizationPolicy::OneHop`]) —
//!    dispersive coupling makes crosstalk a nearest-neighbor effect.
//! 2. **Bin-packed parallel SRB** ([`binpack`]) — pairs at least 2 hops
//!    apart are measured in the same experiment, packed by randomized
//!    first-fit.
//! 3. **High-crosstalk pairs only**
//!    ([`policy::CharacterizationPolicy::HighCrosstalkOnly`]) — the set of
//!    interfering pairs is stable day to day, so daily runs can restrict
//!    to it.
//!
//! The full flow ([`pipeline::characterize`]) runs against the simulator
//! and produces a [`pipeline::Characterization`] of estimated conditional
//! error rates — the input the crosstalk-adaptive scheduler consumes.

pub mod binpack;
pub mod fit;
pub mod irb;
pub mod pipeline;
pub mod policy;
pub mod rb;
pub mod srb;

pub use fit::{error_per_clifford, fit_decay, fit_decay_bootstrap, fit_decay_fixed_offset, DecayFit};
pub use pipeline::{characterize, characterize_budgeted, CharacError, Characterization, CharacterizationReport};
pub use policy::CharacterizationPolicy;
pub use rb::RbConfig;
