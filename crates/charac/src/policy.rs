//! Characterization policies: which SRB experiments to run (the paper's
//! baseline and its three optimizations) and what they cost in machine
//! time.

use crate::binpack;
use xtalk_device::{Edge, Topology};

/// Which simultaneous-RB experiments a characterization run performs.
#[derive(Clone, PartialEq, Debug)]
pub enum CharacterizationPolicy {
    /// Baseline: SRB on *every* pair of CNOTs that can be driven in
    /// parallel, one pair per experiment (>8 h of machine time on the
    /// paper's devices).
    AllPairs,
    /// Optimization 1: only pairs separated by exactly 1 hop.
    OneHop,
    /// Optimizations 1+2: 1-hop pairs, packed into parallel experiments
    /// (pairs at least `k_hops` apart share an experiment).
    OneHopBinPacked {
        /// Minimum separation between pairs within one experiment.
        k_hops: u32,
    },
    /// Optimizations 1+2+3: restrict to the known high-crosstalk pairs
    /// (stable day to day), bin-packed.
    HighCrosstalkOnly {
        /// Minimum separation between pairs within one experiment.
        k_hops: u32,
        /// Yesterday's high-crosstalk pairs (unordered).
        known_pairs: Vec<(Edge, Edge)>,
    },
}

impl CharacterizationPolicy {
    /// Short display name (used in Figure 10's legend).
    pub fn name(&self) -> &'static str {
        match self {
            CharacterizationPolicy::AllPairs => "All pairs",
            CharacterizationPolicy::OneHop => "Opt 1: One hop",
            CharacterizationPolicy::OneHopBinPacked { .. } => "Opt 2: One hop + bin packing",
            CharacterizationPolicy::HighCrosstalkOnly { .. } => {
                "Opt 3: Only high crosstalk pairs"
            }
        }
    }

    /// The experiment plan: each inner vector is one machine experiment
    /// (a set of SRB pairs measured simultaneously).
    pub fn experiments(&self, topo: &Topology, seed: u64) -> Vec<Vec<(Edge, Edge)>> {
        match self {
            CharacterizationPolicy::AllPairs => {
                topo.simultaneous_pairs().into_iter().map(|p| vec![p]).collect()
            }
            CharacterizationPolicy::OneHop => {
                topo.pairs_at_distance(1).into_iter().map(|p| vec![p]).collect()
            }
            CharacterizationPolicy::OneHopBinPacked { k_hops } => {
                binpack::pack(topo, &topo.pairs_at_distance(1), *k_hops, 50, seed)
            }
            CharacterizationPolicy::HighCrosstalkOnly { k_hops, known_pairs } => {
                binpack::pack(topo, known_pairs, *k_hops, 50, seed)
            }
        }
    }
}

/// Machine-time accounting for a characterization run.
///
/// The paper reports ~22.6 M circuit executions for 221 all-pairs SRB
/// experiments taking over 8 hours, i.e. ≈1.27 ms per execution at
/// current IBMQ rates; [`TimeModel::default`] uses that figure.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimeModel {
    /// Wall-clock seconds consumed per circuit execution (one trial).
    pub seconds_per_execution: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel { seconds_per_execution: 8.0 * 3600.0 / 22.6e6 }
    }
}

impl TimeModel {
    /// Total machine hours for `num_experiments`, each costing
    /// `executions_per_experiment` trials.
    pub fn hours(&self, num_experiments: usize, executions_per_experiment: u64) -> f64 {
        num_experiments as f64 * executions_per_experiment as f64 * self.seconds_per_execution
            / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_counts_match_topology() {
        let topo = Topology::poughkeepsie();
        let plan = CharacterizationPolicy::AllPairs.experiments(&topo, 0);
        assert_eq!(plan.len(), topo.simultaneous_pairs().len());
        assert!(plan.iter().all(|bin| bin.len() == 1));
    }

    #[test]
    fn one_hop_is_much_smaller() {
        let topo = Topology::poughkeepsie();
        let all = CharacterizationPolicy::AllPairs.experiments(&topo, 0).len();
        let one = CharacterizationPolicy::OneHop.experiments(&topo, 0).len();
        // The paper reports ~5x reduction from optimization 1.
        assert!(one * 3 < all, "one-hop {one} vs all {all}");
    }

    #[test]
    fn bin_packing_reduces_experiments_further() {
        let topo = Topology::poughkeepsie();
        let one = CharacterizationPolicy::OneHop.experiments(&topo, 0).len();
        let packed =
            CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }.experiments(&topo, 0).len();
        assert!(packed < one, "packed {packed} vs one-hop {one}");
    }

    #[test]
    fn high_only_is_smallest() {
        let topo = Topology::poughkeepsie();
        let known = vec![
            (Edge::new(10, 15), Edge::new(11, 12)),
            (Edge::new(13, 14), Edge::new(18, 19)),
        ];
        let plan = CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: known }
            .experiments(&topo, 0);
        assert!(plan.len() <= 2);
        assert_eq!(plan.iter().map(|b| b.len()).sum::<usize>(), 2);
    }

    #[test]
    fn time_model_matches_paper_baseline() {
        // 221 experiments × 100 seqs × 1024 trials ≈ 8 hours.
        let tm = TimeModel::default();
        let hours = tm.hours(221, 100 * 1024);
        assert!((hours - 8.0).abs() < 0.1, "hours {hours}");
    }

    #[test]
    fn names_are_distinct() {
        let topoless = [
            CharacterizationPolicy::AllPairs.name(),
            CharacterizationPolicy::OneHop.name(),
            CharacterizationPolicy::OneHopBinPacked { k_hops: 2 }.name(),
            CharacterizationPolicy::HighCrosstalkOnly { k_hops: 2, known_pairs: vec![] }.name(),
        ];
        let mut uniq = topoless.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }
}
