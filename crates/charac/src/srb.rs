//! Simultaneous randomized benchmarking (SRB) of CNOT pairs.

use crate::fit::{error_per_clifford, fit_decay_fixed_offset};
use crate::rb::{rb_sequence, RbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xtalk_device::{Device, Edge};
use xtalk_ir::Circuit;
use xtalk_sim::{Executor, ExecutorConfig};

/// Conditional error rates measured by one SRB experiment on a pair of
/// simultaneously driven CNOTs.
#[derive(Clone, PartialEq, Debug)]
pub struct SrbOutcome {
    /// First edge of the pair.
    pub first: Edge,
    /// Second edge of the pair.
    pub second: Edge,
    /// `E(first | second)` — CNOT error of `first` while `second` runs.
    pub first_given_second: f64,
    /// `E(second | first)`.
    pub second_given_first: f64,
}

/// Runs SRB on every pair in `bin` *simultaneously* (one machine
/// experiment): each pair's two edges run independent RB sequences of the
/// same length at the same time, so crosstalk between them (and only
/// them — bins contain pairs ≥2 hops apart) shows up in the decay.
///
/// Returns one [`SrbOutcome`] per pair, in order.
///
/// # Panics
///
/// Panics if a bin entry shares a qubit between its edges or across
/// pairs, or references a non-edge.
pub fn run_srb_bin(device: &Device, bin: &[(Edge, Edge)], config: &RbConfig) -> Vec<SrbOutcome> {
    let topo = device.topology();
    let mut used: Vec<u32> = Vec::new();
    for &(a, b) in bin {
        assert!(topo.has_edge(a) && topo.has_edge(b), "bin references a non-edge");
        assert!(!a.shares_qubit(b), "pair {a},{b} shares a qubit");
        for e in [a, b] {
            for q in [e.lo(), e.hi()] {
                assert!(!used.contains(&q), "qubit {q} reused across the bin");
                used.push(q);
            }
        }
    }

    let n = topo.num_qubits();
    let edges: Vec<Edge> = bin.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5bb5);

    // survival[edge index] → (length, mean survival)
    let mut survival: Vec<Vec<(usize, f64)>> = vec![Vec::new(); edges.len()];
    let mut cx_counts = vec![0usize; edges.len()];
    let mut clifford_counts = vec![0usize; edges.len()];

    for &m in &config.lengths {
        let mut means = vec![0.0f64; edges.len()];
        for s in 0..config.seqs_per_length {
            let mut c = Circuit::new(n, 2 * edges.len());
            for (k, e) in edges.iter().enumerate() {
                let [qa, qb] = e.qubits();
                cx_counts[k] += rb_sequence(&mut c, qa, qb, m, 2 * k as u32, &mut rng);
                clifford_counts[k] += m + 1;
            }
            // Native lowering shared with the compiler's LowerPass.
            let c = xtalk_pass::lower_to_native(&c);
            let sched = Executor::asap_schedule(&c, device.calibration());
            let cfg = ExecutorConfig {
                shots: config.shots,
                seed: config.seed ^ ((m as u64) << 24) ^ ((s as u64) << 8) ^ 0xcafe,
                ..Default::default()
            };
            let counts = Executor::with_config(device, cfg).run(&sched);
            // Survival of edge k: both of its clbits read 0.
            for (k, mean) in means.iter_mut().enumerate() {
                let mask: u64 = 0b11 << (2 * k);
                let mut p = 0.0;
                for (outcome, cnt) in counts.iter() {
                    if outcome & mask == 0 {
                        p += cnt as f64;
                    }
                }
                *mean += p / counts.shots() as f64;
            }
        }
        for (k, mean) in means.iter().enumerate() {
            survival[k].push((m, mean / config.seqs_per_length as f64));
        }
    }

    bin.iter()
        .enumerate()
        .map(|(p, &(a, b))| {
            let ka = 2 * p;
            let kb = 2 * p + 1;
            SrbOutcome {
                first: a,
                second: b,
                first_given_second: conditional_error(&survival[ka], cx_counts[ka], clifford_counts[ka]),
                second_given_first: conditional_error(&survival[kb], cx_counts[kb], clifford_counts[kb]),
            }
        })
        .collect()
}

/// Runs SRB on a single pair (one experiment).
pub fn run_srb_pair(device: &Device, a: Edge, b: Edge, config: &RbConfig) -> SrbOutcome {
    run_srb_bin(device, &[(a, b)], config)
        .pop()
        .expect("one pair yields one outcome")
}

/// Runs *independent* RB on several well-separated edges simultaneously
/// (one experiment), returning each edge's estimated CNOT error. This is
/// how daily independent-rate calibration is parallelized; callers should
/// pack the edges with [`crate::binpack::pack_edges`] first so that no
/// two interfere.
///
/// # Panics
///
/// Panics if edges share qubits or reference non-edges.
pub fn run_rb_bin(device: &Device, edges: &[Edge], config: &RbConfig) -> Vec<(Edge, f64)> {
    let topo = device.topology();
    let mut used: Vec<u32> = Vec::new();
    for &e in edges {
        assert!(topo.has_edge(e), "bin references a non-edge");
        for q in [e.lo(), e.hi()] {
            assert!(!used.contains(&q), "qubit {q} reused across the bin");
            used.push(q);
        }
    }
    let n = topo.num_qubits();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1bb1);
    let mut survival: Vec<Vec<(usize, f64)>> = vec![Vec::new(); edges.len()];
    let mut cx_counts = vec![0usize; edges.len()];
    let mut clifford_counts = vec![0usize; edges.len()];

    for &m in &config.lengths {
        let mut means = vec![0.0f64; edges.len()];
        for s in 0..config.seqs_per_length {
            let mut c = Circuit::new(n, 2 * edges.len());
            for (k, e) in edges.iter().enumerate() {
                let [qa, qb] = e.qubits();
                cx_counts[k] += rb_sequence(&mut c, qa, qb, m, 2 * k as u32, &mut rng);
                clifford_counts[k] += m + 1;
            }
            let c = xtalk_pass::lower_to_native(&c);
            let sched = Executor::asap_schedule(&c, device.calibration());
            let cfg = ExecutorConfig {
                shots: config.shots,
                seed: config.seed ^ ((m as u64) << 24) ^ ((s as u64) << 8) ^ 0xbead,
                ..Default::default()
            };
            let counts = Executor::with_config(device, cfg).run(&sched);
            for (k, mean) in means.iter_mut().enumerate() {
                let mask: u64 = 0b11 << (2 * k);
                let mut p = 0.0;
                for (outcome, cnt) in counts.iter() {
                    if outcome & mask == 0 {
                        p += cnt as f64;
                    }
                }
                *mean += p / counts.shots() as f64;
            }
        }
        for (k, mean) in means.iter().enumerate() {
            survival[k].push((m, mean / config.seqs_per_length as f64));
        }
    }

    edges
        .iter()
        .enumerate()
        .map(|(k, &e)| (e, conditional_error(&survival[k], cx_counts[k], clifford_counts[k])))
        .collect()
}

fn conditional_error(survival: &[(usize, f64)], cx: usize, cliffords: usize) -> f64 {
    let fit = fit_decay_fixed_offset(survival, 0.25);
    let epc = error_per_clifford(fit.alpha, 2);
    let cx_per_clifford = (cx as f64 / cliffords as f64).max(1e-9);
    (epc / cx_per_clifford).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::CrosstalkMap;

    fn device_with_factor(factor: f64) -> Device {
        let mut device = Device::line(4, 21);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.012);
        cal.set_cx_error(Edge::new(2, 3), 0.012);
        device = device.with_calibration(cal);
        if factor > 1.0 {
            let mut xt = CrosstalkMap::new();
            xt.set_symmetric(Edge::new(0, 1), Edge::new(2, 3), factor, factor);
            device = device.with_crosstalk(xt);
        }
        device
    }

    #[test]
    fn srb_detects_high_crosstalk() {
        let device = device_with_factor(8.0);
        let config = RbConfig { seqs_per_length: 5, shots: 192, ..Default::default() };
        let out = run_srb_pair(&device, Edge::new(0, 1), Edge::new(2, 3), &config);
        // True conditional error = 0.012 × 8 ≈ 0.096.
        assert!(
            out.first_given_second > 0.05,
            "conditional {} should reflect the 8x factor",
            out.first_given_second
        );
        assert!(out.second_given_first > 0.05);
    }

    #[test]
    fn srb_on_clean_pair_matches_independent() {
        let device = device_with_factor(1.0);
        let config = RbConfig { seqs_per_length: 5, shots: 192, ..Default::default() };
        let out = run_srb_pair(&device, Edge::new(0, 1), Edge::new(2, 3), &config);
        assert!(
            out.first_given_second < 0.035,
            "clean pair conditional {} too high",
            out.first_given_second
        );
    }

    #[test]
    #[should_panic(expected = "shares a qubit")]
    fn shared_qubit_pair_rejected() {
        let device = Device::line(3, 0);
        run_srb_pair(&device, Edge::new(0, 1), Edge::new(1, 2), &RbConfig::default());
    }

    #[test]
    #[should_panic(expected = "reused across the bin")]
    fn overlapping_bin_rejected() {
        let device = Device::line(6, 0);
        run_srb_bin(
            &device,
            &[
                (Edge::new(0, 1), Edge::new(2, 3)),
                (Edge::new(2, 3), Edge::new(4, 5)),
            ],
            &RbConfig::default(),
        );
    }
}
