//! Interleaved randomized benchmarking (IRB).
//!
//! Standard RB estimates the *average* error of the Clifford set; IRB
//! isolates one specific gate by interleaving it between the random
//! Cliffords of a second sequence set. The ratio of the two decay
//! constants bounds that gate's error:
//! `r_gate = (d−1)/d · (1 − α_int/α_ref)`.
//!
//! The paper itself uses plain SRB, but IRB is the natural refinement for
//! per-gate conditional errors and ships in the same Ignis toolbox the
//! paper builds on, so the reproduction carries it too.

use crate::fit::{fit_decay_fixed_offset, DecayFit};
use crate::rb::RbConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xtalk_clifford::group::two_qubit_cliffords;
use xtalk_clifford::random::uniform_element;
use xtalk_clifford::{instantiate, CliffordTableau};
use xtalk_device::{Device, Edge};
use xtalk_ir::{Circuit, Gate};
use xtalk_sim::{Executor, ExecutorConfig};

/// Result of an interleaved-RB experiment on one CNOT.
#[derive(Clone, PartialEq, Debug)]
pub struct IrbOutcome {
    /// The benchmarked edge.
    pub edge: Edge,
    /// Reference (plain RB) decay.
    pub reference: DecayFit,
    /// Interleaved decay.
    pub interleaved: DecayFit,
    /// The IRB estimate of the CNOT's error rate.
    pub gate_error: f64,
}

/// Runs interleaved RB for the CNOT on `edge`: a reference sequence set
/// of `m` random two-qubit Cliffords, and an interleaved set where the
/// target CNOT follows every random Clifford. Both end with the exact
/// inverse, so noiseless survival is 1.
///
/// # Panics
///
/// Panics if `edge` is not in the topology.
pub fn run_irb(device: &Device, edge: Edge, config: &RbConfig) -> IrbOutcome {
    assert!(device.topology().has_edge(edge), "edge {edge} not in topology");
    let n = device.topology().num_qubits();
    let group = two_qubit_cliffords();
    let [qa, qb] = edge.qubits();
    let phys = [qa, qb];
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ 0x12b ^ ((edge.lo() as u64) << 32) ^ edge.hi() as u64,
    );

    let run_set = |interleave: bool, rng: &mut StdRng| -> DecayFit {
        let mut data = Vec::new();
        for &m in &config.lengths {
            let mut mean = 0.0;
            for s in 0..config.seqs_per_length {
                let mut c = Circuit::new(n, 2);
                let mut total = CliffordTableau::identity(2);
                for _ in 0..m {
                    let idx = uniform_element(group, rng);
                    for instr in instantiate(&group.decomposition(idx), &phys) {
                        c.push(instr);
                    }
                    for (g, qs) in group.decomposition(idx) {
                        total.apply_gate(&g, &qs);
                    }
                    if interleave {
                        c.push(xtalk_ir::Instruction::two_qubit(Gate::Cx, qa, qb));
                        total.apply_gate(&Gate::Cx, &[0, 1]);
                    }
                }
                for instr in instantiate(
                    &group.inverse_decomposition(&total).expect("closed group"),
                    &phys,
                ) {
                    c.push(instr);
                }
                c.measure(qa, 0).measure(qb, 1);
                let sched = Executor::asap_schedule(&c, device.calibration());
                let cfg = ExecutorConfig {
                    shots: config.shots,
                    seed: config.seed
                        ^ ((m as u64) << 24)
                        ^ ((s as u64) << 8)
                        ^ u64::from(interleave),
                    ..Default::default()
                };
                let counts = Executor::with_config(device, cfg).run(&sched);
                mean += counts.probability(0b00);
            }
            data.push((m, mean / config.seqs_per_length as f64));
        }
        fit_decay_fixed_offset(&data, 0.25)
    };

    let reference = run_set(false, &mut rng);
    let interleaved = run_set(true, &mut rng);
    let ratio = (interleaved.alpha / reference.alpha.max(1e-9)).clamp(0.0, 1.0);
    let gate_error = (0.75 * (1.0 - ratio)).clamp(0.0, 1.0);
    IrbOutcome { edge, reference, interleaved, gate_error }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RbConfig {
        RbConfig { lengths: vec![2, 6, 12, 20], seqs_per_length: 5, shots: 192, seed: 4 }
    }

    #[test]
    fn irb_recovers_injected_cnot_error() {
        let mut device = Device::line(2, 9);
        let mut cal = device.calibration().clone();
        cal.set_cx_error(Edge::new(0, 1), 0.04);
        device = device.with_calibration(cal);
        let out = run_irb(&device, Edge::new(0, 1), &config());
        // IRB subtracts the reference decay, so the estimate should land
        // near the injected rate (tolerances loose at this budget).
        assert!(
            (out.gate_error - 0.04).abs() < 0.02,
            "estimated {} vs injected 0.04",
            out.gate_error
        );
        // Interleaving a noisy gate must accelerate the decay.
        assert!(out.interleaved.alpha < out.reference.alpha);
    }

    #[test]
    fn irb_ranks_gate_quality() {
        let mut results = Vec::new();
        for err in [0.01, 0.06] {
            let mut device = Device::line(2, 10);
            let mut cal = device.calibration().clone();
            cal.set_cx_error(Edge::new(0, 1), err);
            device = device.with_calibration(cal);
            results.push(run_irb(&device, Edge::new(0, 1), &config()).gate_error);
        }
        assert!(
            results[0] < results[1],
            "IRB must rank 1% below 6%: {results:?}"
        );
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn foreign_edge_rejected() {
        run_irb(&Device::line(3, 0), Edge::new(0, 2), &config());
    }
}
