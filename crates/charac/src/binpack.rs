//! Randomized first-fit bin packing of SRB experiments (the paper's
//! Optimization 2, Section 5.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_device::{Edge, Topology};

/// Distance between two SRB pairs: the minimum gate distance between any
/// edge of one and any edge of the other (`None` if disconnected).
pub fn pair_distance(
    topo: &Topology,
    a: (Edge, Edge),
    b: (Edge, Edge),
) -> Option<u32> {
    let mut best: Option<u32> = None;
    for x in [a.0, a.1] {
        for y in [b.0, b.1] {
            if let Some(d) = topo.edge_distance(x, y) {
                best = Some(best.map_or(d, |c| c.min(d)));
            }
        }
    }
    best
}

/// `true` if `pair` may join a bin whose members are `bin`: every member
/// must be at least `k_hops` away (and share no qubits, which distance
/// ≥ 1 already implies).
pub fn compatible(topo: &Topology, bin: &[(Edge, Edge)], pair: (Edge, Edge), k_hops: u32) -> bool {
    bin.iter().all(|&other| match pair_distance(topo, pair, other) {
        Some(d) => d >= k_hops,
        None => true, // disconnected components can't interfere
    })
}

/// Packs SRB pairs into parallel experiments by randomized first-fit:
/// shuffle, place each pair into the first compatible bin (opening a new
/// bin when none fits), repeat `attempts` times and keep the fewest bins.
///
/// # Panics
///
/// Panics if `attempts == 0`.
///
/// ```
/// use xtalk_charac::binpack::pack;
/// use xtalk_device::{Edge, Topology};
/// let topo = Topology::line(10);
/// // Two pairs 3 hops apart can share one experiment (k = 2).
/// let pairs = vec![
///     (Edge::new(0, 1), Edge::new(2, 3)),
///     (Edge::new(6, 7), Edge::new(8, 9)),
/// ];
/// let bins = pack(&topo, &pairs, 2, 10, 0);
/// assert_eq!(bins.len(), 1);
/// ```
pub fn pack(
    topo: &Topology,
    pairs: &[(Edge, Edge)],
    k_hops: u32,
    attempts: usize,
    seed: u64,
) -> Vec<Vec<(Edge, Edge)>> {
    assert!(attempts > 0, "need at least one packing attempt");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Vec<Vec<(Edge, Edge)>>> = None;

    for _ in 0..attempts {
        let mut order: Vec<(Edge, Edge)> = pairs.to_vec();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut bins: Vec<Vec<(Edge, Edge)>> = Vec::new();
        'pairs: for &p in &order {
            for bin in &mut bins {
                if compatible(topo, bin, p, k_hops) {
                    bin.push(p);
                    continue 'pairs;
                }
            }
            bins.push(vec![p]);
        }
        if best.as_ref().is_none_or(|b| bins.len() < b.len()) {
            best = Some(bins);
        }
    }
    best.expect("attempts > 0")
}

/// Packs single edges (for parallel *independent* RB) into bins whose
/// members are pairwise at least `k_hops` apart, by the same randomized
/// first-fit. Measuring well-separated gates simultaneously is
/// indistinguishable from isolated RB (that is Optimization 1's premise),
/// so the full device's independent rates cost only a few experiments.
///
/// # Panics
///
/// Panics if `attempts == 0`.
pub fn pack_edges(
    topo: &Topology,
    edges: &[Edge],
    k_hops: u32,
    attempts: usize,
    seed: u64,
) -> Vec<Vec<Edge>> {
    assert!(attempts > 0, "need at least one packing attempt");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xed6e);
    let mut best: Option<Vec<Vec<Edge>>> = None;
    for _ in 0..attempts {
        let mut order: Vec<Edge> = edges.to_vec();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut bins: Vec<Vec<Edge>> = Vec::new();
        'edges: for &e in &order {
            for bin in &mut bins {
                let ok = bin.iter().all(|&other| match topo.edge_distance(e, other) {
                    Some(d) => d >= k_hops,
                    None => true,
                });
                if ok {
                    bin.push(e);
                    continue 'edges;
                }
            }
            bins.push(vec![e]);
        }
        if best.as_ref().is_none_or(|b| bins.len() < b.len()) {
            best = Some(bins);
        }
    }
    best.expect("attempts > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_pairs_not_packed_together() {
        let topo = Topology::line(8);
        // These pairs are 1 hop apart (edges 2,3 and 4,5 are adjacent-ish).
        let pairs = vec![
            (Edge::new(0, 1), Edge::new(2, 3)),
            (Edge::new(4, 5), Edge::new(2, 3)),
        ];
        // Invalid anyway (shared edge 2,3 → distance 0); with k=2 they must
        // be in different bins.
        let bins = pack(&topo, &pairs, 2, 5, 0);
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn packing_preserves_all_pairs() {
        let topo = Topology::poughkeepsie();
        let pairs = topo.pairs_at_distance(1);
        let bins = pack(&topo, &pairs, 2, 20, 1);
        let total: usize = bins.iter().map(|b| b.len()).sum();
        assert_eq!(total, pairs.len());
        // Compaction: strictly fewer experiments than pairs.
        assert!(bins.len() < pairs.len(), "{} bins for {} pairs", bins.len(), pairs.len());
    }

    #[test]
    fn packed_bins_are_internally_compatible() {
        let topo = Topology::poughkeepsie();
        let pairs = topo.pairs_at_distance(1);
        for bin in pack(&topo, &pairs, 2, 10, 2) {
            for (i, &a) in bin.iter().enumerate() {
                for &b in &bin[i + 1..] {
                    let d = pair_distance(&topo, a, b).unwrap();
                    assert!(d >= 2, "pair distance {d} < 2 within a bin");
                }
            }
        }
    }

    #[test]
    fn more_attempts_never_worse() {
        let topo = Topology::boeblingen();
        let pairs = topo.pairs_at_distance(1);
        let one = pack(&topo, &pairs, 2, 1, 3).len();
        let many = pack(&topo, &pairs, 2, 50, 3).len();
        assert!(many <= one);
    }

    #[test]
    fn pair_distance_semantics() {
        let topo = Topology::line(10);
        let a = (Edge::new(0, 1), Edge::new(2, 3));
        let b = (Edge::new(5, 6), Edge::new(8, 9));
        // Closest endpoints: 3 and 5 → distance 2.
        assert_eq!(pair_distance(&topo, a, b), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one packing attempt")]
    fn zero_attempts_rejected() {
        pack(&Topology::line(4), &[], 2, 0, 0);
    }

    #[test]
    fn edge_packing_covers_and_separates() {
        let topo = Topology::poughkeepsie();
        let edges: Vec<Edge> = topo.edges().to_vec();
        let bins = pack_edges(&topo, &edges, 2, 20, 4);
        assert_eq!(bins.iter().map(|b| b.len()).sum::<usize>(), edges.len());
        assert!(bins.len() < edges.len(), "parallelization achieved");
        for bin in &bins {
            for (i, &a) in bin.iter().enumerate() {
                for &b in &bin[i + 1..] {
                    assert!(topo.edge_distance(a, b).unwrap() >= 2);
                }
            }
        }
    }
}
