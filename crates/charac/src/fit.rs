//! Exponential-decay fitting for randomized benchmarking.

/// The fitted model `y = A·α^m + B`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecayFit {
    /// Amplitude.
    pub a: f64,
    /// Offset (asymptote; ideally `1/2^n`).
    pub b: f64,
    /// Decay parameter per Clifford, in `(0, 1]`.
    pub alpha: f64,
    /// Root-mean-square residual of the fit.
    pub rmse: f64,
}

/// Fits survival data `(m, y)` to `y = A·α^m + B` by scanning `α` (for
/// each candidate the optimal `A`, `B` follow from linear least squares)
/// and refining the best candidate.
///
/// This is the standard RB analysis (the paper fits its SRB curves to the
/// same model, Section 4.2 / 8.1).
///
/// # Panics
///
/// Panics with fewer than 3 points or non-distinct sequence lengths.
///
/// ```
/// use xtalk_charac::fit_decay;
/// let data: Vec<(usize, f64)> =
///     (1..40).step_by(4).map(|m| (m, 0.6 * 0.97f64.powi(m as i32) + 0.25)).collect();
/// let fit = fit_decay(&data);
/// assert!((fit.alpha - 0.97).abs() < 1e-6);
/// assert!((fit.b - 0.25).abs() < 1e-6);
/// ```
pub fn fit_decay(data: &[(usize, f64)]) -> DecayFit {
    assert!(data.len() >= 3, "decay fit needs at least 3 points");
    let mut lengths: Vec<usize> = data.iter().map(|&(m, _)| m).collect();
    lengths.sort_unstable();
    lengths.dedup();
    assert!(lengths.len() >= 2, "decay fit needs at least 2 distinct lengths");

    // Coarse scan then two refinement passes around the best α.
    let mut best = evaluate(data, 0.5);
    let mut lo = 1e-4;
    let mut hi = 1.0;
    for _pass in 0..3 {
        let steps = 400;
        for i in 0..=steps {
            let alpha = lo + (hi - lo) * i as f64 / steps as f64;
            if !(1e-6..=1.0).contains(&alpha) {
                continue;
            }
            let cand = evaluate(data, alpha);
            if cand.rmse < best.rmse {
                best = cand;
            }
        }
        let width = (hi - lo) / steps as f64 * 4.0;
        lo = (best.alpha - width).max(1e-6);
        hi = (best.alpha + width).min(1.0);
    }
    best
}

/// Fits survival data to `y = A·α^m + B` with the offset `B` *fixed*
/// (for two-qubit RB the asymptote is known to be `1/4`). Far more
/// stable than the free fit when sequences and shots are scarce, which
/// is why the characterization pipeline uses it.
///
/// # Panics
///
/// Panics with fewer than 2 points.
pub fn fit_decay_fixed_offset(data: &[(usize, f64)], b: f64) -> DecayFit {
    assert!(data.len() >= 2, "decay fit needs at least 2 points");
    let eval = |alpha: f64| -> DecayFit {
        let mut s_xx = 0.0;
        let mut s_xy = 0.0;
        for &(m, y) in data {
            let x = alpha.powi(m as i32);
            s_xx += x * x;
            s_xy += x * (y - b);
        }
        let a = if s_xx.abs() < 1e-15 { 0.0 } else { s_xy / s_xx };
        let mut sq = 0.0;
        for &(m, y) in data {
            let r = a * alpha.powi(m as i32) + b - y;
            sq += r * r;
        }
        DecayFit { a, b, alpha, rmse: (sq / data.len() as f64).sqrt() }
    };
    let mut best = eval(0.5);
    let mut lo = 1e-4;
    let mut hi = 1.0;
    for _pass in 0..3 {
        let steps = 400;
        for i in 0..=steps {
            let alpha = lo + (hi - lo) * i as f64 / steps as f64;
            if !(1e-6..=1.0).contains(&alpha) {
                continue;
            }
            let cand = eval(alpha);
            if cand.rmse < best.rmse {
                best = cand;
            }
        }
        let width = (hi - lo) / steps as f64 * 4.0;
        lo = (best.alpha - width).max(1e-6);
        hi = (best.alpha + width).min(1.0);
    }
    best
}

/// Residual-bootstrap uncertainty for a fixed-offset decay fit: refits
/// `resamples` synthetic datasets built by resampling the fit residuals
/// onto the fitted curve, returning the base fit and the standard
/// deviation of the resampled `alpha` estimates.
///
/// Characterization consumers use this to tell a borderline
/// high-crosstalk pair ("3.1× ± 0.8") from a solid one ("9× ± 0.5").
///
/// # Panics
///
/// Panics if `resamples == 0` (and propagates [`fit_decay_fixed_offset`]'s
/// requirements).
pub fn fit_decay_bootstrap(
    data: &[(usize, f64)],
    b: f64,
    resamples: usize,
    seed: u64,
) -> (DecayFit, f64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(resamples > 0, "need at least one resample");
    let base = fit_decay_fixed_offset(data, b);
    let residuals: Vec<f64> = data
        .iter()
        .map(|&(m, y)| y - (base.a * base.alpha.powi(m as i32) + base.b))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb005);
    let mut alphas = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let synth: Vec<(usize, f64)> = data
            .iter()
            .map(|&(m, _)| {
                let r = residuals[rng.gen_range(0..residuals.len())];
                (m, base.a * base.alpha.powi(m as i32) + base.b + r)
            })
            .collect();
        alphas.push(fit_decay_fixed_offset(&synth, b).alpha);
    }
    let mean = alphas.iter().sum::<f64>() / alphas.len() as f64;
    let var =
        alphas.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / alphas.len() as f64;
    (base, var.sqrt())
}

/// For fixed `alpha`, the least-squares `A`, `B` and resulting fit.
fn evaluate(data: &[(usize, f64)], alpha: f64) -> DecayFit {
    // Design matrix columns: [α^m, 1]. Normal equations (2×2).
    let mut s_xx = 0.0;
    let mut s_x = 0.0;
    let mut s_1 = 0.0;
    let mut s_xy = 0.0;
    let mut s_y = 0.0;
    for &(m, y) in data {
        let x = alpha.powi(m as i32);
        s_xx += x * x;
        s_x += x;
        s_1 += 1.0;
        s_xy += x * y;
        s_y += y;
    }
    let det = s_xx * s_1 - s_x * s_x;
    let (a, b) = if det.abs() < 1e-12 {
        (0.0, s_y / s_1)
    } else {
        ((s_xy * s_1 - s_x * s_y) / det, (s_xx * s_y - s_x * s_xy) / det)
    };
    let mut sq = 0.0;
    for &(m, y) in data {
        let r = a * alpha.powi(m as i32) + b - y;
        sq += r * r;
    }
    DecayFit { a, b, alpha, rmse: (sq / data.len() as f64).sqrt() }
}

/// Error per Clifford from the decay parameter:
/// `r = (1 − α)·(d − 1)/d` with `d = 2^n`.
pub fn error_per_clifford(alpha: f64, num_qubits: usize) -> f64 {
    let d = (1usize << num_qubits) as f64;
    (1.0 - alpha) * (d - 1.0) / d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth(alpha: f64, a: f64, b: f64, noise: f64, seed: u64) -> Vec<(usize, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..10)
            .map(|i| {
                let m = 2 + 4 * i;
                let y = a * alpha.powi(m as i32) + b + noise * (rng.gen::<f64>() - 0.5);
                (m, y)
            })
            .collect()
    }

    #[test]
    fn exact_data_recovered() {
        let fit = fit_decay(&synth(0.95, 0.7, 0.25, 0.0, 0));
        assert!((fit.alpha - 0.95).abs() < 1e-5, "alpha {}", fit.alpha);
        assert!((fit.a - 0.7).abs() < 1e-4);
        assert!((fit.b - 0.25).abs() < 1e-4);
        assert!(fit.rmse < 1e-6);
    }

    #[test]
    fn noisy_data_recovered_approximately() {
        let fit = fit_decay(&synth(0.92, 0.7, 0.25, 0.02, 1));
        assert!((fit.alpha - 0.92).abs() < 0.02, "alpha {}", fit.alpha);
    }

    #[test]
    fn fast_decay_fits() {
        let fit = fit_decay(&synth(0.5, 0.75, 0.25, 0.0, 2));
        assert!((fit.alpha - 0.5).abs() < 1e-4, "alpha {}", fit.alpha);
    }

    #[test]
    fn flat_data_yields_alpha_near_one_or_zero_amplitude() {
        let data: Vec<(usize, f64)> = (1..8).map(|m| (m * 4, 0.5)).collect();
        let fit = fit_decay(&data);
        // Perfectly flat: either α≈1 or A≈0; in both cases predictions are
        // flat at 0.5.
        for &(m, y) in &data {
            let pred = fit.a * fit.alpha.powi(m as i32) + fit.b;
            assert!((pred - y).abs() < 1e-6);
        }
    }

    #[test]
    fn epc_formula() {
        assert!((error_per_clifford(1.0, 2) - 0.0).abs() < 1e-12);
        assert!((error_per_clifford(0.9, 2) - 0.075).abs() < 1e-12);
        assert!((error_per_clifford(0.9, 1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fixed_offset_fit_recovers_alpha() {
        let fit = fit_decay_fixed_offset(&synth(0.93, 0.75, 0.25, 0.0, 4), 0.25);
        assert!((fit.alpha - 0.93).abs() < 1e-5, "alpha {}", fit.alpha);
        assert!((fit.b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_spread_tracks_noise() {
        let quiet = fit_decay_bootstrap(&synth(0.95, 0.7, 0.25, 0.005, 5), 0.25, 60, 1).1;
        let noisy = fit_decay_bootstrap(&synth(0.95, 0.7, 0.25, 0.08, 5), 0.25, 60, 1).1;
        assert!(noisy > quiet, "noisy σ {noisy} vs quiet σ {quiet}");
        assert!(quiet < 0.01, "quiet σ {quiet}");
    }

    #[test]
    #[should_panic(expected = "at least one resample")]
    fn bootstrap_needs_resamples() {
        fit_decay_bootstrap(&[(1, 0.9), (2, 0.8), (4, 0.7)], 0.25, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points() {
        fit_decay(&[(1, 0.9), (2, 0.8)]);
    }

    #[test]
    #[should_panic(expected = "distinct lengths")]
    fn degenerate_lengths() {
        fit_decay(&[(4, 0.9), (4, 0.8), (4, 0.85)]);
    }
}
