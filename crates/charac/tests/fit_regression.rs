//! Regression suite for the RB decay fitter.
//!
//! Synthesizes survival curves `y = A·α^m + B` with known parameters —
//! over a grid of decay rates, amplitudes and offsets, with and without
//! shot noise — and asserts the fitter recovers them within tolerance.
//! The degenerate shapes at the bottom (flat decay, two points,
//! saturated high-error pairs) are the ones real characterization data
//! produces when a pair is very good or very bad; the fitter must stay
//! finite and sane on all of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_charac::{error_per_clifford, fit_decay, fit_decay_bootstrap, fit_decay_fixed_offset};

fn synth(lengths: &[usize], alpha: f64, a: f64, b: f64, noise: f64, seed: u64) -> Vec<(usize, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    lengths
        .iter()
        .map(|&m| {
            let y = a * alpha.powi(m as i32) + b + noise * (rng.gen::<f64>() - 0.5);
            (m, y)
        })
        .collect()
}

const LENGTHS: &[usize] = &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64];

#[test]
fn parameter_grid_recovered_exactly_without_noise() {
    // Decay rates spanning excellent to terrible gates, crossed with
    // single- and two-qubit asymptotes.
    for &alpha in &[0.999, 0.99, 0.95, 0.9, 0.8, 0.6, 0.4] {
        for &(a, b) in &[(0.5, 0.5), (0.7, 0.25), (0.75, 0.25), (0.45, 0.5)] {
            let data = synth(LENGTHS, alpha, a, b, 0.0, 0);
            let fit = fit_decay(&data);
            assert!(
                (fit.alpha - alpha).abs() < 1e-4,
                "alpha: got {} want {alpha} (a={a}, b={b})",
                fit.alpha
            );
            assert!((fit.a - a).abs() < 1e-3, "a: got {} want {a}", fit.a);
            assert!((fit.b - b).abs() < 1e-3, "b: got {} want {b}", fit.b);
            assert!(fit.rmse < 1e-5, "rmse {} should be ~0 on exact data", fit.rmse);
        }
    }
}

#[test]
fn shot_noise_grid_recovered_within_tolerance() {
    // ~2% uniform noise, several seeds: recovery within a few percent.
    for seed in 0..5u64 {
        for &alpha in &[0.98, 0.93, 0.85] {
            let data = synth(LENGTHS, alpha, 0.7, 0.25, 0.02, seed);
            let fit = fit_decay(&data);
            assert!(
                (fit.alpha - alpha).abs() < 0.03,
                "seed {seed}: alpha {} want {alpha}",
                fit.alpha
            );
        }
    }
}

#[test]
fn fixed_offset_beats_free_fit_on_sparse_data() {
    // Three short sequences, meaningful noise — the regime the
    // characterization pipeline actually runs in (lengths [2,8,16],
    // two seeds per length). The fixed-offset fit must stay close.
    let data = synth(&[2, 8, 16], 0.94, 0.75, 0.25, 0.03, 7);
    let fixed = fit_decay_fixed_offset(&data, 0.25);
    assert!((fixed.alpha - 0.94).abs() < 0.05, "alpha {}", fixed.alpha);
    assert!((fixed.b - 0.25).abs() < 1e-12, "offset must not move");
}

#[test]
fn epc_matches_the_synthesized_decay() {
    let data = synth(LENGTHS, 0.96, 0.75, 0.25, 0.0, 0);
    let fit = fit_decay_fixed_offset(&data, 0.25);
    let epc = error_per_clifford(fit.alpha, 2);
    let expected = error_per_clifford(0.96, 2);
    assert!((epc - expected).abs() < 1e-4, "epc {epc} want {expected}");
}

// --- Degenerate shapes -------------------------------------------------

#[test]
fn flat_decay_fits_without_blowup() {
    // A "perfect" pair: survival never droops. Free and fixed fits must
    // both predict the flat line and stay finite; alpha is unidentifiable
    // (α≈1 or A≈0 are equally valid) so only predictions are asserted.
    let data: Vec<(usize, f64)> = LENGTHS.iter().map(|&m| (m, 0.97)).collect();
    for fit in [fit_decay(&data), fit_decay_fixed_offset(&data, 0.25)] {
        assert!(fit.alpha.is_finite() && fit.a.is_finite() && fit.b.is_finite());
        assert!((0.0..=1.0).contains(&fit.alpha), "alpha {} out of range", fit.alpha);
        for &(m, y) in &data {
            let pred = fit.a * fit.alpha.powi(m as i32) + fit.b;
            assert!((pred - y).abs() < 5e-3, "flat fit mispredicts at m={m}: {pred}");
        }
    }
}

#[test]
fn two_points_fixed_offset_is_exact() {
    // The minimum the fixed-offset fitter accepts. Two exact points pin
    // alpha once B is known.
    let alpha = 0.9;
    let data = synth(&[4, 16], alpha, 0.75, 0.25, 0.0, 0);
    let fit = fit_decay_fixed_offset(&data, 0.25);
    assert!((fit.alpha - alpha).abs() < 1e-3, "alpha {}", fit.alpha);
    assert!(fit.rmse < 1e-6);
}

#[test]
fn saturated_high_error_pair_hits_the_asymptote() {
    // A terrible pair: by the first measured length the curve has fully
    // decayed to the asymptote, so the data carries no slope at all.
    // The fitter must not panic, must stay in range, and must predict
    // the asymptote — this is what a crosstalk-dominated SRB curve with
    // conditional error ~10x looks like at the lengths we can afford.
    let data: Vec<(usize, f64)> = LENGTHS.iter().map(|&m| (m, 0.25)).collect();
    let fit = fit_decay_fixed_offset(&data, 0.25);
    assert!(fit.alpha.is_finite() && (0.0..=1.0).contains(&fit.alpha));
    for &(m, _) in &data {
        let pred = fit.a * fit.alpha.powi(m as i32) + fit.b;
        assert!((pred - 0.25).abs() < 5e-3, "saturated fit mispredicts at m={m}: {pred}");
    }
    // EPC at the recovered alpha must not exceed the theoretical max for
    // two qubits (alpha=0 → r = 3/4).
    let epc = error_per_clifford(fit.alpha, 2);
    assert!((0.0..=0.75).contains(&epc), "epc {epc} out of physical range");
}

#[test]
fn near_saturated_pair_recovers_fast_decay() {
    // Only the first point or two sit above the asymptote: alpha is
    // barely identifiable but must come back small (fast decay), not
    // clamped to 1.
    let data = synth(&[1, 2, 4, 8, 16], 0.2, 0.75, 0.25, 0.0, 0);
    let fit = fit_decay_fixed_offset(&data, 0.25);
    assert!((fit.alpha - 0.2).abs() < 0.02, "alpha {} want 0.2", fit.alpha);
}

#[test]
fn bootstrap_on_degenerate_data_stays_finite() {
    // Bootstrap over a flat curve: residuals are all ~0, every resample
    // refits the same flat line; sigma must be ~0 and finite, not NaN.
    let data: Vec<(usize, f64)> = LENGTHS.iter().map(|&m| (m, 0.25)).collect();
    let (fit, sigma) = fit_decay_bootstrap(&data, 0.25, 30, 11);
    assert!(fit.alpha.is_finite());
    assert!(sigma.is_finite(), "bootstrap sigma NaN on flat data");
    assert!(sigma < 0.2, "sigma {sigma} absurdly large for noiseless flat data");
}
