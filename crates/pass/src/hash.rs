//! Content hashing for pipeline artifacts.
//!
//! Every artifact flowing between passes implements [`ContentHash`]: a
//! structural hash over the *data* of the value (not its memory layout or
//! serialization), fed through [FNV-1a]. Two artifacts hash equal iff a
//! pass would treat them identically, which is what makes the hash usable
//! as a cache key — the qasm text → parse → dump → parse round trip lands
//! on the same key.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use xtalk_device::{Calibration, Edge, Topology};
use xtalk_ir::{Circuit, Clbit, Gate, Instruction, Qubit, ScheduleSlot, ScheduledCircuit};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over a byte stream.
///
/// ```
/// use xtalk_pass::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write_str("hello");
/// assert_ne!(h.finish(), Fnv1a::new().finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` so 32- and 64-bit builds agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern (exact, no rounding).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Structural hash of an artifact's content.
///
/// Implementations must satisfy: `a == b` (structurally) implies equal
/// hashes, independent of how the value was produced (parsed, built,
/// cloned, re-serialized).
pub trait ContentHash {
    /// Feeds the value's content into `h`.
    fn content_hash(&self, h: &mut Fnv1a);

    /// Convenience: hashes the value standalone.
    fn hash_value(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.content_hash(&mut h);
        h.finish()
    }
}

macro_rules! impl_via {
    ($t:ty, $self:ident, $h:ident, $body:expr) => {
        impl ContentHash for $t {
            fn content_hash(&$self, $h: &mut Fnv1a) {
                $body
            }
        }
    };
}

impl_via!(u8, self, h, h.write_u8(*self));
impl_via!(u32, self, h, h.write_u32(*self));
impl_via!(u64, self, h, h.write_u64(*self));
impl_via!(usize, self, h, h.write_usize(*self));
impl_via!(i64, self, h, h.write_u64(*self as u64));
impl_via!(f64, self, h, h.write_f64(*self));
impl_via!(bool, self, h, h.write_u8(u8::from(*self)));
impl_via!(str, self, h, h.write_str(self));
impl_via!(String, self, h, h.write_str(self));

impl<T: ContentHash + ?Sized> ContentHash for &T {
    fn content_hash(&self, h: &mut Fnv1a) {
        (**self).content_hash(h);
    }
}

impl<T: ContentHash> ContentHash for Option<T> {
    fn content_hash(&self, h: &mut Fnv1a) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.content_hash(h);
            }
        }
    }
}

impl<T: ContentHash> ContentHash for [T] {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for v in self {
            v.content_hash(h);
        }
    }
}

impl<T: ContentHash> ContentHash for Vec<T> {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.as_slice().content_hash(h);
    }
}

impl<A: ContentHash, B: ContentHash> ContentHash for (A, B) {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.0.content_hash(h);
        self.1.content_hash(h);
    }
}

impl<A: ContentHash, B: ContentHash, C: ContentHash> ContentHash for (A, B, C) {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.0.content_hash(h);
        self.1.content_hash(h);
        self.2.content_hash(h);
    }
}

impl ContentHash for Qubit {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u32(self.raw());
    }
}

impl ContentHash for Clbit {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u32(self.raw());
    }
}

impl ContentHash for Gate {
    fn content_hash(&self, h: &mut Fnv1a) {
        // Gate names are unique per variant; parameters carry the rest.
        h.write_str(self.name());
        for p in self.params() {
            h.write_f64(p);
        }
    }
}

impl ContentHash for Instruction {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.gate().content_hash(h);
        self.qubits().content_hash(h);
        self.clbit().content_hash(h);
    }
}

impl ContentHash for Circuit {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_usize(self.num_qubits());
        h.write_usize(self.num_clbits());
        h.write_usize(self.len());
        for ins in self.iter() {
            ins.content_hash(h);
        }
    }
}

impl ContentHash for ScheduleSlot {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u64(self.start);
        h.write_u64(self.duration);
    }
}

impl ContentHash for ScheduledCircuit {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.circuit().content_hash(h);
        self.slots().content_hash(h);
    }
}

impl ContentHash for Edge {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u32(self.lo());
        h.write_u32(self.hi());
    }
}

impl ContentHash for Topology {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_usize(self.num_qubits());
        self.edges().content_hash(h);
    }
}

impl ContentHash for Calibration {
    fn content_hash(&self, h: &mut Fnv1a) {
        let d = self.durations();
        h.write_u64(d.sq_pulse_ns);
        h.write_u64(d.measure_ns);
        let n = self.num_qubits();
        h.write_usize(n);
        for q in 0..n as u32 {
            h.write_f64(self.sq_error(q));
            h.write_f64(self.readout_error(q));
            h.write_f64(self.t1_us(q));
            h.write_f64(self.t2_us(q));
        }
        for e in self.cx_edges() {
            e.content_hash(h);
            h.write_f64(self.cx_error(e));
            h.write_u64(self.cx_duration(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = Fnv1a::new();
        ("ab".to_string(), "c".to_string()).content_hash(&mut a);
        let mut b = Fnv1a::new();
        ("a".to_string(), "bc".to_string()).content_hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn circuit_hash_tracks_structure() {
        let mut a = Circuit::new(2, 0);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2, 0);
        b.h(0).cx(0, 1);
        assert_eq!(a.hash_value(), b.hash_value());
        b.h(1);
        assert_ne!(a.hash_value(), b.hash_value());
    }

    #[test]
    fn gate_params_distinguish() {
        assert_ne!(Gate::U1(0.5).hash_value(), Gate::U1(0.25).hash_value());
        assert_ne!(Gate::X.hash_value(), Gate::Y.hash_value());
    }

    #[test]
    fn calibration_hash_sensitive_to_drift() {
        let topo = Topology::line(4);
        let cal = Calibration::sample(&topo, &Default::default(), 3);
        assert_eq!(cal.hash_value(), cal.clone().hash_value());
        assert_ne!(cal.hash_value(), cal.drifted(9).hash_value());
    }
}
