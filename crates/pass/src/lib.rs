//! # xtalk-pass
//!
//! The typed pass-manager underlying the compile/execute flow.
//!
//! The paper's toolchain (Sections 6–7) is a staged pipeline — lower to
//! native gates, layout, route, schedule, realize, execute. This crate
//! gives each stage a uniform shape:
//!
//! * [`Pass`] — one stage, with a hashable input artifact and a typed
//!   output artifact;
//! * [`PassManager`] — runs passes while applying every cross-cutting
//!   concern exactly once: an obs span per pass (`pass.<id>`), a fault
//!   injection point per pass (`pass.<id>`), a budget poll between
//!   passes, and a content-addressed artifact cache;
//! * [`ArtifactCache`] — keyed by `(pass id, FNV-1a hash of the input
//!   artifact + pass config, device epoch)`, so identical compile prefixes
//!   are shared across schedulers, jobs and sessions while calibration
//!   drift (epoch bumps) naturally invalidates stale artifacts;
//! * [`ContentHash`] / [`Fnv1a`] — structural hashing of IR and device
//!   types, invariant under re-serialization;
//! * [`lower`] — the native-basis lowering shared by the core pipeline
//!   and the characterization circuit builders.
//!
//! Determinism is the contract: a cached artifact is bit-identical to
//! what re-running the pass would produce, so cached and uncached
//! compiles yield the same `ScheduledCircuit`s and the same counts.

pub mod cache;
pub mod hash;
pub mod lower;
pub mod manager;

pub use cache::{ArtifactCache, EpochToken};
pub use hash::{ContentHash, Fnv1a};
pub use lower::{is_native, lower_instruction, lower_to_native};
pub use manager::{Pass, PassError, PassManager};
