//! Basis translation: lowering circuits to the IBMQ native gate set
//! (`u1`/`u2`/`u3` + `cx`), the form the paper's hardware executes.
//!
//! Lives in `xtalk-pass` (the bottom of the compile spine) so every
//! consumer — the core pipeline's `LowerPass`, the characterization
//! crate's RB/SRB circuit builders, the CLI — lowers through one
//! implementation. `xtalk-core::transpile` re-exports these for
//! compatibility; the statevector-equivalence tests stay there (the sim
//! crate is above this one).

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use xtalk_ir::{Circuit, Gate, Instruction};

/// Rewrites every gate into the IBMQ native basis
/// `{u1, u2, u3, cx, measure, barrier}`:
///
/// * phase-family gates become `u1` (equal up to global phase),
/// * one-pulse gates become `u2`, generic rotations `u3`,
/// * `cz` becomes `h; cx; h` on the target, `swap` three CNOTs,
/// * explicit identities are dropped.
///
/// The result is unitarily equivalent up to global phase (verified by the
/// statevector-equivalence tests in `xtalk-core::transpile`).
///
/// ```
/// use xtalk_pass::lower_to_native;
/// use xtalk_ir::Circuit;
/// let mut c = Circuit::new(2, 0);
/// c.h(0).s(1).cz(0, 1).swap(0, 1);
/// let native = lower_to_native(&c);
/// let ops = native.count_ops();
/// assert_eq!(ops.keys().cloned().collect::<Vec<_>>(), vec!["cx", "u1", "u2"]);
/// assert_eq!(ops["cx"], 4); // 1 (from cz) + 3 (from swap)
/// ```
pub fn lower_to_native(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit.iter() {
        lower_instruction(&mut out, instr);
    }
    out
}

/// Lowers one instruction, appending its native expansion to `out`.
pub fn lower_instruction(out: &mut Circuit, instr: &Instruction) {
    let qs = instr.qubits();
    match *instr.gate() {
        Gate::I => {}
        Gate::X => {
            out.u3(PI, 0.0, PI, qs[0]);
        }
        Gate::Y => {
            out.u3(PI, FRAC_PI_2, FRAC_PI_2, qs[0]);
        }
        Gate::Z => {
            out.u1(PI, qs[0]);
        }
        Gate::H => {
            out.u2(0.0, PI, qs[0]);
        }
        Gate::S => {
            out.u1(FRAC_PI_2, qs[0]);
        }
        Gate::Sdg => {
            out.u1(-FRAC_PI_2, qs[0]);
        }
        Gate::T => {
            out.u1(FRAC_PI_4, qs[0]);
        }
        Gate::Tdg => {
            out.u1(-FRAC_PI_4, qs[0]);
        }
        Gate::U1(l) => {
            out.u1(l, qs[0]);
        }
        Gate::U2(p, l) => {
            out.u2(p, l, qs[0]);
        }
        Gate::U3(t, p, l) => {
            out.u3(t, p, l, qs[0]);
        }
        // rz differs from u1 only by a global phase.
        Gate::Rz(a) => {
            out.u1(a, qs[0]);
        }
        Gate::Rx(a) => {
            out.u3(a, -FRAC_PI_2, FRAC_PI_2, qs[0]);
        }
        Gate::Ry(a) => {
            out.u3(a, 0.0, 0.0, qs[0]);
        }
        Gate::Cx => {
            out.cx(qs[0], qs[1]);
        }
        Gate::Cz => {
            out.u2(0.0, PI, qs[1]);
            out.cx(qs[0], qs[1]);
            out.u2(0.0, PI, qs[1]);
        }
        Gate::Swap => {
            out.cx(qs[0], qs[1]);
            out.cx(qs[1], qs[0]);
            out.cx(qs[0], qs[1]);
        }
        Gate::Measure => {
            out.push(instr.clone());
        }
        Gate::Barrier => {
            out.push(instr.clone());
        }
    }
}

/// `true` if the circuit only uses the IBMQ native basis.
pub fn is_native(circuit: &Circuit) -> bool {
    circuit.iter().all(|i| {
        matches!(
            i.gate(),
            Gate::U1(_) | Gate::U2(_, _) | Gate::U3(_, _, _) | Gate::Cx | Gate::Measure
                | Gate::Barrier
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_dropped() {
        let mut c = Circuit::new(1, 0);
        c.id(0).h(0);
        let lowered = lower_to_native(&c);
        assert_eq!(lowered.len(), 1);
    }

    #[test]
    fn lowering_is_idempotent() {
        let mut c = Circuit::new(3, 0);
        c.h(0).cz(0, 1).swap(1, 2).t(2);
        let once = lower_to_native(&c);
        let twice = lower_to_native(&once);
        assert_eq!(once, twice);
        assert!(is_native(&once));
    }
}
