//! Content-addressed artifact cache.
//!
//! Keys are `(pass id, input-content hash, device epoch)`: the hash covers
//! the input artifact *and* the pass configuration (folded in by
//! [`crate::Pass::config_hash`]), and the epoch pins the device state the
//! artifact was derived from, so calibration drift can never serve stale
//! compilation results.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of a device state: device name plus drift epoch.
///
/// Epoch counters are per-fleet (the serve layer bumps one counter on
/// `advance_day`), so the device name must be part of cache identity —
/// epoch 3 of `ibmq_poughkeepsie` shares nothing with epoch 3 of
/// `ibmq_johannesburg`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EpochToken {
    device: String,
    epoch: u64,
}

impl EpochToken {
    /// Token for `device` at drift `epoch`.
    pub fn new(device: impl Into<String>, epoch: u64) -> EpochToken {
        EpochToken { device: device.into(), epoch }
    }

    /// Device name.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Drift epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Full cache key for one artifact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ArtifactKey {
    pass: &'static str,
    input_hash: u64,
    epoch: EpochToken,
}

/// Thread-safe content-addressed store of pass outputs.
///
/// Values are type-erased (`Arc<dyn Any>`); [`ArtifactCache::get`]
/// downcasts back to the pass's concrete output type. A key collision
/// across *types* would require two passes sharing an id with different
/// output types — get returns `None` (a miss) in that case rather than
/// panicking.
#[derive(Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<ArtifactKey, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// Empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Looks up the artifact `pass` produced for `input_hash` at `epoch`.
    ///
    /// Counts a hit or miss (also mirrored to the obs counters
    /// `pass.cache.hit` / `pass.cache.miss`).
    pub fn get<T: Send + Sync + 'static>(
        &self,
        pass: &'static str,
        input_hash: u64,
        epoch: &EpochToken,
    ) -> Option<Arc<T>> {
        let key = ArtifactKey { pass, input_hash, epoch: epoch.clone() };
        let found = self
            .map
            .lock()
            .expect("artifact cache poisoned")
            .get(&key)
            .cloned()
            .and_then(|a| a.downcast::<T>().ok());
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                xtalk_obs::counter!("pass.cache.hit", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                xtalk_obs::counter!("pass.cache.miss", 1);
            }
        }
        found
    }

    /// Stores `value` as the artifact of `pass` for `input_hash` at
    /// `epoch`, replacing any previous entry.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        pass: &'static str,
        input_hash: u64,
        epoch: &EpochToken,
        value: Arc<T>,
    ) {
        let key = ArtifactKey { pass, input_hash, epoch: epoch.clone() };
        self.map
            .lock()
            .expect("artifact cache poisoned")
            .insert(key, value);
    }

    /// Total lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().expect("artifact cache poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of stored artifacts produced by `pass`.
    pub fn len_of(&self, pass: &str) -> usize {
        self.map
            .lock()
            .expect("artifact cache poisoned")
            .keys()
            .filter(|k| k.pass == pass)
            .count()
    }

    /// Drops every artifact derived from an epoch older than `epoch`
    /// (any device). Called when the drift clock advances.
    pub fn invalidate_before(&self, epoch: u64) {
        self.map
            .lock()
            .expect("artifact cache poisoned")
            .retain(|k, _| k.epoch.epoch >= epoch);
    }

    /// Drops everything (counters keep their totals).
    pub fn clear(&self) {
        self.map.lock().expect("artifact cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let cache = ArtifactCache::new();
        let epoch = EpochToken::new("dev", 0);
        assert!(cache.get::<String>("p", 1, &epoch).is_none());
        cache.put("p", 1, &epoch, Arc::new("art".to_string()));
        let got = cache.get::<String>("p", 1, &epoch).unwrap();
        assert_eq!(*got, "art");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn epoch_isolates() {
        let cache = ArtifactCache::new();
        cache.put("p", 1, &EpochToken::new("dev", 0), Arc::new(7u64));
        assert!(cache.get::<u64>("p", 1, &EpochToken::new("dev", 1)).is_none());
        assert!(cache.get::<u64>("p", 1, &EpochToken::new("other", 0)).is_none());
        assert!(cache.get::<u64>("p", 1, &EpochToken::new("dev", 0)).is_some());
    }

    #[test]
    fn invalidation_drops_old_epochs() {
        let cache = ArtifactCache::new();
        cache.put("p", 1, &EpochToken::new("dev", 0), Arc::new(1u64));
        cache.put("p", 2, &EpochToken::new("dev", 5), Arc::new(2u64));
        cache.invalidate_before(5);
        assert_eq!(cache.len(), 1);
        assert!(cache.get::<u64>("p", 2, &EpochToken::new("dev", 5)).is_some());
    }

    #[test]
    fn wrong_type_is_a_miss() {
        let cache = ArtifactCache::new();
        let epoch = EpochToken::new("dev", 0);
        cache.put("p", 1, &epoch, Arc::new(3u64));
        assert!(cache.get::<String>("p", 1, &epoch).is_none());
    }

    #[test]
    fn len_of_counts_per_pass() {
        let cache = ArtifactCache::new();
        let epoch = EpochToken::new("dev", 0);
        cache.put("a", 1, &epoch, Arc::new(1u64));
        cache.put("a", 2, &epoch, Arc::new(2u64));
        cache.put("b", 1, &epoch, Arc::new(3u64));
        assert_eq!(cache.len_of("a"), 2);
        assert_eq!(cache.len_of("b"), 1);
        assert_eq!(cache.len(), 3);
    }
}
