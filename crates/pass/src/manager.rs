//! The pass abstraction and the manager that runs pipelines of passes.
//!
//! A [`Pass`] is one stage of the compile flow with a typed, hashable
//! input and a typed output. The [`PassManager`] is the single place the
//! cross-cutting machinery lives: every pass run gets an obs span
//! (`pass.<id>`), a fault point (`pass.<id>`), a budget poll before it
//! starts, and a content-addressed cache lookup keyed by
//! `(pass id, FNV-1a(input + config), device epoch)`.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use xtalk_budget::{Budget, Exhausted};

use crate::cache::{ArtifactCache, EpochToken};
use crate::hash::{ContentHash, Fnv1a};

/// One stage of the compile/execute flow.
pub trait Pass {
    /// Input artifact; its content hash (plus [`Pass::config_hash`])
    /// addresses the cache.
    type Input: ContentHash + ?Sized;
    /// Output artifact, shared via `Arc` between cache and callers.
    type Output: Send + Sync + 'static;
    /// Stage-specific failure.
    type Err;

    /// Stable identifier; names the span, fault point and cache rows.
    fn id(&self) -> &'static str;

    /// Folds the pass configuration (and any context it closes over,
    /// e.g. a characterization) into the cache key. Default: none.
    fn config_hash(&self, _h: &mut Fnv1a) {}

    /// `false` opts the pass out of caching entirely (e.g. execution,
    /// whose output depends on the shot budget rather than the input
    /// artifact alone). Default: cacheable.
    fn cacheable(&self) -> bool {
        true
    }

    /// Per-output veto: return `false` to keep a produced artifact out
    /// of the cache (e.g. a budget-truncated schedule that a later,
    /// better-funded run should redo). Default: cache it.
    fn cache_output(&self, _out: &Self::Output) -> bool {
        true
    }

    /// `true` (the default) refuses to *start* the pass once the budget
    /// is exhausted, failing fast with [`PassError::Budget`]. Anytime
    /// passes — ones that thread the budget into their own search or
    /// shot loop and return an honest partial (truncated schedule,
    /// 0-shot outcome) — return `false` so a dead budget still yields
    /// their best-effort result instead of an error.
    fn budget_polled(&self) -> bool {
        true
    }

    /// Does the work.
    fn run(&self, input: &Self::Input, budget: &Budget) -> Result<Self::Output, Self::Err>;
}

/// Failure of a managed pass run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PassError<E> {
    /// The budget was exhausted before the pass started.
    Budget(Exhausted),
    /// An injected fault fired at `pass.<id>`.
    Fault(String),
    /// The pass itself failed.
    Pass(E),
}

impl<E> PassError<E> {
    /// Maps the inner pass error, preserving the cross-cutting variants.
    pub fn map_pass<F, G: FnOnce(E) -> F>(self, f: G) -> PassError<F> {
        match self {
            PassError::Budget(e) => PassError::Budget(e),
            PassError::Fault(m) => PassError::Fault(m),
            PassError::Pass(e) => PassError::Pass(f(e)),
        }
    }
}

impl<E: fmt::Display> fmt::Display for PassError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Budget(e) => write!(f, "budget exhausted: {}", e.as_str()),
            PassError::Fault(msg) => write!(f, "injected fault: {msg}"),
            PassError::Pass(e) => e.fmt(f),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> Error for PassError<E> {}

/// Runs passes, applying spans, fault points, budget polls and the
/// artifact cache uniformly.
///
/// Cheap to construct; clones share the underlying cache (it is held by
/// `Arc`), so one long-lived cache can back many managers with different
/// budgets or epochs.
#[derive(Clone)]
pub struct PassManager {
    cache: Arc<ArtifactCache>,
    epoch: EpochToken,
    budget: Budget,
}

impl PassManager {
    /// Manager with a private empty cache at `epoch`.
    pub fn new(epoch: EpochToken) -> PassManager {
        PassManager::with_cache(Arc::new(ArtifactCache::new()), epoch)
    }

    /// Manager over a shared `cache` at `epoch`.
    pub fn with_cache(cache: Arc<ArtifactCache>, epoch: EpochToken) -> PassManager {
        PassManager { cache, epoch, budget: Budget::unlimited() }
    }

    /// Attaches an execution budget polled before every pass.
    pub fn with_budget(mut self, budget: Budget) -> PassManager {
        self.budget = budget;
        self
    }

    /// The budget passes run under.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The device epoch artifacts are keyed to.
    pub fn epoch(&self) -> &EpochToken {
        &self.epoch
    }

    /// Runs `pass` on `input` with the cross-cutting machinery applied:
    /// budget poll → span → fault point → cache lookup → run → cache
    /// store (unless vetoed by [`Pass::cache_output`]).
    pub fn run<P: Pass>(
        &self,
        pass: &P,
        input: &P::Input,
    ) -> Result<Arc<P::Output>, PassError<P::Err>> {
        if pass.budget_polled() {
            if let Some(e) = self.budget.exhausted() {
                return Err(PassError::Budget(e));
            }
        }
        let _span = if xtalk_obs::enabled() {
            Some(xtalk_obs::span(&format!("pass.{}", pass.id())))
        } else {
            None
        };
        if xtalk_fault::enabled() {
            if let Some(msg) = xtalk_fault::fire(&format!("pass.{}", pass.id())) {
                return Err(PassError::Fault(msg));
            }
        }
        let input_hash = {
            let mut h = Fnv1a::new();
            input.content_hash(&mut h);
            pass.config_hash(&mut h);
            h.finish()
        };
        if pass.cacheable() {
            if let Some(hit) = self.cache.get::<P::Output>(pass.id(), input_hash, &self.epoch) {
                return Ok(hit);
            }
        }
        let out = Arc::new(pass.run(input, &self.budget).map_err(PassError::Pass)?);
        if pass.cacheable() && pass.cache_output(&out) {
            self.cache.put(pass.id(), input_hash, &self.epoch, Arc::clone(&out));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    struct Double {
        runs: AtomicU64,
    }

    impl Pass for Double {
        type Input = u64;
        type Output = u64;
        type Err = String;

        fn id(&self) -> &'static str {
            "double"
        }

        fn run(&self, input: &u64, _budget: &Budget) -> Result<u64, String> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            Ok(input * 2)
        }
    }

    #[test]
    fn second_run_is_a_cache_hit() {
        let pm = PassManager::new(EpochToken::new("dev", 0));
        let pass = Double { runs: AtomicU64::new(0) };
        assert_eq!(*pm.run(&pass, &21).unwrap(), 42);
        assert_eq!(*pm.run(&pass, &21).unwrap(), 42);
        assert_eq!(pass.runs.load(Ordering::Relaxed), 1);
        assert_eq!(pm.cache().hits(), 1);
        assert_eq!(*pm.run(&pass, &3).unwrap(), 6);
        assert_eq!(pass.runs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn epochs_do_not_share_artifacts() {
        let cache = Arc::new(ArtifactCache::new());
        let pm0 = PassManager::with_cache(Arc::clone(&cache), EpochToken::new("dev", 0));
        let pm1 = PassManager::with_cache(cache, EpochToken::new("dev", 1));
        let pass = Double { runs: AtomicU64::new(0) };
        pm0.run(&pass, &1).unwrap();
        pm1.run(&pass, &1).unwrap();
        assert_eq!(pass.runs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn exhausted_budget_blocks_before_running() {
        let pm = PassManager::new(EpochToken::new("dev", 0))
            .with_budget(Budget::with_deadline(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let pass = Double { runs: AtomicU64::new(0) };
        match pm.run(&pass, &1) {
            Err(PassError::Budget(Exhausted::Deadline)) => {}
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
        assert_eq!(pass.runs.load(Ordering::Relaxed), 0);
    }

    struct Flaky;

    impl Pass for Flaky {
        type Input = u64;
        type Output = u64;
        type Err = String;

        fn id(&self) -> &'static str {
            "flaky"
        }

        fn cache_output(&self, out: &u64) -> bool {
            out.is_multiple_of(2)
        }

        fn run(&self, input: &u64, _budget: &Budget) -> Result<u64, String> {
            Ok(*input)
        }
    }

    #[test]
    fn anytime_passes_skip_the_budget_gate() {
        struct Anytime;
        impl Pass for Anytime {
            type Input = u64;
            type Output = u64;
            type Err = String;
            fn id(&self) -> &'static str {
                "anytime"
            }
            fn budget_polled(&self) -> bool {
                false
            }
            fn run(&self, input: &u64, budget: &Budget) -> Result<u64, String> {
                // Honest partial: a dead budget halves the work.
                Ok(if budget.exhausted().is_some() { input / 2 } else { *input })
            }
        }
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let pm = PassManager::new(EpochToken::new("dev", 0)).with_budget(budget);
        assert_eq!(*pm.run(&Anytime, &10).unwrap(), 5);
    }

    #[test]
    fn vetoed_outputs_stay_uncached() {
        let pm = PassManager::new(EpochToken::new("dev", 0));
        pm.run(&Flaky, &3).unwrap();
        assert_eq!(pm.cache().len(), 0);
        pm.run(&Flaky, &4).unwrap();
        assert_eq!(pm.cache().len(), 1);
    }

    #[test]
    fn config_hash_separates_cache_rows() {
        struct AddK(u64);
        impl Pass for AddK {
            type Input = u64;
            type Output = u64;
            type Err = String;
            fn id(&self) -> &'static str {
                "addk"
            }
            fn config_hash(&self, h: &mut Fnv1a) {
                h.write_u64(self.0);
            }
            fn run(&self, input: &u64, _b: &Budget) -> Result<u64, String> {
                Ok(input + self.0)
            }
        }
        let pm = PassManager::new(EpochToken::new("dev", 0));
        assert_eq!(*pm.run(&AddK(1), &10).unwrap(), 11);
        assert_eq!(*pm.run(&AddK(2), &10).unwrap(), 12);
        assert_eq!(pm.cache().len(), 2);
    }
}
