//! Property tests for artifact content hashing and cache keying.
//!
//! Three contracts back the content-addressed cache:
//!
//! * **Re-serialization invariance** — a circuit's hash is a function of
//!   its *content*, so the qasm text → parse → dump → parse round trip
//!   lands on the same key. (Angles in the corpus are multiples of
//!   2⁻¹¹ so the exporter's 12-decimal rendering is exact; arbitrary
//!   floats would test the printer, not the hash.)
//! * **No collisions in practice** — structurally distinct circuits get
//!   distinct 64-bit hashes across a sizeable random corpus. FNV-1a is
//!   not cryptographic, so this is an empirical bound, not a proof.
//! * **Epoch isolation** — an artifact stored under one `(device, epoch)`
//!   token is invisible under any other token or pass id: calibration
//!   drift can never serve a stale compilation result.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use xtalk_ir::{qasm, Circuit};
use xtalk_pass::{ArtifactCache, ContentHash, EpochToken};

/// Register width of every generated circuit.
const NQ: u32 = 5;

/// One encoded operation: `(opcode, qubit a, qubit b, angle numerator)`.
type Op = (usize, u32, u32, u32);

/// Number of opcodes [`apply`] understands.
const NUM_OPS: usize = 20;

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..NUM_OPS, 0u32..NQ, 0u32..NQ, 0u32..=2048)
}

/// Appends the decoded op to `c`. Angles are `k/1024 − 1 ∈ [−1, 1]`:
/// dyadic rationals whose decimal expansion fits in the qasm exporter's
/// 12 fractional digits, so dump/parse is bit-exact.
fn apply(c: &mut Circuit, (op, a, b, k): Op) {
    let th = f64::from(k) / 1024.0 - 1.0;
    let b = if a == b { (b + 1) % NQ } else { b };
    match op {
        0 => c.id(a),
        1 => c.x(a),
        2 => c.y(a),
        3 => c.z(a),
        4 => c.h(a),
        5 => c.s(a),
        6 => c.sdg(a),
        7 => c.t(a),
        8 => c.tdg(a),
        9 => c.u1(th, a),
        10 => c.rx(th, a),
        11 => c.ry(th, a),
        12 => c.rz(th, a),
        13 => c.u2(th, -th, a),
        14 => c.u3(th, th / 2.0, -th, a),
        15 => c.cx(a, b),
        16 => c.cz(a, b),
        17 => c.swap(a, b),
        18 => c.measure(a, a),
        _ => c.barrier([a, b]),
    };
}

fn build(ops: &[Op]) -> Circuit {
    let mut c = Circuit::new(NQ as usize, NQ as usize);
    for &op in ops {
        apply(&mut c, op);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// dump → parse → dump is a fixed point, and every leg of the trip
    /// keys to the same cache slot.
    #[test]
    fn qasm_round_trip_is_hash_invariant(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let circuit = build(&ops);
        let text = qasm::dump(&circuit);
        let back = qasm::parse(&text)
            .unwrap_or_else(|e| panic!("exporter produced unparseable qasm: {e}\n{text}"));
        prop_assert_eq!(&back, &circuit, "round trip must preserve structure");
        prop_assert_eq!(back.hash_value(), circuit.hash_value());
        prop_assert_eq!(qasm::dump(&back), text, "dump must be a fixed point");
    }

    /// Structurally distinct circuits in the same batch never share a
    /// hash; structurally equal ones always do.
    #[test]
    fn pairwise_hashes_track_structure(
        batch in prop::collection::vec(prop::collection::vec(op_strategy(), 0..40), 2..6),
    ) {
        let circuits: Vec<Circuit> = batch.iter().map(|ops| build(ops)).collect();
        for i in 0..circuits.len() {
            for j in i + 1..circuits.len() {
                if circuits[i] == circuits[j] {
                    prop_assert_eq!(circuits[i].hash_value(), circuits[j].hash_value());
                } else {
                    prop_assert_ne!(circuits[i].hash_value(), circuits[j].hash_value());
                }
            }
        }
    }

    /// An artifact cached under one `(pass, hash, device, epoch)` key is
    /// unreachable from every other key — wrong epoch, wrong device, or
    /// wrong pass id is always a miss, and the matching key always hits.
    #[test]
    fn cache_never_crosses_epoch_device_or_pass(
        hash in 0u64..u64::MAX,
        dev in 0usize..3,
        epoch in 0u64..4,
        probe_dev in 0usize..3,
        probe_epoch in 0u64..4,
    ) {
        const DEVICES: [&str; 3] = ["poughkeepsie", "johannesburg", "melbourne"];
        let cache = ArtifactCache::new();
        let stored = EpochToken::new(DEVICES[dev], epoch);
        cache.put("place", hash, &stored, Arc::new(0xfeed_u64));

        let probe = EpochToken::new(DEVICES[probe_dev], probe_epoch);
        let got = cache.get::<u64>("place", hash, &probe);
        if probe == stored {
            prop_assert!(got.is_some(), "matching token must hit");
        } else {
            prop_assert!(got.is_none(), "{:?} must not see {:?}'s artifact", probe, stored);
        }
        prop_assert!(
            cache.get::<u64>("route", hash, &stored).is_none(),
            "a different pass id must never alias"
        );
    }
}

/// Empirical collision bound: a 512-circuit random corpus (plus every
/// qasm round-trip image) maps injectively from structure to hash.
#[test]
fn no_collisions_across_corpus() {
    let mut rng = TestRng::from_name("hash_props::no_collisions_across_corpus");
    let strat = prop::collection::vec(op_strategy(), 0..60);
    let mut seen: HashMap<u64, Circuit> = HashMap::new();
    let mut distinct = 0usize;
    for _ in 0..512 {
        let circuit = build(&Strategy::generate(&strat, &mut rng));
        let roundtrip = qasm::parse(&qasm::dump(&circuit)).expect("corpus round-trips");
        assert_eq!(roundtrip.hash_value(), circuit.hash_value());
        match seen.insert(circuit.hash_value(), circuit.clone()) {
            Some(prev) => assert_eq!(prev, circuit, "hash collision between distinct circuits"),
            None => distinct += 1,
        }
    }
    // The corpus is random enough that near-all samples are distinct;
    // the real assertion is the collision check above.
    assert!(distinct > 256, "corpus degenerated: only {distinct} distinct circuits");
}
