//! Acceptance test for the shared pass prefix: compiling one circuit
//! with all three schedulers — twice — performs the layout and routing
//! work **exactly once**, verified through the obs span/counter stream
//! rather than the cache's own bookkeeping.
//!
//! Lives in its own integration-test binary because the obs registry is
//! process-global; sharing a binary with unrelated tests would race on
//! `set_enabled`/`reset`.

use xtalk_core::{Compiler, ParSched, Scheduler, SchedulerContext, SerialSched, XtalkSched};
use xtalk_device::Device;
use xtalk_ir::Circuit;

#[test]
fn multi_scheduler_compare_shares_the_prefix_with_zero_redundancy() {
    xtalk_obs::set_enabled(true);
    xtalk_obs::reset();

    let device = Device::poughkeepsie(7);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);

    // A K4 interaction graph cannot embed in the planar coupling grid,
    // so greedy placement and SWAP routing genuinely run (a compliant
    // circuit would skip `layout` entirely).
    let mut circuit = Circuit::new(4, 4);
    circuit.h(0);
    circuit.cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 2).cx(1, 3).cx(0, 3);
    circuit.measure_all();

    let schedulers: [&dyn Scheduler; 3] =
        [&SerialSched::new(), &ParSched::new(), &XtalkSched::new(0.5)];
    for _round in 0..2 {
        for s in schedulers {
            compiler.compile(&circuit, s).unwrap();
        }
    }

    let snap = xtalk_obs::snapshot();
    xtalk_obs::set_enabled(false);

    // Every pass was *entered* six times (spans wrap the cache lookup)…
    for pass in ["pass.lower", "pass.place", "pass.route", "pass.schedule"] {
        let stat = snap.span(pass).unwrap_or_else(|| panic!("span {pass} missing"));
        assert_eq!(stat.count, 6, "{pass} should be entered once per compile");
    }
    // …but the underlying layout and routing work ran exactly once: the
    // other five entries were cache hits that never reached the body.
    let layout = snap.span("pass.place/layout").expect("layout span missing");
    assert_eq!(layout.count, 1, "greedy layout recomputed on a warm prefix");
    let routing = snap.span("pass.route/routing").expect("routing span missing");
    assert_eq!(routing.count, 1, "routing recomputed on a warm prefix");

    // Cache ledger agrees: 24 lookups = 6 misses (cold lower/place/route
    // + one schedule per policy) + 18 hits; one artifact per pass row.
    assert_eq!(snap.counter("pass.cache.miss"), Some(6));
    assert_eq!(snap.counter("pass.cache.hit"), Some(18));
    assert_eq!(compiler.cache().len_of("lower"), 1);
    assert_eq!(compiler.cache().len_of("place"), 1);
    assert_eq!(compiler.cache().len_of("route"), 1);
    assert_eq!(compiler.cache().len_of("schedule"), 3);
}
