//! Golden determinism tests for the managed pass pipeline.
//!
//! The pass-manager refactor must be invisible in the artifacts: for a
//! grid of seed circuits × the three schedulers,
//!
//! * the managed path produces schedules **bit-identical** (by `Debug`
//!   dump) to the hand-staged pre-refactor flow
//!   (lower → fuse → pad → place → route → `Scheduler::schedule`),
//! * a warm cache replays the exact artifacts a cold cache produced,
//! * execution counts are bit-identical at any thread count, cold or
//!   warm, and identical to the legacy `run_scheduled` entry points.

use xtalk_core::layout::{greedy_layout, route, Layout};
use xtalk_core::optimize::fuse_single_qubit_gates;
use xtalk_core::transpile::lower_to_native;
use xtalk_core::{
    Compiler, ParSched, RunOpts, Scheduler, SchedulerContext, SerialSched, XtalkSched,
};
use xtalk_device::Device;
use xtalk_ir::{Circuit, ScheduledCircuit};

/// Seed circuits exercising every pipeline branch: already-compliant,
/// padding-only, and routing-heavy (greedy layout + SWAP insertion).
fn seed_circuits() -> Vec<(&'static str, Circuit)> {
    // A K4 interaction graph cannot embed in a planar grid, so greedy
    // placement *and* SWAP insertion always run.
    let mut ladder = Circuit::new(4, 4);
    ladder.h(0);
    ladder.cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 2).cx(1, 3).cx(0, 3).t(2);
    ladder.measure_all();

    let mut hot = Circuit::new(20, 2);
    hot.h(10).cx(10, 15).cx(11, 12).measure(10, 0).measure(11, 1);

    vec![
        ("routing_ladder", ladder),
        ("hot_pair", hot),
        ("ghz", xtalk_core::bench_circuits::ghz(20, &[5, 10, 11, 12, 15])),
    ]
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SerialSched::new()),
        Box::new(ParSched::new()),
        Box::new(XtalkSched::new(0.5)),
    ]
}

/// The pre-refactor compile flow, staged by hand with the historical
/// building blocks: lower + fuse, pad to device width, trivial-or-greedy
/// placement, route, then a direct `Scheduler::schedule` call.
fn direct_schedule(
    device: &Device,
    ctx: &SchedulerContext,
    circuit: &Circuit,
    scheduler: &dyn Scheduler,
) -> ScheduledCircuit {
    let topo = device.topology();
    let lowered = fuse_single_qubit_gates(&lower_to_native(circuit));
    let n = topo.num_qubits();
    let mut padded = Circuit::new(n, lowered.num_clbits());
    padded.try_extend(&lowered).expect("padding cannot fail");
    let compliant = padded.iter().all(|ins| {
        !ins.gate().is_two_qubit()
            || topo.are_adjacent(ins.qubits()[0].raw(), ins.qubits()[1].raw())
    });
    let layout =
        if compliant { Layout::trivial(n, n) } else { greedy_layout(&padded, topo) };
    let routed = route(&padded, topo, layout).expect("device is connected");
    scheduler.schedule(&routed.circuit, ctx).expect("compliant after routing")
}

#[test]
fn managed_pipeline_matches_pre_refactor_path() {
    let device = Device::poughkeepsie(1);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx.clone());
    // The routing seed must genuinely exercise layout + SWAP insertion.
    let routed = compiler.prepare(&seed_circuits()[0].1).unwrap();
    assert!(routed.swaps_inserted > 0, "routing seed no longer forces SWAPs");
    for (name, circuit) in seed_circuits() {
        for s in schedulers() {
            let artifact = compiler.compile(&circuit, s.as_ref()).unwrap();
            let direct = direct_schedule(&device, &ctx, &circuit, s.as_ref());
            assert_eq!(
                format!("{:?}", artifact.sched),
                format!("{direct:?}"),
                "{name} × {} diverged from the pre-refactor flow",
                s.name()
            );
        }
    }
}

#[test]
fn warm_cache_replays_cold_artifacts_bit_identically() {
    let device = Device::poughkeepsie(1);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let warm = Compiler::new(&device, ctx.clone());
    for (name, circuit) in seed_circuits() {
        for s in schedulers() {
            // Cold: a fresh compiler whose private cache has never seen
            // this circuit. Warm: the shared compiler, second time round.
            let cold = Compiler::new(&device, ctx.clone())
                .compile(&circuit, s.as_ref())
                .unwrap();
            let first = warm.compile(&circuit, s.as_ref()).unwrap();
            let second = warm.compile(&circuit, s.as_ref()).unwrap();
            assert_eq!(
                format!("{:?}", (&first.sched, &first.serializations, &first.report)),
                format!("{:?}", (&cold.sched, &cold.serializations, &cold.report)),
                "{name} × {}: shared-cache compile diverged from cold",
                s.name()
            );
            assert_eq!(
                format!("{:?}", (&second.sched, &second.serializations, &second.report)),
                format!("{:?}", (&cold.sched, &cold.serializations, &cold.report)),
                "{name} × {}: warm replay diverged from cold",
                s.name()
            );
        }
    }
    assert!(warm.cache().hits() > 0, "warm replays must come from the cache");
}

#[test]
fn execution_counts_are_thread_and_cache_invariant() {
    let device = Device::poughkeepsie(1);
    let ctx = SchedulerContext::from_ground_truth(&device);
    let compiler = Compiler::new(&device, ctx);
    let (_, circuit) = seed_circuits().remove(0);
    for s in schedulers() {
        let artifact = compiler.compile(&circuit, s.as_ref()).unwrap();
        let seq = compiler.run(&artifact.sched, 256, 7, 1).unwrap();
        let par4 = compiler.run(&artifact.sched, 256, 7, 4).unwrap();
        assert!(seq.complete && par4.complete);
        assert_eq!(seq.counts, par4.counts, "{}: thread count changed counts", s.name());

        // The standalone entry points see the same stream.
        let via_opts =
            xtalk_core::run_scheduled_opts(&device, &artifact.sched, 256, 7, &RunOpts::default());
        assert_eq!(via_opts.counts, seq.counts);
        #[allow(deprecated)]
        let legacy = xtalk_core::pipeline::run_scheduled(&device, &artifact.sched, 256, 7);
        assert_eq!(legacy, seq.counts, "{}: legacy shim diverged", s.name());
    }
}
