//! Circuit optimization passes.
//!
//! The paper's toolflow invokes Qiskit's standard optimization before
//! scheduling; the workhorse there is single-qubit gate fusion, which
//! matters doubly here because shorter 1q chains shrink the idle windows
//! the decoherence term penalizes.

use std::f64::consts::PI;
use xtalk_ir::{Circuit, Gate, Instruction};
use xtalk_sim::{C64, Mat2};

/// Fuses every maximal run of single-qubit unitaries on a qubit into at
/// most one native gate (`u1` when diagonal, else `u3`), resynthesized
/// from the accumulated 2×2 unitary. Runs are broken by two-qubit gates,
/// measurements and barriers. Unitary-equivalent up to global phase.
///
/// ```
/// use xtalk_core::optimize::fuse_single_qubit_gates;
/// use xtalk_ir::Circuit;
/// let mut c = Circuit::new(1, 0);
/// c.h(0).s(0).h(0).t(0).h(0);
/// let fused = fuse_single_qubit_gates(&c);
/// assert_eq!(fused.len(), 1);
/// ```
pub fn fuse_single_qubit_gates(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out = Circuit::new(n, circuit.num_clbits());
    // Pending accumulated unitary per qubit.
    let mut pending: Vec<Option<Mat2>> = vec![None; n];

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Mat2>>, q: usize| {
        if let Some(u) = pending[q].take() {
            if let Some(gate) = resynthesize(&u) {
                out.push(Instruction::single_qubit(gate, xtalk_ir::Qubit::from(q)));
            }
        }
    };

    for ins in circuit.iter() {
        let gate = ins.gate();
        if gate.is_single_qubit() {
            let q = ins.qubits()[0].index();
            let m = xtalk_sim::single_qubit_matrix(gate);
            pending[q] = Some(match pending[q].take() {
                Some(acc) => m.mul(&acc),
                None => m,
            });
        } else {
            for q in ins.qubits() {
                flush(&mut out, &mut pending, q.index());
            }
            out.push(ins.clone());
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Resynthesizes a 2×2 unitary as a native gate: `None` for (global-phase)
/// identity, `u1(λ)` for diagonal matrices, else `u3(θ, φ, λ)`.
///
/// # Panics
///
/// Panics if the matrix is not unitary.
pub fn resynthesize(u: &Mat2) -> Option<Gate> {
    assert!(u.is_unitary(1e-9), "resynthesize needs a unitary matrix");
    let (theta, phi, lam) = u3_params(u);
    let eps = 1e-12;
    if theta.abs() < eps {
        let total = normalize_angle(phi + lam);
        if total.abs() < eps {
            return None; // identity up to global phase
        }
        return Some(Gate::U1(total));
    }
    Some(Gate::U3(theta, phi, lam))
}

/// Extracts `(θ, φ, λ)` such that `u3(θ, φ, λ)` equals `u` up to global
/// phase.
pub fn u3_params(u: &Mat2) -> (f64, f64, f64) {
    let a = u.0[0][0];
    let b = u.0[0][1];
    let c = u.0[1][0];
    let theta = 2.0 * c.norm().atan2(a.norm());
    let eps = 1e-12;
    if c.norm() < eps {
        // Diagonal: u3(0, 0, λ) with λ = arg(U11) − arg(U00).
        let lam = normalize_angle(u.0[1][1].arg() - a.arg());
        return (0.0, 0.0, lam);
    }
    if a.norm() < eps {
        // Anti-diagonal: θ = π; split the phases between φ and λ.
        let phi = normalize_angle(c.arg());
        let lam = normalize_angle((-b).arg());
        return (PI, phi, lam);
    }
    let g = a.arg(); // global phase reference
    let phi = normalize_angle(c.arg() - g);
    let lam = normalize_angle((-b).arg() - g);
    (theta, phi, lam)
}

fn normalize_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * PI);
    if a > PI {
        a -= 2.0 * PI;
    } else if a < -PI {
        a += 2.0 * PI;
    }
    a
}

/// `arg` helper for [`C64`] (kept local to avoid widening the sim API).
trait Arg {
    fn arg(&self) -> f64;
}

impl Arg for C64 {
    fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_sim::{ideal, single_qubit_matrix};

    fn fidelity(a: &Circuit, b: &Circuit) -> f64 {
        ideal::final_state(a).fidelity(&ideal::final_state(b))
    }

    #[test]
    fn resynthesis_roundtrips_every_gate() {
        let gates = [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::U1(0.7),
            Gate::U2(0.3, -1.1),
            Gate::U3(2.2, 1.2, -0.4),
            Gate::Rx(0.9),
            Gate::Ry(-2.1),
            Gate::Rz(0.33),
        ];
        for g in gates {
            let m = single_qubit_matrix(&g);
            let resynth = resynthesize(&m).expect("non-identity");
            let m2 = single_qubit_matrix(&resynth);
            // Equal up to global phase: |tr(m† m2)| = 2.
            let mut tr = C64::ZERO;
            let md = m.dagger();
            for i in 0..2 {
                for k in 0..2 {
                    tr += md.0[i][k] * m2.0[k][i];
                }
            }
            assert!((tr.norm() - 2.0).abs() < 1e-9, "{g}: |tr| {}", tr.norm());
        }
    }

    #[test]
    fn identity_chains_vanish() {
        let mut c = Circuit::new(1, 0);
        c.h(0).h(0).s(0).sdg(0).x(0).x(0);
        let fused = fuse_single_qubit_gates(&c);
        assert!(fused.is_empty(), "{fused}");
    }

    #[test]
    fn long_chain_becomes_one_gate() {
        let mut c = Circuit::new(1, 0);
        c.h(0).t(0).s(0).rx(0.3, 0).ry(1.2, 0).h(0).tdg(0);
        let fused = fuse_single_qubit_gates(&c);
        assert_eq!(fused.len(), 1);
        assert!(fidelity(&c, &fused) > 1.0 - 1e-9);
    }

    #[test]
    fn diagonal_chains_become_u1() {
        let mut c = Circuit::new(1, 0);
        c.s(0).t(0).rz(0.5, 0);
        let fused = fuse_single_qubit_gates(&c);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.instructions()[0].gate().name(), "u1");
    }

    #[test]
    fn fusion_respects_two_qubit_boundaries() {
        let mut c = Circuit::new(2, 0);
        c.h(0).t(0).cx(0, 1).s(0).h(0);
        let fused = fuse_single_qubit_gates(&c);
        // h,t fuse; cx; s,h fuse → 3 instructions.
        assert_eq!(fused.len(), 3);
        assert!(fused.instructions()[1].gate().is_two_qubit());
        assert!(fidelity(&c, &fused) > 1.0 - 1e-9);
    }

    #[test]
    fn fusion_respects_barriers_and_measures() {
        let mut c = Circuit::new(1, 1);
        c.h(0).barrier([0]).h(0).measure(0, 0);
        let fused = fuse_single_qubit_gates(&c);
        // The two H's must NOT cancel across the barrier.
        assert_eq!(fused.count_gate("barrier"), 1);
        assert_eq!(fused.len(), 4);
        let p = ideal::distribution(&fused);
        assert!((p[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_circuits_preserve_semantics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let mut c = Circuit::new(3, 0);
            for _ in 0..25 {
                match rng.gen_range(0..8) {
                    0 => c.h(rng.gen_range(0..3u32)),
                    1 => c.t(rng.gen_range(0..3u32)),
                    2 => c.s(rng.gen_range(0..3u32)),
                    3 => c.rx(rng.gen_range(-3.0..3.0), rng.gen_range(0..3u32)),
                    4 => c.rz(rng.gen_range(-3.0..3.0), rng.gen_range(0..3u32)),
                    5 => c.u3(
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(0..3u32),
                    ),
                    _ => {
                        let a = rng.gen_range(0..3u32);
                        let b = (a + rng.gen_range(1..3u32)) % 3;
                        c.cx(a, b)
                    }
                };
            }
            let fused = fuse_single_qubit_gates(&c);
            assert!(fused.len() <= c.len());
            let f = fidelity(&c, &fused);
            assert!(f > 1.0 - 1e-9, "trial {trial}: fidelity {f}");
        }
    }

    #[test]
    #[should_panic(expected = "needs a unitary")]
    fn non_unitary_rejected() {
        let z = C64::ZERO;
        resynthesize(&Mat2([[C64::ONE, C64::ONE], [z, z]]));
    }
}
