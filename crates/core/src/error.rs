//! Error types for routing and scheduling.

use std::error::Error;
use std::fmt;
use xtalk_budget::Exhausted;
use xtalk_pass::PassError;

/// Errors produced by the scheduling and routing layers.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The requested qubits are disconnected in the coupling graph.
    NoPath {
        /// Source qubit.
        from: u32,
        /// Destination qubit.
        to: u32,
    },
    /// The circuit contains a two-qubit gate on non-adjacent qubits (it
    /// was not routed before scheduling).
    NotHardwareCompliant {
        /// Offending instruction index.
        instruction: usize,
    },
    /// The serialization constraints became cyclic (internal invariant;
    /// should not escape the scheduler).
    CyclicConstraints,
    /// A scheduler needs crosstalk characterization data that the context
    /// does not provide.
    MissingCharacterization,
    /// The circuit declares more qubits than the device provides.
    WidthExceeded {
        /// Qubits the circuit declares.
        circuit: usize,
        /// Qubits the device provides.
        device: usize,
    },
    /// The execution budget ran out before a compile stage could start.
    Budget(Exhausted),
    /// An injected fault fired at a pass boundary (`pass.<id>`).
    Fault(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoPath { from, to } => {
                write!(f, "no path between qubit {from} and qubit {to} in the coupling graph")
            }
            CoreError::NotHardwareCompliant { instruction } => write!(
                f,
                "instruction {instruction} applies a two-qubit gate to non-adjacent qubits"
            ),
            CoreError::CyclicConstraints => {
                write!(f, "serialization constraints form a cycle")
            }
            CoreError::MissingCharacterization => {
                write!(f, "scheduler context lacks crosstalk characterization data")
            }
            CoreError::WidthExceeded { circuit, device } => {
                write!(f, "circuit uses {circuit} qubits but the device has {device}")
            }
            CoreError::Budget(e) => {
                write!(f, "budget exhausted before the stage could run: {}", e.as_str())
            }
            CoreError::Fault(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<PassError<CoreError>> for CoreError {
    /// Flattens a managed pass failure: the cross-cutting variants map to
    /// [`CoreError::Budget`] / [`CoreError::Fault`], a stage failure
    /// passes through unchanged.
    fn from(e: PassError<CoreError>) -> CoreError {
        match e {
            PassError::Budget(b) => CoreError::Budget(b),
            PassError::Fault(msg) => CoreError::Fault(msg),
            PassError::Pass(inner) => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CoreError::NoPath { from: 0, to: 5 },
            CoreError::NotHardwareCompliant { instruction: 3 },
            CoreError::CyclicConstraints,
            CoreError::MissingCharacterization,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
