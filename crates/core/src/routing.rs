//! SWAP-path routing: the communication primitive of
//! nearest-neighbor-connected superconducting machines (paper Section
//! 8.3).

use crate::{CoreError, SchedulerContext};
use xtalk_device::{Edge, Topology};
use xtalk_ir::{Circuit, Qubit};

/// A meet-in-the-middle SWAP benchmark between two distant qubits: a
/// Hadamard on `a`, SWAP chains moving both endpoints toward the middle
/// of the shortest path, and a final CNOT creating a Bell pair on the
/// middle edge (the paper's known-answer construction for tomography).
#[derive(Clone, PartialEq, Debug)]
pub struct SwapBenchmark {
    /// The routed circuit (SWAPs decomposed into CNOTs, no measurements).
    pub circuit: Circuit,
    /// Where the Bell pair ends up.
    pub bell_pair: (Qubit, Qubit),
    /// The qubit path used.
    pub path: Vec<u32>,
}

/// Builds the meet-in-the-middle SWAP benchmark from `a` to `b`.
///
/// For the paper's Poughkeepsie example `0 ↔ 13` this produces
/// `h 0; swap 0,5; swap 13,12; swap 5,10; swap 12,11; cx 10,11` (SWAPs
/// decomposed into three CNOTs each).
///
/// # Errors
///
/// [`CoreError::NoPath`] if the qubits are disconnected.
///
/// # Panics
///
/// Panics if `a == b` or they are already adjacent (no SWAPs to study).
pub fn swap_benchmark(topo: &Topology, a: u32, b: u32) -> Result<SwapBenchmark, CoreError> {
    assert_ne!(a, b, "endpoints must differ");
    let path = topo.shortest_path(a, b).ok_or(CoreError::NoPath { from: a, to: b })?;
    assert!(path.len() > 2, "qubits {a},{b} are adjacent; nothing to route");

    let mut circuit = Circuit::new(topo.num_qubits(), 2);
    circuit.h(a);
    let (mut l, mut r) = (0usize, path.len() - 1);
    while r - l > 1 {
        swap_as_cx(&mut circuit, path[l], path[l + 1]);
        l += 1;
        if r - l > 1 {
            swap_as_cx(&mut circuit, path[r], path[r - 1]);
            r -= 1;
        }
    }
    circuit.cx(path[l], path[r]);
    Ok(SwapBenchmark {
        circuit,
        bell_pair: (Qubit::new(path[l]), Qubit::new(path[r])),
        path,
    })
}

/// Convenience: just the circuit of [`swap_benchmark`].
///
/// # Errors
///
/// Same as [`swap_benchmark`].
pub fn swap_circuit_between(topo: &Topology, a: u32, b: u32) -> Result<Circuit, CoreError> {
    swap_benchmark(topo, a, b).map(|s| s.circuit)
}

/// Appends `swap x,y` decomposed into three CNOTs.
fn swap_as_cx(circuit: &mut Circuit, x: u32, y: u32) {
    circuit.cx(x, y).cx(y, x).cx(x, y);
}

/// The coupling edges a path's SWAP chain drives.
pub fn path_edges(path: &[u32]) -> Vec<Edge> {
    path.windows(2).map(|w| Edge::new(w[0], w[1])).collect()
}

/// `true` if no pair of edges along the path interferes above the
/// context's threshold — such paths are the paper's "crosstalk-free"
/// baselines (Figure 7).
pub fn path_is_crosstalk_free(ctx: &SchedulerContext, path: &[u32]) -> bool {
    let edges = path_edges(path);
    for (i, &a) in edges.iter().enumerate() {
        for &b in &edges[i + 1..] {
            if !a.shares_qubit(b) && ctx.is_high_pair(a, b) {
                return false;
            }
        }
    }
    true
}

/// All endpoint pairs at the given path length whose shortest path is
/// crosstalk-free (respectively crosstalk-affected when `free` is
/// false). Used to pick the evaluation sets of Figures 5 and 7.
pub fn endpoint_pairs_by_crosstalk(
    topo: &Topology,
    ctx: &SchedulerContext,
    path_len: u32,
    free: bool,
) -> Vec<(u32, u32)> {
    let n = topo.num_qubits() as u32;
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if topo.qubit_distance(a, b) == Some(path_len) {
                if let Some(path) = topo.shortest_path(a, b) {
                    if path_is_crosstalk_free(ctx, &path) == free {
                        out.push((a, b));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;
    use xtalk_sim::ideal;

    #[test]
    fn paper_example_path_0_to_13() {
        let topo = Topology::poughkeepsie();
        let b = swap_benchmark(&topo, 0, 13).unwrap();
        assert_eq!(b.path, vec![0, 5, 10, 11, 12, 13]);
        assert_eq!(b.bell_pair, (Qubit::new(10), Qubit::new(11)));
        // 4 SWAPs × 3 CX + 1 CX = 13 CNOTs.
        assert_eq!(b.circuit.count_gate("cx"), 13);
        assert_eq!(b.circuit.count_gate("h"), 1);
    }

    #[test]
    fn produces_a_bell_pair() {
        let topo = Topology::line(6);
        let b = swap_benchmark(&topo, 0, 5).unwrap();
        let mut c = b.circuit.clone();
        let (qa, qb) = b.bell_pair;
        c.measure(qa, 0).measure(qb, 1);
        let p = ideal::distribution(&c);
        assert!((p[0b00] - 0.5).abs() < 1e-9, "p00 {}", p[0b00]);
        assert!((p[0b11] - 0.5).abs() < 1e-9, "p11 {}", p[0b11]);
    }

    #[test]
    fn all_gates_are_hardware_compliant() {
        let topo = Topology::poughkeepsie();
        for (a, b) in [(0, 13), (4, 16), (9, 10), (1, 13)] {
            let bench = swap_benchmark(&topo, a, b).unwrap();
            for ins in bench.circuit.iter().filter(|i| i.gate().is_two_qubit()) {
                let e = Edge::from(ins.edge().unwrap());
                assert!(topo.has_edge(e), "{e} not an edge");
            }
        }
    }

    #[test]
    fn disconnected_reports_no_path() {
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            swap_circuit_between(&topo, 0, 3),
            Err(CoreError::NoPath { from: 0, to: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn adjacent_endpoints_rejected() {
        let topo = Topology::line(3);
        let _ = swap_benchmark(&topo, 0, 1);
    }

    #[test]
    fn crosstalk_free_path_detection() {
        let dev = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        // 0-1-2-3 stays clear of the hot pairs.
        assert!(path_is_crosstalk_free(&ctx, &[0, 1, 2, 3]));
        // 5-10 vs 11-12 is a planted 4x pair.
        assert!(!path_is_crosstalk_free(&ctx, &[5, 10, 11, 12]));
    }

    #[test]
    fn endpoint_pair_scan_is_consistent() {
        let dev = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let topo = dev.topology();
        for len in 3..=5 {
            let free = endpoint_pairs_by_crosstalk(topo, &ctx, len, true);
            let hot = endpoint_pairs_by_crosstalk(topo, &ctx, len, false);
            assert!(!free.is_empty(), "no free paths at length {len}");
            assert!(!hot.is_empty(), "no hot paths at length {len}");
            for (a, b) in free.iter().chain(&hot) {
                assert_eq!(topo.qubit_distance(*a, *b), Some(len));
            }
        }
    }
}
