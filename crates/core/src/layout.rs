//! Qubit layout (logical → physical placement) and SWAP-insertion
//! routing — the "Hardware Mapping, Routing" stage of the paper's
//! toolflow (its Figure 2), which XtalkSched consumes the output of.

use crate::{CoreError, SchedulerContext};
use std::collections::BTreeMap;
use xtalk_device::Topology;
use xtalk_ir::{Circuit, Gate, Instruction, Qubit};

/// A bijective placement of logical circuit qubits onto physical device
/// qubits.
///
/// ```
/// use xtalk_core::layout::Layout;
/// let l = Layout::from_mapping(&[3, 1, 0], 5).unwrap();
/// assert_eq!(l.physical(0), 3);
/// assert_eq!(l.logical(1), Some(1));
/// assert_eq!(l.logical(4), None);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Layout {
    /// `phys[l]` = physical qubit hosting logical qubit `l`.
    phys: Vec<u32>,
    /// `logi[p]` = logical qubit at physical `p`, if any.
    logi: Vec<Option<u32>>,
}

impl Layout {
    /// Identity placement of `n_logical` qubits on the first physical
    /// qubits of an `n_physical`-qubit device.
    ///
    /// # Panics
    ///
    /// Panics if the device is too small.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Self {
        assert!(n_logical <= n_physical, "device too small");
        Layout::from_mapping(&(0..n_logical as u32).collect::<Vec<_>>(), n_physical)
            .expect("identity mapping is valid")
    }

    /// Builds from an explicit `logical → physical` vector.
    ///
    /// # Errors
    ///
    /// Returns `CoreError::NotHardwareCompliant` (instruction 0) when the
    /// mapping repeats or exceeds the physical register.
    pub fn from_mapping(phys: &[u32], n_physical: usize) -> Result<Self, CoreError> {
        let mut logi = vec![None; n_physical];
        for (l, &p) in phys.iter().enumerate() {
            if (p as usize) >= n_physical || logi[p as usize].is_some() {
                return Err(CoreError::NotHardwareCompliant { instruction: 0 });
            }
            logi[p as usize] = Some(l as u32);
        }
        Ok(Layout { phys: phys.to_vec(), logi })
    }

    /// Number of logical qubits placed.
    pub fn num_logical(&self) -> usize {
        self.phys.len()
    }

    /// Physical host of logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn physical(&self, l: u32) -> u32 {
        self.phys[l as usize]
    }

    /// Logical occupant of physical qubit `p`, if any.
    pub fn logical(&self, p: u32) -> Option<u32> {
        self.logi[p as usize]
    }

    /// Swaps the occupants of two physical qubits (either may be empty).
    pub fn swap_physical(&mut self, a: u32, b: u32) {
        let la = self.logi[a as usize];
        let lb = self.logi[b as usize];
        self.logi[a as usize] = lb;
        self.logi[b as usize] = la;
        if let Some(l) = la {
            self.phys[l as usize] = b;
        }
        if let Some(l) = lb {
            self.phys[l as usize] = a;
        }
    }

    /// Number of physical qubits the layout targets.
    pub fn num_physical(&self) -> usize {
        self.logi.len()
    }

    /// The full logical → physical vector.
    pub fn mapping(&self) -> &[u32] {
        &self.phys
    }
}

/// A greedy interaction-aware initial layout: logical pairs that interact
/// most are placed on adjacent physical qubits (BFS growth from the
/// highest-degree physical qubit).
pub fn greedy_layout(circuit: &Circuit, topo: &Topology) -> Layout {
    let _span = xtalk_obs::span("layout");
    let n_logical = circuit.num_qubits();
    assert!(n_logical <= topo.num_qubits(), "device too small for circuit");

    // Interaction weights between logical qubits.
    let mut weight: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for ins in circuit.iter().filter(|i| i.gate().is_two_qubit()) {
        let (a, b) = (ins.qubits()[0].raw(), ins.qubits()[1].raw());
        let key = (a.min(b), a.max(b));
        *weight.entry(key).or_insert(0) += 1;
    }

    // Total interaction weight per logical qubit.
    let mut degree = vec![0usize; n_logical];
    for (&(a, b), &w) in &weight {
        degree[a as usize] += w;
        degree[b as usize] += w;
    }
    let w_of = |a: u32, b: u32| -> usize {
        *weight.get(&(a.min(b), a.max(b))).unwrap_or(&0)
    };

    // Incremental placement: repeatedly take the unplaced logical qubit
    // most attached to the placed set and put it on the free physical
    // qubit minimizing the weighted distance to its placed partners.
    let mut phys: Vec<Option<u32>> = vec![None; n_logical];
    let mut free: Vec<bool> = vec![true; topo.num_qubits()];
    for _ in 0..n_logical {
        let next = (0..n_logical as u32)
            .filter(|&l| phys[l as usize].is_none())
            .max_by_key(|&l| {
                let attachment: usize = (0..n_logical as u32)
                    .filter(|&o| phys[o as usize].is_some())
                    .map(|o| w_of(l, o))
                    .sum();
                (attachment, degree[l as usize])
            })
            .expect("loop bounded by n_logical");
        let placed_partners: Vec<(u32, usize)> = (0..n_logical as u32)
            .filter_map(|o| {
                let w = w_of(next, o);
                phys[o as usize].filter(|_| w > 0).map(|p| (p, w))
            })
            .collect();
        let best_site = (0..topo.num_qubits() as u32)
            .filter(|&p| free[p as usize])
            .min_by_key(|&p| {
                if placed_partners.is_empty() {
                    // First placement: prefer well-connected centers.
                    (0, std::cmp::Reverse(topo.neighbors(p).len()), p)
                } else {
                    let cost: usize = placed_partners
                        .iter()
                        .map(|&(q, w)| {
                            w * topo.qubit_distance(p, q).unwrap_or(u32::MAX / 2) as usize
                        })
                        .sum();
                    (cost, std::cmp::Reverse(0), p)
                }
            })
            .expect("device has free sites");
        phys[next as usize] = Some(best_site);
        free[best_site as usize] = false;
    }
    let phys: Vec<u32> = phys.into_iter().map(|p| p.expect("all placed")).collect();
    Layout::from_mapping(&phys, topo.num_qubits()).expect("permutation is valid")
}

/// The output of routing: a hardware-compliant physical circuit plus the
/// final layout (measurement results are already steered to the right
/// classical bits, so callers usually only need it for chaining).
#[derive(Clone, PartialEq, Debug)]
pub struct RoutedCircuit {
    /// The physical circuit (every 2q gate on a coupling edge, SWAPs
    /// decomposed into CNOTs).
    pub circuit: Circuit,
    /// Placement before the first instruction.
    pub initial_layout: Layout,
    /// Placement after the last instruction.
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
}

/// Routes a logical circuit onto `topo` starting from `layout`, inserting
/// meet-in-the-middle SWAP chains for non-adjacent CNOTs (greedy
/// shortest-path routing, the classic baseline the paper's toolflow
/// invokes through Qiskit's passes).
///
/// # Errors
///
/// [`CoreError::NoPath`] if two interacting qubits lie in disconnected
/// components.
///
/// # Panics
///
/// Panics if the circuit has more qubits than the device.
pub fn route(circuit: &Circuit, topo: &Topology, layout: Layout) -> Result<RoutedCircuit, CoreError> {
    let _span = xtalk_obs::span("routing");
    assert!(circuit.num_qubits() <= topo.num_qubits(), "device too small for circuit");
    assert_eq!(layout.num_logical(), circuit.num_qubits(), "layout width mismatch");
    let initial_layout = layout.clone();
    let mut layout = layout;
    let mut out = Circuit::new(topo.num_qubits(), circuit.num_clbits());
    let mut swaps = 0usize;

    for ins in circuit.iter() {
        match ins.gate() {
            Gate::Barrier => {
                let qs: Vec<Qubit> = ins
                    .qubits()
                    .iter()
                    .map(|q| Qubit::new(layout.physical(q.raw())))
                    .collect();
                out.push(Instruction::barrier(qs));
            }
            Gate::Measure => {
                let p = layout.physical(ins.qubits()[0].raw());
                out.measure(p, ins.clbit().expect("measure has clbit").raw());
            }
            g if g.is_two_qubit() => {
                let (la, lb) = (ins.qubits()[0].raw(), ins.qubits()[1].raw());
                let (mut pa, mut pb) = (layout.physical(la), layout.physical(lb));
                if !topo.are_adjacent(pa, pb) {
                    let path = topo
                        .shortest_path(pa, pb)
                        .ok_or(CoreError::NoPath { from: pa, to: pb })?;
                    // Meet in the middle: advance both ends along the path.
                    let (mut l, mut r) = (0usize, path.len() - 1);
                    while r - l > 1 {
                        emit_swap(&mut out, path[l], path[l + 1]);
                        layout.swap_physical(path[l], path[l + 1]);
                        swaps += 1;
                        l += 1;
                        if r - l > 1 {
                            emit_swap(&mut out, path[r], path[r - 1]);
                            layout.swap_physical(path[r], path[r - 1]);
                            swaps += 1;
                            r -= 1;
                        }
                    }
                    pa = layout.physical(la);
                    pb = layout.physical(lb);
                    debug_assert!(topo.are_adjacent(pa, pb));
                }
                out.push(Instruction::two_qubit(*g, Qubit::new(pa), Qubit::new(pb)));
            }
            g => {
                let p = layout.physical(ins.qubits()[0].raw());
                out.push(Instruction::single_qubit(*g, Qubit::new(p)));
            }
        }
    }

    xtalk_obs::counter!("routing.swaps_inserted", swaps as u64);
    Ok(RoutedCircuit { circuit: out, initial_layout, final_layout: layout, swaps_inserted: swaps })
}

/// Routes with a [`greedy_layout`] starting placement.
///
/// # Errors
///
/// See [`route`].
pub fn route_with_greedy_layout(circuit: &Circuit, topo: &Topology) -> Result<RoutedCircuit, CoreError> {
    route(circuit, topo, greedy_layout(circuit, topo))
}

fn emit_swap(out: &mut Circuit, a: u32, b: u32) {
    out.cx(a, b).cx(b, a).cx(a, b);
}

/// Checks physical compliance of a routed circuit against the context's
/// calibration (every 2q gate on a calibrated edge).
///
/// # Errors
///
/// See [`crate::sched::check_hardware_compliant`].
pub fn verify_routed(routed: &RoutedCircuit, ctx: &SchedulerContext) -> Result<(), CoreError> {
    crate::sched::check_hardware_compliant(&routed.circuit, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;
    use xtalk_sim::ideal;

    #[test]
    fn layout_swap_bookkeeping() {
        let mut l = Layout::trivial(3, 5);
        l.swap_physical(0, 3); // move logical 0 to physical 3
        assert_eq!(l.physical(0), 3);
        assert_eq!(l.logical(3), Some(0));
        assert_eq!(l.logical(0), None);
        l.swap_physical(3, 1); // swap logical 0 and logical 1
        assert_eq!(l.physical(0), 1);
        assert_eq!(l.physical(1), 3);
    }

    #[test]
    fn invalid_mappings_rejected() {
        assert!(Layout::from_mapping(&[0, 0], 3).is_err());
        assert!(Layout::from_mapping(&[0, 9], 3).is_err());
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let topo = Topology::line(4);
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        let routed = route(&c, &topo, Layout::trivial(4, 4)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.count_gate("cx"), 3);
    }

    #[test]
    fn distant_gates_get_swap_chains() {
        let topo = Topology::line(5);
        let mut c = Circuit::new(5, 0);
        c.cx(0, 4);
        let routed = route(&c, &topo, Layout::trivial(5, 5)).unwrap();
        assert!(routed.swaps_inserted >= 3);
        // Compliance: all CX on edges.
        for ins in routed.circuit.iter().filter(|i| i.gate().is_two_qubit()) {
            let (a, b) = ins.edge().unwrap();
            assert!(topo.are_adjacent(a.raw(), b.raw()));
        }
        // Final layout reflects the moves.
        assert_ne!(routed.final_layout, routed.initial_layout);
    }

    #[test]
    fn routing_preserves_measured_semantics() {
        // The measured distribution over clbits is invariant under
        // routing, whatever SWAPs were inserted.
        let topo = Topology::poughkeepsie();
        let mut c = Circuit::new(4, 4);
        c.h(0).cx(0, 2).t(1).cx(1, 3).cx(0, 3).measure_all();
        // A deliberately scattered initial layout forcing SWAPs.
        let layout = Layout::from_mapping(&[0, 13, 6, 17], 20).unwrap();
        let routed = route(&c, &topo, layout).unwrap();
        assert!(routed.swaps_inserted > 0);
        let logical = ideal::distribution(&c);
        let physical = ideal::distribution(&routed.circuit);
        for (a, b) in logical.iter().zip(&physical) {
            assert!((a - b).abs() < 1e-9, "distribution changed by routing");
        }
    }

    #[test]
    fn greedy_layout_clusters_interacting_qubits() {
        let topo = Topology::poughkeepsie();
        let mut c = Circuit::new(4, 0);
        for _ in 0..5 {
            c.cx(0, 1).cx(1, 2).cx(2, 3);
        }
        let layout = greedy_layout(&c, &topo);
        // The heaviest-interacting pairs should sit close together:
        // total routed swaps with the greedy layout must not exceed the
        // trivial layout's.
        let greedy = route(&c, &topo, layout).unwrap().swaps_inserted;
        let trivial = route(&c, &topo, Layout::trivial(4, 20)).unwrap().swaps_inserted;
        assert!(greedy <= trivial, "greedy {greedy} vs trivial {trivial}");
    }

    #[test]
    fn routed_output_schedules_end_to_end() {
        use crate::{Scheduler, XtalkSched};
        let device = Device::poughkeepsie(7);
        let ctx = crate::SchedulerContext::from_ground_truth(&device);
        let mut c = Circuit::new(5, 5);
        c.h(0);
        for q in 0..4u32 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let routed = route_with_greedy_layout(&c, device.topology()).unwrap();
        verify_routed(&routed, &ctx).unwrap();
        let sched = XtalkSched::new(0.5).schedule(&routed.circuit, &ctx).unwrap();
        sched.validate().unwrap();
    }

    #[test]
    fn disconnected_device_reports_no_path() {
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        let mut c = Circuit::new(4, 0);
        c.cx(0, 3);
        assert!(matches!(
            route(&c, &topo, Layout::trivial(4, 4)),
            Err(CoreError::NoPath { .. })
        ));
    }
}
