//! Scheduler inputs: calibration + crosstalk characterization.

use xtalk_charac::Characterization;
use xtalk_device::{Calibration, Device, Edge};
use xtalk_ir::{Gate, Qubit};

/// Everything a scheduler is allowed to know about the machine: the daily
/// calibration (gate durations, independent errors, coherence times) and
/// the crosstalk [`Characterization`] produced by `xtalk-charac`.
///
/// Crucially this does *not* expose the device's ground-truth
/// [`xtalk_device::CrosstalkMap`] — the compiler sees measurements, the
/// simulator sees truth (paper Figure 2).
///
/// ```
/// use xtalk_core::SchedulerContext;
/// use xtalk_device::{Device, Edge};
/// let dev = Device::poughkeepsie(7);
/// let ctx = SchedulerContext::from_ground_truth(&dev);
/// // The 11x pair is visible as a high-crosstalk candidate.
/// assert!(ctx.is_high_pair(Edge::new(10, 15), Edge::new(11, 12)));
/// assert!(!ctx.is_high_pair(Edge::new(0, 1), Edge::new(2, 3)));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SchedulerContext {
    calibration: Calibration,
    characterization: Characterization,
    threshold: f64,
}

impl SchedulerContext {
    /// Builds a context from a device's calibration and a measured
    /// characterization.
    pub fn new(device: &Device, characterization: Characterization) -> Self {
        SchedulerContext {
            calibration: device.calibration().clone(),
            characterization,
            threshold: 3.0,
        }
    }

    /// A context with *perfect* crosstalk knowledge from the device's
    /// ground truth — the upper-bound configuration used in tests and
    /// optimality studies.
    pub fn from_ground_truth(device: &Device) -> Self {
        SchedulerContext::new(device, Characterization::from_ground_truth(device))
    }

    /// Overrides the high-crosstalk threshold (default 3×, the paper's
    /// Figure 3 criterion).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 1.0, "threshold below 1 is meaningless");
        self.threshold = threshold;
        self
    }

    /// The calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The characterization.
    pub fn characterization(&self) -> &Characterization {
        &self.characterization
    }

    /// The high-crosstalk threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Duration of a gate under this calibration.
    pub fn duration_of(&self, gate: &Gate, qubits: &[Qubit]) -> u64 {
        self.calibration.duration_of(gate, qubits)
    }

    /// Usable coherence time `min(T1, T2)` of qubit `q`, in ns.
    pub fn coherence_ns(&self, q: u32) -> f64 {
        self.calibration.coherence_ns(q)
    }

    /// Independent CNOT error for an edge.
    pub fn independent_error(&self, e: Edge) -> f64 {
        self.characterization.independent(e)
    }

    /// The conditional error `E(of | given)` the scheduler should assume
    /// when the two gates overlap.
    pub fn conditional_error(&self, of: Edge, given: Edge) -> f64 {
        self.characterization.conditional_or_independent(of, given)
    }

    /// `true` if the pair's measured conditional error exceeds
    /// `threshold × independent` in either direction — i.e. the scheduler
    /// should consider serializing them.
    pub fn is_high_pair(&self, a: Edge, b: Edge) -> bool {
        let ab = self.characterization.conditional(a, b);
        let ba = self.characterization.conditional(b, a);
        let ia = self.characterization.independent(a);
        let ib = self.characterization.independent(b);
        ab.map(|c| c > self.threshold * ia).unwrap_or(false)
            || ba.map(|c| c > self.threshold * ib).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_context_exposes_estimates_only() {
        let dev = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        assert_eq!(ctx.independent_error(Edge::new(10, 15)), 0.01);
        assert!(
            (ctx.conditional_error(Edge::new(10, 15), Edge::new(11, 12)) - 0.11).abs() < 1e-12
        );
        // Unmeasured pair falls back to independent.
        assert_eq!(
            ctx.conditional_error(Edge::new(0, 1), Edge::new(17, 18)),
            ctx.independent_error(Edge::new(0, 1))
        );
    }

    #[test]
    fn threshold_tuning_changes_high_set() {
        let dev = Device::poughkeepsie(1);
        let strict = SchedulerContext::from_ground_truth(&dev).with_threshold(10.0);
        assert!(strict.is_high_pair(Edge::new(10, 15), Edge::new(11, 12)));
        assert!(!strict.is_high_pair(Edge::new(13, 14), Edge::new(18, 19)));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn subunit_threshold_rejected() {
        let dev = Device::line(2, 0);
        let _ = SchedulerContext::from_ground_truth(&dev).with_threshold(0.5);
    }

    #[test]
    fn durations_delegate_to_calibration() {
        let dev = Device::line(3, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let q = [Qubit::new(0), Qubit::new(1)];
        assert_eq!(
            ctx.duration_of(&Gate::Cx, &q),
            dev.calibration().duration_of(&Gate::Cx, &q)
        );
        assert!(ctx.coherence_ns(0) > 0.0);
    }
}
