//! The scheduler interface and the shared schedule-cost model.

pub mod par;
pub mod serial;
pub mod xtalk;

use crate::sched::xtalk::XtalkSchedReport;
use crate::{CoreError, SchedulerContext};
use xtalk_budget::Budget;
use xtalk_device::Edge;
use xtalk_ir::{Circuit, ScheduledCircuit};
use xtalk_pass::Fnv1a;

/// An instruction scheduler: assigns start times to a hardware-compliant
/// circuit.
pub trait Scheduler {
    /// Produces a timed schedule.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError::NotHardwareCompliant`] for
    /// two-qubit gates off the coupling map and
    /// [`CoreError::CyclicConstraints`] on internal ordering conflicts.
    fn schedule(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<ScheduledCircuit, CoreError>;

    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Folds the scheduler's identity *and configuration* into a cache
    /// key. The default covers configuration-free schedulers; schedulers
    /// with knobs (e.g. `XtalkSched`'s ω, leaf cap, ordering, engine)
    /// must override it so differently-configured instances never share
    /// cached schedules.
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_str(self.name());
    }

    /// Schedules under a cooperative [`Budget`], returning the search
    /// report when the scheduler produces one. The default ignores the
    /// budget — the baseline schedulers are single-pass — and reports
    /// nothing; anytime schedulers override it.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    fn schedule_report(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
        budget: &Budget,
    ) -> Result<(ScheduledCircuit, Option<XtalkSchedReport>), CoreError> {
        let _ = budget;
        Ok((self.schedule(circuit, ctx)?, None))
    }
}

/// Verifies that every two-qubit gate sits on a calibrated coupling edge.
///
/// # Errors
///
/// [`CoreError::NotHardwareCompliant`] naming the first offending
/// instruction.
pub fn check_hardware_compliant(
    circuit: &Circuit,
    ctx: &SchedulerContext,
) -> Result<(), CoreError> {
    for (i, ins) in circuit.iter().enumerate() {
        if ins.gate().is_two_qubit() {
            let e = Edge::from(ins.edge().expect("two-qubit gate has an edge"));
            if !ctx.calibration().has_cx_edge(e) {
                return Err(CoreError::NotHardwareCompliant { instruction: i });
            }
        }
    }
    Ok(())
}

/// The paper's Eq. 17 objective evaluated on a realized schedule:
///
/// `ω · Σ_g log ε(g)  +  (1−ω) · Σ_q t(q)/T(q)`
///
/// where `ε(g)` is the gate's independent error unless it overlaps in
/// time with other two-qubit gates, in which case it is the *maximum*
/// conditional error over the overlapping partners (Eq. 6/7), and `t(q)`
/// is the qubit lifetime under the schedule. Lower is better; both terms
/// decrease when their error source shrinks (`log ε` is negative and
/// grows toward 0 as ε worsens — we keep the paper's published form).
pub fn schedule_cost(sched: &ScheduledCircuit, ctx: &SchedulerContext, omega: f64) -> f64 {
    let circuit = sched.circuit();

    // Gate error term.
    let mut eps: Vec<Option<f64>> = circuit
        .iter()
        .map(|ins| {
            ins.gate()
                .is_two_qubit()
                .then(|| ctx.independent_error(Edge::from(ins.edge().expect("edge"))))
        })
        .collect();
    for (i, j) in sched.overlapping_two_qubit_pairs() {
        let ei = Edge::from(circuit.instructions()[i].edge().expect("edge"));
        let ej = Edge::from(circuit.instructions()[j].edge().expect("edge"));
        let ci = ctx.conditional_error(ei, ej);
        let cj = ctx.conditional_error(ej, ei);
        if let Some(v) = &mut eps[i] {
            *v = v.max(ci);
        }
        if let Some(v) = &mut eps[j] {
            *v = v.max(cj);
        }
    }
    let gate_term: f64 = eps.iter().flatten().map(|e| e.max(1e-12).ln()).sum();

    // Decoherence term.
    let mut deco = 0.0;
    for q in 0..circuit.num_qubits() {
        let t = sched.qubit_lifetime(xtalk_ir::Qubit::from(q));
        if t > 0 {
            deco += t as f64 / ctx.coherence_ns(q as u32);
        }
    }

    omega * gate_term + (1.0 - omega) * deco
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize;
    use xtalk_device::Device;

    #[test]
    fn compliance_check() {
        let dev = Device::line(4, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut good = Circuit::new(4, 0);
        good.cx(0, 1).cx(2, 3);
        assert!(check_hardware_compliant(&good, &ctx).is_ok());
        let mut bad = Circuit::new(4, 0);
        bad.cx(0, 2);
        assert_eq!(
            check_hardware_compliant(&bad, &ctx),
            Err(CoreError::NotHardwareCompliant { instruction: 0 })
        );
    }

    #[test]
    fn cost_penalizes_overlapping_high_pairs() {
        let dev = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(20, 0);
        c.cx(10, 15).cx(11, 12);
        let par = realize(&c, &ctx, &[]).unwrap();
        let ser = realize(&c, &ctx, &[(0, 1)]).unwrap();
        // With ω = 1 (only crosstalk), serialization strictly wins.
        assert!(schedule_cost(&ser, &ctx, 1.0) < schedule_cost(&par, &ctx, 1.0));
        // With ω = 0 (only decoherence), parallelism wins (or ties).
        assert!(schedule_cost(&par, &ctx, 0.0) <= schedule_cost(&ser, &ctx, 0.0));
    }

    #[test]
    fn cost_ignores_single_qubit_gate_errors() {
        let dev = Device::line(2, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut with_sq = Circuit::new(2, 0);
        with_sq.cx(0, 1);
        let mut extra = with_sq.clone();
        extra.rz(0.1, 0); // zero-duration virtual gate: no lifetime change
        let a = realize(&with_sq, &ctx, &[]).unwrap();
        let b = realize(&extra, &ctx, &[]).unwrap();
        assert!((schedule_cost(&a, &ctx, 0.7) - schedule_cost(&b, &ctx, 0.7)).abs() < 1e-12);
    }

    #[test]
    fn idle_qubits_contribute_nothing() {
        let dev = Device::line(5, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(5, 0);
        c.cx(0, 1);
        let sched = realize(&c, &ctx, &[]).unwrap();
        let cost = schedule_cost(&sched, &ctx, 0.0);
        let expected: f64 = (0..2)
            .map(|q| {
                sched.qubit_lifetime(xtalk_ir::Qubit::new(q)) as f64
                    / ctx.coherence_ns(q)
            })
            .sum();
        assert!((cost - expected).abs() < 1e-12);
    }
}
