//! `SerialSched`: everything serialized — the crosstalk-free but
//! decoherence-heavy baseline (Table 1).

use crate::sched::{check_hardware_compliant, Scheduler};
use crate::{realize, CoreError, SchedulerContext};
use xtalk_ir::{Circuit, ScheduledCircuit};

/// Serializes every unitary instruction in program order (readouts still
/// fire simultaneously at the end, as the hardware requires). No two
/// gates ever overlap, so crosstalk never triggers — at the price of the
/// longest possible schedule and maximal decoherence exposure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SerialSched;

impl SerialSched {
    /// Creates the scheduler.
    pub fn new() -> Self {
        SerialSched
    }
}

impl Scheduler for SerialSched {
    fn schedule(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<ScheduledCircuit, CoreError> {
        let _span = xtalk_obs::span("sched.serial");
        check_hardware_compliant(circuit, ctx)?;
        // Chain consecutive unitaries; measurements and barriers stay
        // governed by their data dependencies (and right-alignment).
        let unitary: Vec<usize> = circuit
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.gate().is_unitary())
            .map(|(i, _)| i)
            .collect();
        let chain: Vec<(usize, usize)> =
            unitary.windows(2).map(|w| (w[0], w[1])).collect();
        realize(circuit, ctx, &chain)
    }

    fn name(&self) -> &'static str {
        "SerialSched"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::schedule_cost;
    use crate::ParSched;
    use xtalk_device::Device;

    #[test]
    fn no_overlaps_ever() {
        let dev = Device::line(6, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(6, 6);
        c.cx(0, 1).cx(2, 3).cx(4, 5).cx(0, 1).measure_all();
        let sched = SerialSched::new().schedule(&c, &ctx).unwrap();
        assert!(sched.overlapping_two_qubit_pairs().is_empty());
    }

    #[test]
    fn longer_than_parallel() {
        // Terminal readouts are what make serialization costly: they fire
        // simultaneously at the end, so serialized gates leave earlier
        // qubits idling (decohering) until readout.
        let dev = Device::line(6, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(6, 6);
        c.cx(0, 1).cx(2, 3).cx(4, 5).measure_all();
        let ser = SerialSched::new().schedule(&c, &ctx).unwrap();
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        assert!(ser.makespan() > par.makespan());
        // Pure-decoherence cost favors the parallel schedule.
        assert!(schedule_cost(&par, &ctx, 0.0) < schedule_cost(&ser, &ctx, 0.0));
    }

    #[test]
    fn crosstalk_free_cost_matches_independent_rates() {
        let dev = Device::poughkeepsie(2);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(20, 0);
        c.cx(10, 15).cx(11, 12);
        let sched = SerialSched::new().schedule(&c, &ctx).unwrap();
        let crosstalk_term = schedule_cost(&sched, &ctx, 1.0);
        let expected = ctx
            .independent_error(xtalk_device::Edge::new(10, 15))
            .ln()
            + ctx.independent_error(xtalk_device::Edge::new(11, 12)).ln();
        assert!((crosstalk_term - expected).abs() < 1e-9);
    }
}
