//! `XtalkSched`: the crosstalk-adaptive scheduler (paper Sections 6–7).

use crate::sched::{check_hardware_compliant, schedule_cost, Scheduler};
use crate::{realize, CoreError, SchedulerContext};
use std::collections::BTreeSet;
use xtalk_budget::Budget;
use xtalk_device::Edge;
use xtalk_ir::{Circuit, ScheduledCircuit};

/// The crosstalk-adaptive scheduler: decides, for every pair of
/// potentially-overlapping high-crosstalk CNOTs, whether to serialize
/// them (and in which order) or let them overlap, minimizing the
/// ω-weighted objective of Eq. 17.
///
/// Two engines are provided:
///
/// * [`XtalkSched::schedule`] — a lazy conflict-driven branch-and-bound:
///   realize the schedule, find an *actually overlapping* high-crosstalk
///   pair, branch three ways (serialize either way, or waive), recurse.
///   Only pairs that really conflict are branched on, so large circuits
///   with few hot spots stay cheap; a leaf budget makes it anytime.
/// * [`XtalkSched::schedule_via_smt`] — the same decision space encoded
///   eagerly into the [`xtalk_smt`] optimizer (one boolean per
///   serialization direction, guarded difference constraints), mirroring
///   the paper's Z3 formulation. Exponential in candidate pairs; used to
///   cross-validate the lazy engine on small instances.
///
/// `ω = 0` considers only decoherence (≈ `ParSched`); `ω = 1` only
/// crosstalk (serializes every interfering pair, ≈ `SerialSched` on
/// crosstalk-dominated circuits).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct XtalkSched {
    omega: f64,
    max_leaves: u64,
    ordering: OrderingPolicy,
    engine: Engine,
}

/// Which decision engine [`Scheduler::schedule_report`] dispatches to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Lazy conflict-driven branch-and-bound (the default).
    #[default]
    Lazy,
    /// Eager SMT-style encoding solved by [`xtalk_smt::Optimizer`] —
    /// exponential in candidate pairs; for small instances and
    /// cross-validation.
    Smt,
}

/// How serialization *order* is decided when a pair must be serialized.
///
/// The paper's Figure 6 shows the order matters: putting SWAP 5,10 after
/// SWAP 11,12 keeps the low-coherence qubit 10's lifetime short.
/// [`OrderingPolicy::Optimal`] searches both orders;
/// [`OrderingPolicy::ProgramOrder`] is the degraded baseline that always
/// keeps the earlier instruction first (used by the ordering ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrderingPolicy {
    /// Branch on both orders and keep the cheaper (the paper's behaviour).
    #[default]
    Optimal,
    /// Always serialize in program order (ablation baseline).
    ProgramOrder,
}

/// Diagnostics from a scheduling run.
#[derive(Clone, PartialEq, Debug)]
pub struct XtalkSchedReport {
    /// Objective value of the chosen schedule.
    pub cost: f64,
    /// Leaves (complete schedules) evaluated.
    pub leaves: u64,
    /// The serialization decisions taken, as instruction-index pairs
    /// `(first, second)`.
    pub serializations: Vec<(usize, usize)>,
    /// Number of candidate high-crosstalk gate pairs considered.
    pub candidate_pairs: usize,
    /// `true` iff the decision space was exhausted. `false` means the
    /// leaf cap or an execution [`Budget`] truncated the search and the
    /// schedule is best-so-far, not proven optimal.
    pub complete: bool,
    /// `true` iff no feasible leaf was reached before truncation and the
    /// schedule fell back to the unserialized (`ParSched`-equivalent)
    /// realization.
    pub fallback: bool,
}

impl XtalkSched {
    /// Creates the scheduler with crosstalk weight `omega ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `[0, 1]`.
    pub fn new(omega: f64) -> Self {
        assert!((0.0..=1.0).contains(&omega), "omega must be in [0, 1], got {omega}");
        XtalkSched {
            omega,
            max_leaves: 100_000,
            ordering: OrderingPolicy::Optimal,
            engine: Engine::Lazy,
        }
    }

    /// Selects the serialization-ordering policy (see [`OrderingPolicy`]).
    pub fn with_ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Selects the decision engine (see [`Engine`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured decision engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Overrides the anytime leaf budget.
    pub fn with_max_leaves(mut self, max_leaves: u64) -> Self {
        assert!(max_leaves > 0, "need at least one leaf");
        self.max_leaves = max_leaves;
        self
    }

    /// The crosstalk weight factor.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Candidate high-crosstalk pairs: unordered pairs of two-qubit
    /// instructions that may overlap (neither depends on the other) and
    /// whose edges interfere above the context threshold — the pruned
    /// `CanOlp` sets of the paper.
    pub fn candidate_pairs(circuit: &Circuit, ctx: &SchedulerContext) -> Vec<(usize, usize)> {
        let dag = circuit.dag();
        let twoq: Vec<usize> = circuit
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.gate().is_two_qubit())
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::new();
        for (a, &i) in twoq.iter().enumerate() {
            let ei = Edge::from(circuit.instructions()[i].edge().expect("edge"));
            for &j in &twoq[a + 1..] {
                let ej = Edge::from(circuit.instructions()[j].edge().expect("edge"));
                if !ei.shares_qubit(ej) && dag.can_overlap(i, j) && ctx.is_high_pair(ei, ej) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Schedules and returns diagnostics alongside the schedule.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule_with_report(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<(ScheduledCircuit, XtalkSchedReport), CoreError> {
        self.schedule_budgeted(circuit, ctx, &Budget::unlimited())
    }

    /// Schedules under a cooperative [`Budget`], polled at every branch
    /// point of the lazy search. On exhaustion the best schedule found so
    /// far is returned with `report.complete == false`; if no feasible
    /// leaf was reached at all, the unserialized (`ParSched`-equivalent)
    /// realization is returned with `report.fallback == true` instead of
    /// failing the request.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule_budgeted(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
        budget: &Budget,
    ) -> Result<(ScheduledCircuit, XtalkSchedReport), CoreError> {
        let _span = xtalk_obs::span("sched.xtalk");
        check_hardware_compliant(circuit, ctx)?;
        let candidates: BTreeSet<(usize, usize)> =
            Self::candidate_pairs(circuit, ctx).into_iter().collect();

        let mut search = Search {
            circuit,
            ctx,
            omega: self.omega,
            candidates: &candidates,
            best: None,
            leaves: 0,
            max_leaves: self.max_leaves,
            ordering: self.ordering,
            budget,
            truncated: false,
        };
        let mut serialized = Vec::new();
        let mut waived = BTreeSet::new();
        search.recurse(&mut serialized, &mut waived);

        xtalk_obs::counter!("sched.xtalk.leaves", search.leaves);
        xtalk_obs::counter!("sched.xtalk.candidate_pairs", candidates.len() as u64);
        if search.truncated {
            xtalk_obs::counter!("sched.xtalk.truncated", 1);
        }
        let leaves = search.leaves;
        let complete = !search.truncated;
        match search.best {
            Some((cost, sched, serializations)) => {
                let report = XtalkSchedReport {
                    cost,
                    leaves,
                    serializations,
                    candidate_pairs: candidates.len(),
                    complete,
                    fallback: false,
                };
                Ok((sched, report))
            }
            // Truncated before any feasible leaf: fall back to the plain
            // ASAP realization (what ParSched would emit) rather than
            // erroring — an honest best-effort answer under the budget.
            None if !complete => {
                xtalk_obs::counter!("sched.xtalk.fallback", 1);
                let sched = realize(circuit, ctx, &[])?;
                let cost = schedule_cost(&sched, ctx, self.omega);
                let report = XtalkSchedReport {
                    cost,
                    leaves,
                    serializations: Vec::new(),
                    candidate_pairs: candidates.len(),
                    complete: false,
                    fallback: true,
                };
                Ok((sched, report))
            }
            None => Err(CoreError::CyclicConstraints),
        }
    }

    /// The eager SMT-style formulation: one boolean per serialization
    /// direction with guarded difference constraints, minimized by
    /// [`xtalk_smt::Optimizer`]. Exponential in the number of candidate
    /// pairs — use for small circuits and cross-validation.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule_via_smt(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<(ScheduledCircuit, XtalkSchedReport), CoreError> {
        self.schedule_via_smt_budgeted(circuit, ctx, &Budget::unlimited())
    }

    /// [`XtalkSched::schedule_via_smt`] under a cooperative [`Budget`]
    /// threaded into the optimizer's anytime search: on exhaustion the
    /// best solution found so far is returned with
    /// `report.complete == false`.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule`].
    pub fn schedule_via_smt_budgeted(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
        budget: &Budget,
    ) -> Result<(ScheduledCircuit, XtalkSchedReport), CoreError> {
        let _span = xtalk_obs::span("sched.xtalk_smt");
        check_hardware_compliant(circuit, ctx)?;
        let candidates = Self::candidate_pairs(circuit, ctx);

        let durations: Vec<i64> = circuit
            .iter()
            .map(|ins| ctx.duration_of(ins.gate(), ins.qubits()) as i64)
            .collect();
        let dag = circuit.dag();

        let mut model = xtalk_smt::Model::new();
        let tau: Vec<xtalk_smt::RealVar> =
            (0..circuit.len()).map(|_| model.real_var()).collect();
        for j in 0..circuit.len() {
            for &i in dag.predecessors(j) {
                model.require(model.ge_diff(tau[j], tau[i], durations[i]));
            }
        }
        let mut pair_bools = Vec::new();
        for &(i, j) in &candidates {
            let bij = model.bool_var();
            let bji = model.bool_var();
            model.guard(bij, model.ge_diff(tau[j], tau[i], durations[i]));
            model.guard(bji, model.ge_diff(tau[i], tau[j], durations[j]));
            model.at_most_one(vec![bij, bji]);
            pair_bools.push(((i, j), bij, bji));
        }

        type PairBool = ((usize, usize), xtalk_smt::BoolVar, xtalk_smt::BoolVar);
        struct CostObj<'a> {
            circuit: &'a Circuit,
            ctx: &'a SchedulerContext,
            omega: f64,
            pair_bools: &'a [PairBool],
        }
        impl CostObj<'_> {
            fn serializations(&self, bools: &[bool]) -> Vec<(usize, usize)> {
                let mut out = Vec::new();
                for &((i, j), bij, bji) in self.pair_bools {
                    if bools[bij.index()] {
                        out.push((i, j));
                    } else if bools[bji.index()] {
                        out.push((j, i));
                    }
                }
                out
            }
        }
        impl xtalk_smt::Objective for CostObj<'_> {
            fn evaluate(&self, bools: &[bool], _times: &[i64]) -> f64 {
                match realize(self.circuit, self.ctx, &self.serializations(bools)) {
                    Ok(sched) => schedule_cost(&sched, self.ctx, self.omega),
                    Err(_) => f64::INFINITY,
                }
            }
        }

        let obj = CostObj { circuit, ctx, omega: self.omega, pair_bools: &pair_bools };
        let (sol, outcome) = xtalk_smt::Optimizer::new(model).minimize_budgeted(&obj, budget);
        let sol = sol.ok_or(CoreError::CyclicConstraints)?;
        let serializations = obj.serializations(&sol.bools);
        let sched = realize(circuit, ctx, &serializations)?;
        let report = XtalkSchedReport {
            cost: sol.cost,
            leaves: sol.leaves,
            serializations,
            candidate_pairs: candidates.len(),
            complete: outcome.complete,
            fallback: false,
        };
        Ok((sched, report))
    }
}

impl Scheduler for XtalkSched {
    fn schedule(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<ScheduledCircuit, CoreError> {
        match self.engine {
            Engine::Lazy => self.schedule_with_report(circuit, ctx).map(|(s, _)| s),
            Engine::Smt => self.schedule_via_smt(circuit, ctx).map(|(s, _)| s),
        }
    }

    fn name(&self) -> &'static str {
        "XtalkSched"
    }

    fn fingerprint(&self, h: &mut xtalk_pass::Fnv1a) {
        h.write_str(self.name());
        h.write_f64(self.omega);
        h.write_u64(self.max_leaves);
        h.write_u8(match self.ordering {
            OrderingPolicy::Optimal => 0,
            OrderingPolicy::ProgramOrder => 1,
        });
        h.write_u8(match self.engine {
            Engine::Lazy => 0,
            Engine::Smt => 1,
        });
    }

    fn schedule_report(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
        budget: &Budget,
    ) -> Result<(ScheduledCircuit, Option<XtalkSchedReport>), CoreError> {
        let (sched, report) = match self.engine {
            Engine::Lazy => self.schedule_budgeted(circuit, ctx, budget)?,
            Engine::Smt => self.schedule_via_smt_budgeted(circuit, ctx, budget)?,
        };
        Ok((sched, Some(report)))
    }
}

/// `(cost, schedule, serializations)` of the incumbent best solution.
type Incumbent = (f64, ScheduledCircuit, Vec<(usize, usize)>);

struct Search<'a> {
    circuit: &'a Circuit,
    ctx: &'a SchedulerContext,
    omega: f64,
    candidates: &'a BTreeSet<(usize, usize)>,
    best: Option<Incumbent>,
    leaves: u64,
    max_leaves: u64,
    ordering: OrderingPolicy,
    budget: &'a Budget,
    truncated: bool,
}

impl Search<'_> {
    /// Severity of a pair: the worst conditional error the scheduler
    /// believes the overlap causes.
    fn severity(&self, i: usize, j: usize) -> f64 {
        let ei = Edge::from(self.circuit.instructions()[i].edge().expect("edge"));
        let ej = Edge::from(self.circuit.instructions()[j].edge().expect("edge"));
        self.ctx
            .conditional_error(ei, ej)
            .max(self.ctx.conditional_error(ej, ei))
    }

    fn recurse(
        &mut self,
        serialized: &mut Vec<(usize, usize)>,
        waived: &mut BTreeSet<(usize, usize)>,
    ) {
        // Entering a branch with the leaf cap spent or the budget gone
        // leaves part of the space unexplored: flag the truncation.
        if self.leaves >= self.max_leaves || self.budget.exhausted().is_some() {
            self.truncated = true;
            return;
        }
        let Ok(sched) = realize(self.circuit, self.ctx, serialized) else {
            return; // cyclic serializations: dead branch
        };

        // The most severe *actual* conflict not yet decided.
        let conflict = sched
            .overlapping_two_qubit_pairs()
            .into_iter()
            .map(|(i, j)| if i < j { (i, j) } else { (j, i) })
            .filter(|p| self.candidates.contains(p) && !waived.contains(p))
            .max_by(|&(a, b), &(c, d)| self.severity(a, b).total_cmp(&self.severity(c, d)));

        match conflict {
            None => {
                self.leaves += 1;
                self.budget.charge(1);
                let cost = schedule_cost(&sched, self.ctx, self.omega);
                if self.best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    self.best = Some((cost, sched, serialized.clone()));
                }
            }
            Some((i, j)) => {
                let orders: &[(usize, usize)] = match self.ordering {
                    OrderingPolicy::Optimal => &[(i, j), (j, i)],
                    // (i, j) is normalized with i < j, i.e. program order.
                    OrderingPolicy::ProgramOrder => &[(i, j)],
                };
                for &order in orders {
                    serialized.push(order);
                    self.recurse(serialized, waived);
                    serialized.pop();
                }
                waived.insert((i, j));
                self.recurse(serialized, waived);
                waived.remove(&(i, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParSched, SerialSched};
    use xtalk_device::Device;

    /// Two interleaved CNOT chains crossing the Poughkeepsie 11x hot
    /// spot: gates on (10,15) and (11,12) can run in parallel.
    fn hot_circuit() -> Circuit {
        let mut c = Circuit::new(20, 4);
        for _ in 0..3 {
            c.cx(10, 15).cx(11, 12);
        }
        c.measure(10, 0).measure(15, 1).measure(11, 2).measure(12, 3);
        c
    }

    fn pough_ctx() -> SchedulerContext {
        SchedulerContext::from_ground_truth(&Device::poughkeepsie(1))
    }

    #[test]
    fn candidates_found_on_hot_pairs_only() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let cands = XtalkSched::candidate_pairs(&c, &ctx);
        // 3 gates on each edge → 9 cross pairs.
        assert_eq!(cands.len(), 9);

        let mut cold = Circuit::new(20, 0);
        cold.cx(0, 1).cx(2, 3);
        assert!(XtalkSched::candidate_pairs(&cold, &ctx).is_empty());
    }

    #[test]
    fn beats_both_baselines_on_objective() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let omega = 0.5;
        let (sched, report) = XtalkSched::new(omega).schedule_with_report(&c, &ctx).unwrap();
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        let ser = SerialSched::new().schedule(&c, &ctx).unwrap();
        assert!(report.cost <= schedule_cost(&par, &ctx, omega) + 1e-9);
        assert!(report.cost <= schedule_cost(&ser, &ctx, omega) + 1e-9);
        // It actually serialized something.
        assert!(!report.serializations.is_empty());
        sched.validate().unwrap();
    }

    #[test]
    fn omega_one_eliminates_hot_overlaps() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let (sched, _) = XtalkSched::new(1.0).schedule_with_report(&c, &ctx).unwrap();
        for (i, j) in sched.overlapping_two_qubit_pairs() {
            let p = if i < j { (i, j) } else { (j, i) };
            assert!(
                !XtalkSched::candidate_pairs(&c, &ctx).contains(&p),
                "high pair {p:?} still overlaps at ω=1"
            );
        }
    }

    #[test]
    fn omega_zero_costs_no_more_than_parsched() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let (_, report) = XtalkSched::new(0.0).schedule_with_report(&c, &ctx).unwrap();
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        assert!(report.cost <= schedule_cost(&par, &ctx, 0.0) + 1e-9);
    }

    #[test]
    fn lazy_and_smt_engines_agree() {
        let ctx = pough_ctx();
        // Small instance: one gate on each hot edge.
        let mut c = Circuit::new(20, 0);
        c.cx(10, 15).cx(11, 12).cx(13, 14).cx(18, 19);
        for omega in [0.2, 0.5, 0.8] {
            let s = XtalkSched::new(omega);
            let (_, lazy) = s.schedule_with_report(&c, &ctx).unwrap();
            let (_, smt) = s.schedule_via_smt(&c, &ctx).unwrap();
            assert!(
                (lazy.cost - smt.cost).abs() < 1e-9,
                "ω={omega}: lazy {} vs smt {}",
                lazy.cost,
                smt.cost
            );
        }
    }

    #[test]
    fn no_candidates_means_parsched_equivalent() {
        let dev = Device::line(6, 2);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(6, 0);
        c.cx(0, 1).cx(2, 3).cx(4, 5);
        let (sched, report) = XtalkSched::new(0.5).schedule_with_report(&c, &ctx).unwrap();
        assert_eq!(report.candidate_pairs, 0);
        assert_eq!(report.leaves, 1);
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        assert_eq!(sched, par);
    }

    #[test]
    #[should_panic(expected = "omega must be in")]
    fn omega_range_checked() {
        XtalkSched::new(1.5);
    }

    #[test]
    fn optimal_ordering_beats_program_order_on_fig6_case() {
        // The Figure 6 insight: serializing SWAP 5,10 *after* SWAP 11,12
        // spares low-coherence qubit 10. Program-order serialization
        // cannot express that and must cost at least as much.
        let ctx = pough_ctx();
        let bench =
            crate::routing::swap_benchmark(&xtalk_device::Topology::poughkeepsie(), 0, 13)
                .unwrap();
        let omega = 0.5;
        let (_, optimal) =
            XtalkSched::new(omega).schedule_with_report(&bench.circuit, &ctx).unwrap();
        let (_, fixed) = XtalkSched::new(omega)
            .with_ordering(OrderingPolicy::ProgramOrder)
            .schedule_with_report(&bench.circuit, &ctx)
            .unwrap();
        assert!(
            optimal.cost <= fixed.cost + 1e-9,
            "optimal {} vs program-order {}",
            optimal.cost,
            fixed.cost
        );
        // On this specific path the ordering genuinely matters.
        assert!(
            optimal.cost < fixed.cost - 1e-6,
            "ordering should strictly help here: {} vs {}",
            optimal.cost,
            fixed.cost
        );
        // And it explores no more than twice the leaves.
        assert!(fixed.leaves <= optimal.leaves);
    }

    #[test]
    fn anytime_budget_respected() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let (_, report) =
            XtalkSched::new(0.5).with_max_leaves(3).schedule_with_report(&c, &ctx).unwrap();
        assert!(report.leaves <= 3);
        assert!(!report.complete, "leaf-capped search must be flagged incomplete");
        assert!(!report.fallback, "a feasible leaf was reached");
    }

    #[test]
    fn full_search_is_flagged_complete() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let (_, report) = XtalkSched::new(0.5).schedule_with_report(&c, &ctx).unwrap();
        assert!(report.complete);
        assert!(!report.fallback);
        let (_, smt) = XtalkSched::new(0.5).schedule_via_smt(
            &{
                let mut small = Circuit::new(20, 0);
                small.cx(10, 15).cx(11, 12);
                small
            },
            &ctx,
        )
        .unwrap();
        assert!(smt.complete);
    }

    #[test]
    fn cancelled_budget_falls_back_to_parsched_equivalent() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let (sched, report) =
            XtalkSched::new(0.5).schedule_budgeted(&c, &ctx, &budget).unwrap();
        assert!(!report.complete);
        assert!(report.fallback, "no leaf reached: must fall back");
        assert_eq!(report.leaves, 0);
        assert!(report.serializations.is_empty());
        // The fallback is exactly the unserialized ASAP schedule.
        let par = ParSched::new().schedule(&c, &ctx).unwrap();
        assert_eq!(sched, par);
        sched.validate().unwrap();
    }

    #[test]
    fn quota_budget_truncates_lazy_search() {
        let ctx = pough_ctx();
        let c = hot_circuit();
        let budget = Budget::unlimited().with_quota(2);
        let (sched, report) =
            XtalkSched::new(0.5).schedule_budgeted(&c, &ctx, &budget).unwrap();
        assert!(!report.complete);
        assert!(!report.fallback);
        assert!(report.leaves <= 2);
        sched.validate().unwrap();
    }
}
