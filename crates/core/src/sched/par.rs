//! `ParSched`: maximum parallelism, right-aligned — the IBM Qiskit
//! default scheduler of the paper's era (Table 1).

use crate::sched::{check_hardware_compliant, Scheduler};
use crate::{realize, CoreError, SchedulerContext};
use xtalk_ir::{Circuit, ScheduledCircuit};

/// Schedules every instruction as early as dependencies allow, then
/// right-aligns (gates execute as late as possible, readouts
/// simultaneously at the end) — maximizing parallelism to minimize
/// decoherence, with no crosstalk awareness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ParSched;

impl ParSched {
    /// Creates the scheduler.
    pub fn new() -> Self {
        ParSched
    }
}

impl Scheduler for ParSched {
    fn schedule(
        &self,
        circuit: &Circuit,
        ctx: &SchedulerContext,
    ) -> Result<ScheduledCircuit, CoreError> {
        let _span = xtalk_obs::span("sched.par");
        check_hardware_compliant(circuit, ctx)?;
        realize(circuit, ctx, &[])
    }

    fn name(&self) -> &'static str {
        "ParSched"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;

    #[test]
    fn maximally_parallel() {
        let dev = Device::line(6, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(6, 0);
        c.cx(0, 1).cx(2, 3).cx(4, 5);
        let sched = ParSched::new().schedule(&c, &ctx).unwrap();
        // All three CNOTs overlap pairwise (they all end at the makespan).
        assert_eq!(sched.overlapping_two_qubit_pairs().len(), 3);
    }

    #[test]
    fn rejects_unrouted_circuits() {
        let dev = Device::line(4, 0);
        let ctx = SchedulerContext::from_ground_truth(&dev);
        let mut c = Circuit::new(4, 0);
        c.cx(0, 3);
        assert!(matches!(
            ParSched::new().schedule(&c, &ctx),
            Err(CoreError::NotHardwareCompliant { .. })
        ));
    }

    #[test]
    fn name() {
        assert_eq!(ParSched::new().name(), "ParSched");
    }
}
