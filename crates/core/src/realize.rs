//! Schedule realization: ASAP solve + IBM right-alignment.

use crate::{CoreError, SchedulerContext};
use xtalk_ir::{Circuit, Instruction, Qubit, ScheduleSlot, ScheduledCircuit};

/// Realizes a concrete timed schedule for `circuit` under the hardware
/// timing model:
///
/// 1. compute the earliest (ASAP) start times subject to the data
///    dependencies *plus* the given `serializations` (pairs `(i, j)`
///    forcing instruction `j` to start after `i` finishes), then
/// 2. right-align everything as late as possible within the resulting
///    makespan — IBMQ control executes gates late and fires all readouts
///    simultaneously at the end (paper Figure 1c), and the paper's
///    lifetime model (Eq. 9) assumes exactly this alignment.
///
/// # Errors
///
/// [`CoreError::CyclicConstraints`] if the serialization pairs contradict
/// the dependency order.
pub fn realize(
    circuit: &Circuit,
    ctx: &SchedulerContext,
    serializations: &[(usize, usize)],
) -> Result<ScheduledCircuit, CoreError> {
    let _span = xtalk_obs::span("realize");
    let n = circuit.len();
    let durations: Vec<u64> = circuit
        .iter()
        .map(|ins| ctx.duration_of(ins.gate(), ins.qubits()))
        .collect();

    // Dependency edges + serialization edges.
    let dag = circuit.dag();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        succs[a].push(b);
        indeg[b] += 1;
    };
    for j in 0..n {
        for &i in dag.predecessors(j) {
            add_edge(&mut succs, &mut indeg, i, j);
        }
    }
    for &(i, j) in serializations {
        assert!(i < n && j < n, "serialization references instruction out of range");
        add_edge(&mut succs, &mut indeg, i, j);
    }

    // Kahn topological order (detects cycles introduced by serialization).
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = queue.pop() {
        order.push(i);
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() != n {
        return Err(CoreError::CyclicConstraints);
    }

    // ASAP forward pass.
    let mut asap = vec![0u64; n];
    for &i in &order {
        for &j in &succs[i] {
            asap[j] = asap[j].max(asap[i] + durations[i]);
        }
    }
    let makespan = (0..n).map(|i| asap[i] + durations[i]).max().unwrap_or(0);

    // ALAP backward pass anchored at the makespan (right alignment).
    let mut latest_finish = vec![makespan; n];
    for &i in order.iter().rev() {
        for &j in &succs[i] {
            latest_finish[i] = latest_finish[i].min(latest_finish[j] - durations[j]);
        }
    }

    let slots: Vec<ScheduleSlot> = (0..n)
        .map(|i| ScheduleSlot::new(latest_finish[i] - durations[i], durations[i]))
        .collect();
    let sched = ScheduledCircuit::new(circuit.clone(), slots)
        .expect("slot count matches instruction count");
    debug_assert!(sched.validate().is_ok(), "realized schedule must be valid");
    Ok(sched)
}

/// Rewrites a realized schedule as an *executable circuit with barriers*:
/// instructions in start-time order, with a barrier spanning the union of
/// each serialized pair's qubits inserted between them — the
/// post-processing step the paper uses to enforce orderings through
/// Qiskit's circuit-level ISA (Section 6).
pub fn to_barriered_circuit(
    sched: &ScheduledCircuit,
    serializations: &[(usize, usize)],
) -> Circuit {
    let circuit = sched.circuit();
    let mut order: Vec<usize> = (0..circuit.len()).collect();
    order.sort_by_key(|&i| (sched.slot(i).start, i));
    let position: Vec<usize> = {
        let mut pos = vec![0; circuit.len()];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        pos
    };

    // barrier_before[p] = set of qubits a barrier must span just before
    // output position p.
    let mut barrier_before: Vec<Vec<Qubit>> = vec![Vec::new(); circuit.len() + 1];
    for &(i, j) in serializations {
        let p = position[j];
        let spot = &mut barrier_before[p];
        for q in circuit.instructions()[i].qubits().iter().chain(circuit.instructions()[j].qubits()) {
            if !spot.contains(q) {
                spot.push(*q);
            }
        }
    }

    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for (p, &i) in order.iter().enumerate() {
        if !barrier_before[p].is_empty() {
            let mut qs = barrier_before[p].clone();
            qs.sort_unstable();
            out.push(Instruction::barrier(qs));
        }
        out.push(circuit.instructions()[i].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_device::Device;
    use xtalk_ir::Qubit;

    fn ctx() -> SchedulerContext {
        SchedulerContext::from_ground_truth(&Device::line(6, 3))
    }

    #[test]
    fn parallel_gates_align_right() {
        let ctx = ctx();
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3).cx(0, 1);
        let sched = realize(&c, &ctx, &[]).unwrap();
        // The lone cx(2,3) is right-aligned to finish at the makespan.
        assert_eq!(sched.slot(1).finish(), sched.makespan());
        // The dependent chain is tight.
        assert_eq!(sched.slot(2).start, sched.slot(0).finish());
    }

    #[test]
    fn serialization_orders_independent_gates() {
        let ctx = ctx();
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3);
        let sched = realize(&c, &ctx, &[(0, 1)]).unwrap();
        assert!(sched.slot(1).start >= sched.slot(0).finish());
        assert!(sched.overlapping_two_qubit_pairs().is_empty());
    }

    #[test]
    fn conflicting_serializations_detected() {
        let ctx = ctx();
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3);
        assert_eq!(
            realize(&c, &ctx, &[(0, 1), (1, 0)]),
            Err(CoreError::CyclicConstraints)
        );
    }

    #[test]
    fn serialization_against_program_order_is_fine() {
        // Serialize instruction 1 *before* instruction 0 (they are
        // independent), which reverses program order.
        let ctx = ctx();
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3);
        let sched = realize(&c, &ctx, &[(1, 0)]).unwrap();
        assert!(sched.slot(0).start >= sched.slot(1).finish());
    }

    #[test]
    fn readouts_simultaneous_at_end() {
        let ctx = ctx();
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = realize(&c, &ctx, &[]).unwrap();
        let m = sched.makespan();
        for (i, ins) in c.iter().enumerate() {
            if ins.gate().is_measurement() {
                assert_eq!(sched.slot(i).finish(), m, "measure {i} not right-aligned");
            }
        }
        // All readouts start together (equal durations).
        let starts: Vec<u64> = c
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.gate().is_measurement())
            .map(|(i, _)| sched.slot(i).start)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn barriered_circuit_reproduces_order() {
        let ctx = ctx();
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3);
        let sched = realize(&c, &ctx, &[(0, 1)]).unwrap();
        let barriered = to_barriered_circuit(&sched, &[(0, 1)]);
        assert_eq!(barriered.count_gate("barrier"), 1);
        // Barrier spans all four qubits of the pair.
        let b = barriered
            .iter()
            .find(|i| i.gate().is_barrier())
            .expect("barrier present");
        assert_eq!(b.qubits().len(), 4);
        // In the barriered circuit, the serialized gates cannot overlap:
        // its own DAG orders them.
        let dag = barriered.dag();
        let cx_positions: Vec<usize> = barriered
            .iter()
            .enumerate()
            .filter(|(_, i)| i.gate().is_two_qubit())
            .map(|(i, _)| i)
            .collect();
        assert!(!dag.can_overlap(cx_positions[0], cx_positions[1]));
    }

    #[test]
    fn zero_duration_gates_fit_anywhere() {
        let ctx = ctx();
        let mut c = Circuit::new(2, 0);
        c.rz(0.3, 0).cx(0, 1).rz(0.4, 1);
        let sched = realize(&c, &ctx, &[]).unwrap();
        assert_eq!(sched.slot(0).duration, 0);
        sched.validate().unwrap();
    }

    #[test]
    fn makespan_matches_critical_path() {
        let ctx = ctx();
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).cx(1, 2);
        let sched = realize(&c, &ctx, &[]).unwrap();
        let d0 = ctx.duration_of(&xtalk_ir::Gate::Cx, &[Qubit::new(0), Qubit::new(1)]);
        let d1 = ctx.duration_of(&xtalk_ir::Gate::Cx, &[Qubit::new(1), Qubit::new(2)]);
        assert_eq!(sched.makespan(), d0 + d1);
    }
}
