//! Crosstalk-adaptive instruction scheduling (the paper's Sections 6–7).
//!
//! Given a hardware-compliant circuit (already mapped and routed), a
//! scheduler assigns a start time to every instruction. Three schedulers
//! are provided, matching the paper's Table 1:
//!
//! | Scheduler | Objective |
//! |---|---|
//! | [`SerialSched`] | Mitigate crosstalk: run everything serially |
//! | [`ParSched`] | Mitigate decoherence: maximum parallelism, right-aligned (the IBM/Qiskit default) |
//! | [`XtalkSched`] | Both: constrained optimization over serialization decisions with the ω-weighted objective of Eq. 17 |
//!
//! [`XtalkSched`] consumes a [`SchedulerContext`] holding the calibration
//! (durations, coherence) and the crosstalk [`xtalk_charac::Characterization`]
//! — *estimates*, never the device ground truth — and minimizes
//!
//! ```text
//! ω · Σ_gates log ε(g)  +  (1 − ω) · Σ_qubits  t(q) / T(q)
//! ```
//!
//! where `ε(g)` is the conditional error implied by the schedule's
//! overlaps (max over overlapping high-crosstalk partners, Eq. 6/7) and
//! `t(q)` the qubit lifetime under IBM right-alignment. `ω = 0`
//! reproduces maximal parallelism, `ω = 1` ignores decoherence, exactly
//! as in the paper's Figure 8/9 sweeps.
//!
//! Also here: SWAP-path routing ([`routing`]), the paper's application
//! benchmarks ([`bench_circuits`]), and end-to-end helpers ([`pipeline`])
//! that schedule, execute (via `xtalk-sim`) and score circuits.

pub mod bench_circuits;
mod context;
mod error;
pub mod layout;
pub mod optimize;
pub mod pipeline;
mod realize;
pub mod routing;
pub mod sched;
pub mod transpile;

pub use context::SchedulerContext;
pub use error::CoreError;
pub use realize::{realize, to_barriered_circuit};
pub use sched::par::ParSched;
pub use sched::serial::SerialSched;
pub use sched::xtalk::{OrderingPolicy, XtalkSched, XtalkSchedReport};
pub use sched::Scheduler;
