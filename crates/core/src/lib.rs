//! Crosstalk-adaptive instruction scheduling (the paper's Sections 6–7).
//!
//! Given a hardware-compliant circuit (already mapped and routed), a
//! scheduler assigns a start time to every instruction. Three schedulers
//! are provided, matching the paper's Table 1:
//!
//! | Scheduler | Objective |
//! |---|---|
//! | [`SerialSched`] | Mitigate crosstalk: run everything serially |
//! | [`ParSched`] | Mitigate decoherence: maximum parallelism, right-aligned (the IBM/Qiskit default) |
//! | [`XtalkSched`] | Both: constrained optimization over serialization decisions with the ω-weighted objective of Eq. 17 |
//!
//! [`XtalkSched`] consumes a [`SchedulerContext`] holding the calibration
//! (durations, coherence) and the crosstalk [`xtalk_charac::Characterization`]
//! — *estimates*, never the device ground truth — and minimizes
//!
//! ```text
//! ω · Σ_gates log ε(g)  +  (1 − ω) · Σ_qubits  t(q) / T(q)
//! ```
//!
//! where `ε(g)` is the conditional error implied by the schedule's
//! overlaps (max over overlapping high-crosstalk partners, Eq. 6/7) and
//! `t(q)` the qubit lifetime under IBM right-alignment. `ω = 0`
//! reproduces maximal parallelism, `ω = 1` ignores decoherence, exactly
//! as in the paper's Figure 8/9 sweeps.
//!
//! Also here: SWAP-path routing ([`routing`]), the paper's application
//! benchmarks ([`bench_circuits`]), and end-to-end helpers ([`pipeline`])
//! that schedule, execute (via `xtalk-sim`) and score circuits.
//!
//! The compile flow itself is expressed as typed passes ([`passes`])
//! over hashable artifacts, driven by a [`Compiler`] that applies
//! spans, fault points, budget polls and a content-addressed artifact
//! cache uniformly (see `xtalk-pass`).

pub mod bench_circuits;
mod compile;
mod context;
mod error;
pub mod layout;
pub mod optimize;
pub mod passes;
pub mod pipeline;
mod realize;
pub mod routing;
pub mod sched;
pub mod transpile;

pub use compile::Compiler;
pub use context::SchedulerContext;
pub use error::CoreError;
pub use passes::{NativeCircuit, PlacedCircuit, RealizedSchedule, ScheduledArtifact};
pub use pipeline::{run_scheduled_opts, RunOpts};
pub use realize::{realize, to_barriered_circuit};
pub use sched::par::ParSched;
pub use sched::serial::SerialSched;
pub use sched::xtalk::{Engine, OrderingPolicy, XtalkSched, XtalkSchedReport};
pub use sched::Scheduler;
