//! [`Compiler`]: the unified compile/execute entry point.
//!
//! One `Compiler` binds a device, a [`SchedulerContext`] and a
//! [`xtalk_pass::PassManager`]; every stage — lowering, placement,
//! routing, scheduling, realization, execution — runs through the
//! manager, so spans, fault points, budget polls and the artifact cache
//! apply uniformly. Sharing one compiler (or one cache via
//! [`Compiler::with_cache`]) across several schedulers reuses the
//! lower/place/route prefix: only the schedule stage is keyed by the
//! scheduler's fingerprint.

use std::sync::Arc;

use crate::layout::RoutedCircuit;
use crate::passes::{
    ExecutePass, LowerPass, NativeCircuit, PlacePass, PlacedCircuit, RealizePass,
    RealizedSchedule, RoutePass, SchedulePass, ScheduledArtifact,
};
use crate::pipeline::SwapRunOutcome;
use crate::{CoreError, Scheduler, SchedulerContext};
use xtalk_budget::Budget;
use xtalk_device::Device;
use xtalk_ir::{Circuit, Qubit, ScheduledCircuit};
use xtalk_pass::{ArtifactCache, EpochToken, PassManager};
use xtalk_sim::mitigation::CalibrationMatrix;
use xtalk_sim::tomography::{
    bell_phi_plus, expectations_from_distributions, tomography_circuits, DensityMatrix2,
};
use xtalk_sim::{ideal, metrics, RunOutcome};

/// The unified compile/execute flow over a device.
///
/// ```
/// use xtalk_core::{Compiler, SchedulerContext, XtalkSched};
/// use xtalk_device::Device;
/// use xtalk_ir::Circuit;
///
/// let device = Device::line(5, 3);
/// let ctx = SchedulerContext::from_ground_truth(&device);
/// let compiler = Compiler::new(&device, ctx);
/// let mut c = Circuit::new(2, 2);
/// c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
/// let artifact = compiler.compile(&c, &XtalkSched::new(0.5)).unwrap();
/// assert!(artifact.sched.makespan() > 0);
/// // A second compile of the same circuit is served from the cache.
/// let again = compiler.compile(&c, &XtalkSched::new(0.5)).unwrap();
/// assert_eq!(again.sched, artifact.sched);
/// assert!(compiler.cache().hits() > 0);
/// ```
pub struct Compiler<'d> {
    device: &'d Device,
    ctx: SchedulerContext,
    pm: PassManager,
}

impl<'d> Compiler<'d> {
    /// A compiler with a private cache keyed to epoch 0 of `device`.
    pub fn new(device: &'d Device, ctx: SchedulerContext) -> Self {
        let epoch = EpochToken::new(device.name(), 0);
        Compiler { device, ctx, pm: PassManager::new(epoch) }
    }

    /// A compiler over a shared artifact cache at a given device epoch —
    /// the serving configuration, where one cache outlives many jobs and
    /// calibration epochs.
    pub fn with_cache(
        device: &'d Device,
        ctx: SchedulerContext,
        cache: Arc<ArtifactCache>,
        epoch: EpochToken,
    ) -> Self {
        Compiler { device, ctx, pm: PassManager::with_cache(cache, epoch) }
    }

    /// Attaches an execution [`Budget`] polled before every pass and
    /// threaded into budget-aware stages (search, execution).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.pm = self.pm.with_budget(budget);
        self
    }

    /// The device this compiler targets.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The scheduler context (calibration + characterization).
    pub fn ctx(&self) -> &SchedulerContext {
        &self.ctx
    }

    /// The artifact cache backing this compiler.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        self.pm.cache()
    }

    /// The underlying pass manager, for running custom passes in the
    /// same cache/budget/epoch regime.
    pub fn pass_manager(&self) -> &PassManager {
        &self.pm
    }

    /// Lowers a circuit to the native basis and fuses single-qubit runs.
    ///
    /// # Errors
    ///
    /// Budget exhaustion or an injected fault at `pass.lower`.
    pub fn lower(&self, circuit: &Circuit) -> Result<Arc<NativeCircuit>, CoreError> {
        self.pm.run(&LowerPass::default(), circuit).map_err(CoreError::from)
    }

    /// Pads a native circuit to device width and picks an initial layout.
    ///
    /// # Errors
    ///
    /// [`CoreError::WidthExceeded`] if the circuit is wider than the
    /// device; budget/fault as for every managed pass.
    pub fn place(&self, native: &NativeCircuit) -> Result<Arc<PlacedCircuit>, CoreError> {
        self.pm.run(&PlacePass::new(self.device.topology()), native).map_err(CoreError::from)
    }

    /// Routes a placed circuit onto the coupling graph.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoPath`] on disconnected topologies; budget/fault as
    /// for every managed pass.
    pub fn route(&self, placed: &PlacedCircuit) -> Result<Arc<RoutedCircuit>, CoreError> {
        self.pm.run(&RoutePass::new(self.device.topology()), placed).map_err(CoreError::from)
    }

    /// Lower → place → route: the scheduler-independent prefix. Its
    /// artifacts are cached once and shared by every scheduler compiled
    /// through the same cache.
    ///
    /// # Errors
    ///
    /// Any stage failure (see [`Compiler::lower`], [`Compiler::place`],
    /// [`Compiler::route`]).
    pub fn prepare(&self, circuit: &Circuit) -> Result<Arc<RoutedCircuit>, CoreError> {
        let native = self.lower(circuit)?;
        let placed = self.place(&native)?;
        self.route(&placed)
    }

    /// Schedules a hardware-compliant circuit with `scheduler`. The
    /// cache row is keyed by the scheduler's fingerprint and the full
    /// context, so differently-configured schedulers never collide.
    ///
    /// # Errors
    ///
    /// Scheduling failures ([`CoreError::NotHardwareCompliant`], …) plus
    /// budget/fault as for every managed pass.
    pub fn schedule(
        &self,
        circuit: &Circuit,
        scheduler: &dyn Scheduler,
    ) -> Result<Arc<ScheduledArtifact>, CoreError> {
        self.pm.run(&SchedulePass::new(scheduler, &self.ctx), circuit).map_err(CoreError::from)
    }

    /// Converts a scheduled artifact to its exportable barriered form.
    ///
    /// # Errors
    ///
    /// Budget/fault as for every managed pass.
    pub fn realize_export(
        &self,
        artifact: &ScheduledArtifact,
    ) -> Result<Arc<RealizedSchedule>, CoreError> {
        self.pm.run(&RealizePass, artifact).map_err(CoreError::from)
    }

    /// The full compile flow: prepare (lower/place/route) then schedule.
    ///
    /// # Errors
    ///
    /// Any stage failure.
    pub fn compile(
        &self,
        circuit: &Circuit,
        scheduler: &dyn Scheduler,
    ) -> Result<Arc<ScheduledArtifact>, CoreError> {
        let routed = self.prepare(circuit)?;
        self.schedule(&routed.circuit, scheduler)
    }

    /// Executes a schedule on the simulator (`threads = 0` uses all
    /// available parallelism). Never cached; the compiler's budget
    /// bounds the run and the outcome reports the honest shot prefix.
    ///
    /// # Errors
    ///
    /// Budget exhaustion *before* the run starts, or an injected fault
    /// at `pass.execute`. Mid-run exhaustion is not an error — it yields
    /// a truncated [`RunOutcome`].
    pub fn run(
        &self,
        sched: &ScheduledCircuit,
        shots: u64,
        seed: u64,
        threads: usize,
    ) -> Result<Arc<RunOutcome>, CoreError> {
        self.pm
            .run(&ExecutePass::new(self.device, shots, seed, threads), sched)
            .map_err(CoreError::from)
    }

    /// The SWAP-circuit metric (Figures 5–7) through the pass pipeline:
    /// schedules the meet-in-the-middle benchmark, runs mitigated
    /// two-qubit tomography, returns `1 − fidelity` with `|Φ+⟩`.
    ///
    /// # Errors
    ///
    /// Propagates routing/scheduling failures.
    pub fn swap_bell_error(
        &self,
        scheduler: &dyn Scheduler,
        a: u32,
        b: u32,
        shots_per_basis: u64,
        seed: u64,
        threads: usize,
    ) -> Result<SwapRunOutcome, CoreError> {
        let _span = xtalk_obs::span("pipeline.swap_bell");
        let bench = crate::routing::swap_benchmark(self.device.topology(), a, b)?;
        let (qa, qb) = bench.bell_pair;

        let cal_matrix = {
            let _cal = xtalk_obs::span("readout_cal");
            CalibrationMatrix::measure(
                self.device,
                &[qa.raw(), qb.raw()],
                shots_per_basis.max(512),
                seed,
            )
        };

        let mut duration = 0;
        let mut data = Vec::new();
        for (idx, (setting, circuit)) in
            tomography_circuits(&bench.circuit, qa, qb).into_iter().enumerate()
        {
            let artifact = self.schedule(&circuit, scheduler)?;
            duration = duration.max(artifact.sched.makespan());
            let outcome = {
                let _exec = xtalk_obs::span("execute");
                self.run(
                    &artifact.sched,
                    shots_per_basis,
                    seed ^ ((idx as u64 + 1) << 32),
                    threads,
                )?
            };
            data.push((setting, cal_matrix.mitigate(&outcome.counts)));
        }
        let rho = DensityMatrix2::from_expectations(&expectations_from_distributions(&data));
        Ok(SwapRunOutcome {
            error_rate: (1.0 - rho.fidelity_with(&bell_phi_plus())).clamp(0.0, 1.0),
            duration_ns: duration,
        })
    }

    /// The QAOA metric (Figure 8) through the pass pipeline: mitigated
    /// cross entropy against the noise-free ideal (lower is better).
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn qaoa_cross_entropy(
        &self,
        scheduler: &dyn Scheduler,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<f64, CoreError> {
        let artifact = self.schedule(circuit, scheduler)?;
        let outcome = self.run(&artifact.sched, shots, seed, 1)?;
        let measured = measured_qubits(circuit);
        let cal =
            CalibrationMatrix::measure(self.device, &measured, shots.max(1024), seed ^ 0xfe);
        let mitigated = cal.mitigate(&outcome.counts);
        let ideal = ideal::distribution(circuit);
        Ok(metrics::cross_entropy(&ideal, &mitigated, 0.5 / shots as f64))
    }

    /// The Hidden Shift metric (Figure 9) through the pass pipeline:
    /// fraction of mitigated trials that missed the planted bitstring.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn hidden_shift_error(
        &self,
        scheduler: &dyn Scheduler,
        circuit: &Circuit,
        target: u64,
        shots: u64,
        seed: u64,
    ) -> Result<f64, CoreError> {
        let artifact = self.schedule(circuit, scheduler)?;
        let outcome = self.run(&artifact.sched, shots, seed, 1)?;
        let measured = measured_qubits(circuit);
        let cal =
            CalibrationMatrix::measure(self.device, &measured, shots.max(1024), seed ^ 0xfd);
        let mitigated = cal.mitigate(&outcome.counts);
        Ok((1.0 - mitigated[target as usize]).clamp(0.0, 1.0))
    }
}

/// The physical qubits measured by a circuit, ordered by classical bit.
///
/// # Panics
///
/// Panics if two measurements target the same classical bit.
pub(crate) fn measured_qubits(circuit: &Circuit) -> Vec<u32> {
    let mut by_clbit: Vec<Option<Qubit>> = vec![None; circuit.num_clbits()];
    for ins in circuit.iter().filter(|i| i.gate().is_measurement()) {
        let c = ins.clbit().expect("measure carries clbit").index();
        assert!(by_clbit[c].is_none(), "clbit {c} written twice");
        by_clbit[c] = Some(ins.qubits()[0]);
    }
    by_clbit
        .into_iter()
        .map(|q| q.expect("every clbit is written").raw())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParSched, SerialSched, XtalkSched};

    #[test]
    fn shared_cache_reuses_prefix_across_schedulers() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let compiler = Compiler::new(&device, ctx);
        let mut c = Circuit::new(4, 4);
        c.h(0).cx(0, 1).cx(2, 3).measure_all();

        let schedulers: [&dyn Scheduler; 3] =
            [&ParSched::new(), &SerialSched::new(), &XtalkSched::new(0.5)];
        let mut artifacts = Vec::new();
        for s in schedulers {
            artifacts.push(compiler.compile(&c, s).unwrap());
        }
        // One lower, one place, one route — the prefix is shared; three
        // schedule rows, one per fingerprint.
        assert_eq!(compiler.cache().len_of("lower"), 1);
        assert_eq!(compiler.cache().len_of("place"), 1);
        assert_eq!(compiler.cache().len_of("route"), 1);
        assert_eq!(compiler.cache().len_of("schedule"), 3);
        // Second and third compiles hit the prefix: 2 × (lower+place+route).
        assert_eq!(compiler.cache().hits(), 6);
        // Schedules genuinely differ between serial and parallel.
        assert_ne!(artifacts[0].sched, artifacts[1].sched);
    }

    #[test]
    fn compile_matches_direct_scheduler_calls() {
        // The refactor's behavioral anchor: the managed path must produce
        // bit-identical schedules to the pre-pass-manager flow.
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let compiler = Compiler::new(&device, ctx.clone());
        let mut c = Circuit::new(20, 2);
        c.h(10).cx(10, 15).cx(11, 12).measure(10, 0).measure(11, 1);

        for s in
            [&ParSched::new() as &dyn Scheduler, &SerialSched::new(), &XtalkSched::new(0.5)]
        {
            let artifact = compiler.compile(&c, s).unwrap();
            let direct = {
                let lowered = crate::optimize::fuse_single_qubit_gates(
                    &xtalk_pass::lower_to_native(&c),
                );
                s.schedule(&lowered, &ctx).unwrap()
            };
            assert_eq!(artifact.sched, direct, "scheduler {}", s.name());
        }
    }

    #[test]
    fn budget_exhaustion_surfaces_as_core_error() {
        let device = Device::line(3, 1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let compiler = Compiler::new(&device, ctx).with_budget(budget);
        let c = Circuit::new(2, 0);
        match compiler.lower(&c) {
            Err(CoreError::Budget(_)) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn realize_export_matches_to_barriered_circuit() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let compiler = Compiler::new(&device, ctx);
        let mut c = Circuit::new(20, 0);
        c.cx(10, 15).cx(11, 12);
        let artifact = compiler.compile(&c, &XtalkSched::new(0.9)).unwrap();
        let realized = compiler.realize_export(&artifact).unwrap();
        assert_eq!(
            realized.circuit,
            crate::to_barriered_circuit(&artifact.sched, &artifact.serializations)
        );
    }

    #[test]
    fn managed_run_matches_plain_executor() {
        let device = Device::line(3, 2);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let compiler = Compiler::new(&device, ctx);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let artifact = compiler.compile(&c, &ParSched::new()).unwrap();
        let outcome = compiler.run(&artifact.sched, 256, 7, 2).unwrap();
        assert!(outcome.complete);
        #[allow(deprecated)]
        let plain = crate::pipeline::run_scheduled(&device, &artifact.sched, 256, 7);
        assert_eq!(outcome.counts, plain);
    }
}
