//! Basis translation: lowering circuits to the IBMQ native gate set
//! (`u1`/`u2`/`u3` + `cx`), the form the paper's hardware executes.
//!
//! The implementation lives in [`xtalk_pass::lower`] (the bottom of the
//! compile spine) so the core pipeline, the characterization circuit
//! builders and the CLI all lower through one code path; this module
//! re-exports it for compatibility and keeps the statevector-equivalence
//! tests, which need the sim crate.

pub use xtalk_pass::lower::{is_native, lower_instruction, lower_to_native};

#[cfg(test)]
use xtalk_ir::Circuit;

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_sim::{ideal, StateVector};

    /// Fidelity between the final states of two measurement-free
    /// circuits (global phase insensitive).
    fn state_fidelity(a: &Circuit, b: &Circuit) -> f64 {
        ideal::final_state(a).fidelity(&ideal::final_state(b))
    }

    type GateApplier = Box<dyn Fn(&mut Circuit)>;

    #[test]
    fn every_gate_lowers_equivalently() {
        let gates: Vec<GateApplier> = vec![
            Box::new(|c| {
                c.x(0);
            }),
            Box::new(|c| {
                c.y(0);
            }),
            Box::new(|c| {
                c.z(0);
            }),
            Box::new(|c| {
                c.h(0);
            }),
            Box::new(|c| {
                c.s(0);
            }),
            Box::new(|c| {
                c.sdg(0);
            }),
            Box::new(|c| {
                c.t(0);
            }),
            Box::new(|c| {
                c.tdg(0);
            }),
            Box::new(|c| {
                c.rx(0.7, 0);
            }),
            Box::new(|c| {
                c.ry(-1.3, 0);
            }),
            Box::new(|c| {
                c.rz(2.1, 0);
            }),
            Box::new(|c| {
                c.cz(0, 1);
            }),
            Box::new(|c| {
                c.swap(0, 1);
            }),
        ];
        for (k, apply) in gates.iter().enumerate() {
            // Start from a non-trivial entangled state so phases matter.
            let mut original = Circuit::new(2, 0);
            original.u3(0.9, 0.3, -0.2, 0).u3(-0.5, 0.1, 0.4, 1).cx(0, 1);
            apply(&mut original);
            let lowered = lower_to_native(&original);
            assert!(is_native(&lowered), "gate case {k} not native");
            let f = state_fidelity(&original, &lowered);
            assert!(f > 1.0 - 1e-9, "gate case {k}: fidelity {f}");
        }
    }

    #[test]
    fn identity_is_dropped() {
        let mut c = Circuit::new(1, 0);
        c.id(0).h(0);
        let lowered = lower_to_native(&c);
        assert_eq!(lowered.len(), 1);
    }

    #[test]
    fn measures_and_barriers_preserved() {
        let mut c = Circuit::new(2, 2);
        c.h(0).barrier_all().measure_all();
        let lowered = lower_to_native(&c);
        assert_eq!(lowered.count_gate("barrier"), 1);
        assert_eq!(lowered.count_gate("measure"), 2);
        // Measured distribution unchanged.
        let a = ideal::distribution(&c);
        let b = ideal::distribution(&lowered);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn lowering_is_idempotent() {
        let mut c = Circuit::new(3, 0);
        c.h(0).cz(0, 1).swap(1, 2).t(2);
        let once = lower_to_native(&c);
        let twice = lower_to_native(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn bell_state_survives_lowering() {
        let mut c = Circuit::new(2, 0);
        c.h(0).cx(0, 1);
        let lowered = lower_to_native(&c);
        let mut s = StateVector::new(2);
        for ins in lowered.iter() {
            let qs: Vec<usize> = ins.qubits().iter().map(|q| q.index()).collect();
            s.apply_gate(ins.gate(), &qs);
        }
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
    }
}
