//! The compile flow as typed passes over hashable artifacts.
//!
//! The paper's staged pipeline (Sections 6–7) expressed for the
//! [`xtalk_pass::PassManager`]:
//!
//! ```text
//! Circuit ──LowerPass──▶ NativeCircuit ──PlacePass──▶ PlacedCircuit
//!   ──RoutePass──▶ RoutedCircuit ──SchedulePass──▶ ScheduledArtifact
//!   ──RealizePass──▶ RealizedSchedule        (ExecutePass: not cached)
//! ```
//!
//! Each pass declares its cache identity via [`xtalk_pass::ContentHash`]
//! on its input plus a `config_hash` covering everything else that
//! affects its output (topology, calibration, characterization,
//! scheduler knobs). The manager applies spans, fault points, budget
//! polls and the artifact cache uniformly; nothing here touches those
//! concerns directly.

use crate::layout::{greedy_layout, route, Layout, RoutedCircuit};
use crate::optimize::fuse_single_qubit_gates;
use crate::pipeline::{run_scheduled_opts, RunOpts};
use crate::sched::xtalk::XtalkSchedReport;
use crate::{to_barriered_circuit, CoreError, Scheduler, SchedulerContext};
use xtalk_budget::Budget;
use xtalk_device::{Device, Edge, Topology};
use xtalk_ir::{Circuit, ScheduledCircuit};
use xtalk_pass::{ContentHash, Fnv1a, Pass};
use xtalk_sim::RunOutcome;

/// A circuit lowered to the IBMQ native basis (and optionally fused).
#[derive(Clone, PartialEq, Debug)]
pub struct NativeCircuit {
    /// The native-basis circuit.
    pub circuit: Circuit,
}

/// A native circuit padded to device width with a chosen initial layout.
#[derive(Clone, PartialEq, Debug)]
pub struct PlacedCircuit {
    /// The (padded) native circuit, still on logical qubits.
    pub circuit: Circuit,
    /// Logical → physical placement for the router.
    pub layout: Layout,
}

/// A scheduled circuit plus the serialization decisions that produced it
/// and the scheduler's report (when it emits one).
#[derive(Clone, PartialEq, Debug)]
pub struct ScheduledArtifact {
    /// The timed schedule.
    pub sched: ScheduledCircuit,
    /// Serialization decisions `(first, second)` as instruction indices
    /// (empty for schedulers that do not serialize explicitly).
    pub serializations: Vec<(usize, usize)>,
    /// Search diagnostics, when the scheduler produces them.
    pub report: Option<XtalkSchedReport>,
}

/// The exportable form of a schedule: the timed slots plus the barriered
/// circuit that enforces the serialization decisions on hardware.
#[derive(Clone, PartialEq, Debug)]
pub struct RealizedSchedule {
    /// The timed schedule.
    pub sched: ScheduledCircuit,
    /// The barriered executable circuit.
    pub circuit: Circuit,
}

impl ContentHash for NativeCircuit {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.circuit.content_hash(h);
    }
}

impl ContentHash for Layout {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_usize(self.num_physical());
        self.mapping().content_hash(h);
    }
}

impl ContentHash for PlacedCircuit {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.circuit.content_hash(h);
        self.layout.content_hash(h);
    }
}

impl ContentHash for RoutedCircuit {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.circuit.content_hash(h);
        self.initial_layout.content_hash(h);
        self.final_layout.content_hash(h);
        h.write_usize(self.swaps_inserted);
    }
}

impl ContentHash for XtalkSchedReport {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_f64(self.cost);
        h.write_u64(self.leaves);
        self.serializations.content_hash(h);
        h.write_usize(self.candidate_pairs);
        h.write_u8(u8::from(self.complete));
        h.write_u8(u8::from(self.fallback));
    }
}

impl ContentHash for ScheduledArtifact {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.sched.content_hash(h);
        self.serializations.content_hash(h);
        self.report.content_hash(h);
    }
}

impl ContentHash for RealizedSchedule {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.sched.content_hash(h);
        self.circuit.content_hash(h);
    }
}

/// Folds a [`SchedulerContext`] into a cache key: calibration,
/// characterization and the high-pair threshold all steer scheduling.
fn hash_context(ctx: &SchedulerContext, h: &mut Fnv1a) {
    ctx.calibration().content_hash(h);
    ctx.characterization().content_hash(h);
    h.write_f64(ctx.threshold());
}

/// Lowers to the native basis, optionally fusing single-qubit runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LowerPass {
    /// Fuse maximal single-qubit runs after lowering (the default — what
    /// the CLI and serve flows have always done).
    pub fuse: bool,
}

impl Default for LowerPass {
    fn default() -> Self {
        LowerPass { fuse: true }
    }
}

impl Pass for LowerPass {
    type Input = Circuit;
    type Output = NativeCircuit;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "lower"
    }

    fn config_hash(&self, h: &mut Fnv1a) {
        h.write_u8(u8::from(self.fuse));
    }

    fn run(&self, input: &Circuit, _budget: &Budget) -> Result<NativeCircuit, CoreError> {
        let lowered = xtalk_pass::lower_to_native(input);
        let circuit = if self.fuse { fuse_single_qubit_gates(&lowered) } else { lowered };
        Ok(NativeCircuit { circuit })
    }
}

/// Pads a native circuit to device width and chooses an initial layout:
/// identity when the circuit is already hardware-compliant, else the
/// greedy interaction-aware placement.
#[derive(Clone, Copy, Debug)]
pub struct PlacePass<'t> {
    topo: &'t Topology,
}

impl<'t> PlacePass<'t> {
    /// Placement onto `topo`.
    pub fn new(topo: &'t Topology) -> Self {
        PlacePass { topo }
    }
}

impl Pass for PlacePass<'_> {
    type Input = NativeCircuit;
    type Output = PlacedCircuit;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "place"
    }

    fn config_hash(&self, h: &mut Fnv1a) {
        self.topo.content_hash(h);
    }

    fn run(&self, input: &NativeCircuit, _budget: &Budget) -> Result<PlacedCircuit, CoreError> {
        let n = self.topo.num_qubits();
        if input.circuit.num_qubits() > n {
            return Err(CoreError::WidthExceeded {
                circuit: input.circuit.num_qubits(),
                device: n,
            });
        }
        let circuit = if input.circuit.num_qubits() == n {
            input.circuit.clone()
        } else {
            let mut padded = Circuit::new(n, input.circuit.num_clbits());
            padded
                .try_extend(&input.circuit)
                .expect("padding to a wider register cannot fail");
            padded
        };
        let compliant = circuit.iter().all(|ins| {
            !ins.gate().is_two_qubit()
                || self
                    .topo
                    .has_edge(Edge::from(ins.edge().expect("two-qubit gate has an edge")))
        });
        let layout = if compliant {
            Layout::trivial(n, n)
        } else {
            greedy_layout(&circuit, self.topo)
        };
        Ok(PlacedCircuit { circuit, layout })
    }
}

/// Routes a placed circuit: inserts SWAP chains (as CNOT triples) until
/// every two-qubit gate sits on a coupling edge.
#[derive(Clone, Copy, Debug)]
pub struct RoutePass<'t> {
    topo: &'t Topology,
}

impl<'t> RoutePass<'t> {
    /// Routing over `topo`.
    pub fn new(topo: &'t Topology) -> Self {
        RoutePass { topo }
    }
}

impl Pass for RoutePass<'_> {
    type Input = PlacedCircuit;
    type Output = RoutedCircuit;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "route"
    }

    fn config_hash(&self, h: &mut Fnv1a) {
        self.topo.content_hash(h);
    }

    fn run(&self, input: &PlacedCircuit, _budget: &Budget) -> Result<RoutedCircuit, CoreError> {
        route(&input.circuit, self.topo, input.layout.clone())
    }
}

/// Schedules a routed physical circuit with a given scheduler under the
/// manager's budget. The cache key covers the scheduler's fingerprint
/// (name + knobs) and the full scheduler context, so the three policies
/// share the lower/place/route prefix but never each other's schedules.
pub struct SchedulePass<'a> {
    scheduler: &'a dyn Scheduler,
    ctx: &'a SchedulerContext,
}

impl<'a> SchedulePass<'a> {
    /// Scheduling with `scheduler` in `ctx`.
    pub fn new(scheduler: &'a dyn Scheduler, ctx: &'a SchedulerContext) -> Self {
        SchedulePass { scheduler, ctx }
    }
}

impl Pass for SchedulePass<'_> {
    type Input = Circuit;
    type Output = ScheduledArtifact;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "schedule"
    }

    fn config_hash(&self, h: &mut Fnv1a) {
        self.scheduler.fingerprint(h);
        hash_context(self.ctx, h);
    }

    fn cache_output(&self, out: &ScheduledArtifact) -> bool {
        // A budget-truncated (or fallback) schedule is best-effort, not
        // canonical: a later run with a healthier budget must redo it.
        out.report.as_ref().is_none_or(|r| r.complete)
    }

    fn budget_polled(&self) -> bool {
        // Anytime stage: the budget threads into the scheduler's own
        // search, which yields an honest truncated/fallback schedule.
        false
    }

    fn run(&self, input: &Circuit, budget: &Budget) -> Result<ScheduledArtifact, CoreError> {
        let (sched, report) = self.scheduler.schedule_report(input, self.ctx, budget)?;
        let serializations =
            report.as_ref().map(|r| r.serializations.clone()).unwrap_or_default();
        Ok(ScheduledArtifact { sched, serializations, report })
    }
}

/// Converts a scheduled artifact into its exportable barriered form.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RealizePass;

impl Pass for RealizePass {
    type Input = ScheduledArtifact;
    type Output = RealizedSchedule;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "realize"
    }

    fn run(&self, input: &ScheduledArtifact, _budget: &Budget) -> Result<RealizedSchedule, CoreError> {
        let circuit = to_barriered_circuit(&input.sched, &input.serializations);
        Ok(RealizedSchedule { sched: input.sched.clone(), circuit })
    }
}

/// Executes a schedule on the simulator. Never cached — output depends
/// on shots/seed/threads, and the executor's own budget handling already
/// yields honest prefixes.
#[derive(Clone, Copy, Debug)]
pub struct ExecutePass<'d> {
    device: &'d Device,
    shots: u64,
    seed: u64,
    threads: usize,
}

impl<'d> ExecutePass<'d> {
    /// Execution of `shots` trajectories with base `seed` across
    /// `threads` OS threads (`0` = available parallelism).
    pub fn new(device: &'d Device, shots: u64, seed: u64, threads: usize) -> Self {
        ExecutePass { device, shots, seed, threads }
    }
}

impl Pass for ExecutePass<'_> {
    type Input = ScheduledCircuit;
    type Output = RunOutcome;
    type Err = CoreError;

    fn id(&self) -> &'static str {
        "execute"
    }

    fn cacheable(&self) -> bool {
        false
    }

    fn budget_polled(&self) -> bool {
        // Anytime stage: the executor polls the budget at shot-batch
        // boundaries and reports the honest completed prefix.
        false
    }

    fn run(&self, input: &ScheduledCircuit, budget: &Budget) -> Result<RunOutcome, CoreError> {
        let opts = RunOpts { threads: self.threads, budget: budget.clone() };
        Ok(run_scheduled_opts(self.device, input, self.shots, self.seed, &opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use xtalk_pass::{EpochToken, PassManager};

    #[test]
    fn place_pads_and_keeps_compliant_circuits_identity() {
        let topo = Topology::line(5);
        let mut c = Circuit::new(2, 2);
        c.u2(0.0, PI, 0).cx(0, 1).measure(0, 0).measure(1, 1);
        let pm = PassManager::new(EpochToken::new("t", 0));
        let native = pm.run(&LowerPass::default(), &c).unwrap();
        let placed = pm.run(&PlacePass::new(&topo), &native).unwrap();
        assert_eq!(placed.circuit.num_qubits(), 5);
        assert_eq!(placed.layout, Layout::trivial(5, 5));
        let routed = pm.run(&RoutePass::new(&topo), &placed).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        // Identity routing preserves the padded circuit exactly.
        assert_eq!(routed.circuit, placed.circuit);
    }

    #[test]
    fn place_rejects_oversized_circuits() {
        let topo = Topology::line(2);
        let c = Circuit::new(3, 0);
        let pm = PassManager::new(EpochToken::new("t", 0));
        let native = pm.run(&LowerPass::default(), &c).unwrap();
        match pm.run(&PlacePass::new(&topo), &native).map_err(CoreError::from) {
            Err(CoreError::WidthExceeded { circuit: 3, device: 2 }) => {}
            other => panic!("expected WidthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn place_falls_back_to_greedy_layout_for_noncompliant() {
        let topo = Topology::line(4);
        let mut c = Circuit::new(4, 0);
        c.cx(0, 3); // non-adjacent on a line
        let pm = PassManager::new(EpochToken::new("t", 0));
        let native = pm.run(&LowerPass::default(), &c).unwrap();
        let placed = pm.run(&PlacePass::new(&topo), &native).unwrap();
        let routed = pm.run(&RoutePass::new(&topo), &placed).unwrap();
        // Routed output must be hardware-compliant.
        for ins in routed.circuit.iter() {
            if ins.gate().is_two_qubit() {
                assert!(topo.has_edge(Edge::from(ins.edge().unwrap())));
            }
        }
    }
}
