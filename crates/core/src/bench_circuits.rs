//! The paper's application benchmarks (Section 8.3): QAOA
//! hardware-efficient ansatz, Hidden Shift (with optional redundant
//! CNOTs), and supremacy-style random circuits for scalability studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xtalk_device::Topology;
use xtalk_ir::Circuit;

/// A 4-qubit QAOA circuit using the hardware-efficient ansatz on a line
/// `region` of four physical qubits (the paper's 43-gate / 9-CNOT
/// instances on crosstalk-prone Poughkeepsie regions).
///
/// Angles are drawn deterministically from `seed` so the ideal output
/// distribution is reproducible.
///
/// # Panics
///
/// Panics unless `region` has exactly 4 distinct qubits.
pub fn qaoa_ansatz(width: usize, region: &[u32], seed: u64) -> Circuit {
    assert_eq!(region.len(), 4, "the paper's QAOA instances use 4 qubits");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a0a);
    let mut c = Circuit::new(width, 4);
    // Initial superposition layer.
    for &q in region {
        c.h(q);
    }
    // Three entangling layers + parameterized rotations. The entangler
    // drives the outer pairs *in parallel* (standard hardware-efficient
    // pairing), which is what makes these regions crosstalk-prone.
    for _ in 0..3 {
        c.cx(region[0], region[1]);
        c.cx(region[2], region[3]);
        c.cx(region[1], region[2]);
        for &q in region {
            c.rz(rng.gen_range(0.0..std::f64::consts::TAU), q);
            c.rx(rng.gen_range(0.0..std::f64::consts::PI), q);
        }
    }
    // Final mixing layer.
    for &q in region {
        c.rx(rng.gen_range(0.0..std::f64::consts::PI), q);
    }
    for (bit, &q) in region.iter().enumerate() {
        c.measure(q, bit as u32);
    }
    c
}

/// A 4-qubit Hidden Shift instance on `region` whose noiseless output is
/// exactly `shift` (4 bits, little-endian over the region): two layers of
/// two parallel CNOTs sandwiched in Hadamards, cancelling to the
/// identity, followed by X gates encoding the shift.
///
/// With `redundant` set, each CNOT is replaced by three (the first two
/// forming an identity), which lengthens the windows in which parallel
/// CNOTs overlap — the paper's trick for making the benchmark *more*
/// susceptible to crosstalk (Figure 9b).
///
/// # Panics
///
/// Panics unless `region` has exactly 4 qubits or `shift >= 16`.
pub fn hidden_shift(width: usize, region: &[u32], shift: u8, redundant: bool) -> Circuit {
    assert_eq!(region.len(), 4, "hidden shift instances use 4 qubits");
    assert!(shift < 16, "shift is 4 bits");
    let mut c = Circuit::new(width, 4);
    let cx = |c: &mut Circuit, a: u32, b: u32| {
        if redundant {
            c.cx(a, b).cx(a, b).cx(a, b);
        } else {
            c.cx(a, b);
        }
    };
    for &q in region {
        c.h(q);
    }
    // Layer 1: two parallel CNOTs.
    cx(&mut c, region[0], region[1]);
    cx(&mut c, region[2], region[3]);
    for &q in region {
        c.h(q);
    }
    // Layer 2 undoes layer 1 (CX self-inverse after the H sandwich).
    for &q in region {
        c.h(q);
    }
    cx(&mut c, region[0], region[1]);
    cx(&mut c, region[2], region[3]);
    for &q in region {
        c.h(q);
    }
    // Encode the shift.
    for (bit, &q) in region.iter().enumerate() {
        if (shift >> bit) & 1 == 1 {
            c.x(q);
        }
    }
    for (bit, &q) in region.iter().enumerate() {
        c.measure(q, bit as u32);
    }
    c
}

/// A GHZ-state preparation chain over `region` with terminal
/// measurements — the classic entanglement benchmark; ideal output is an
/// even split between all-zeros and all-ones.
///
/// # Panics
///
/// Panics on an empty or repeating region.
pub fn ghz(width: usize, region: &[u32]) -> Circuit {
    assert!(!region.is_empty(), "GHZ needs at least one qubit");
    for (i, q) in region.iter().enumerate() {
        assert!(!region[i + 1..].contains(q), "qubit {q} repeated");
    }
    let mut c = Circuit::new(width, region.len());
    c.h(region[0]);
    for w in region.windows(2) {
        c.cx(w[0], w[1]);
    }
    for (bit, &q) in region.iter().enumerate() {
        c.measure(q, bit as u32);
    }
    c
}

/// A Bernstein–Vazirani instance over `region` recovering the hidden
/// string `secret` in one query (used as a benchmark by the
/// noise-adaptive-compilation line of work the paper builds on). The
/// last region qubit is the oracle ancilla; the ideal output over the
/// data qubits is exactly `secret`.
///
/// # Panics
///
/// Panics if `region` has fewer than 2 qubits or `secret` uses more bits
/// than data qubits.
pub fn bernstein_vazirani(width: usize, region: &[u32], secret: u64) -> Circuit {
    assert!(region.len() >= 2, "BV needs data qubits plus an ancilla");
    let data = &region[..region.len() - 1];
    let ancilla = *region.last().expect("nonempty");
    assert!(
        secret < (1 << data.len()),
        "secret uses more bits than data qubits"
    );
    let mut c = Circuit::new(width, data.len());
    // Ancilla in |−⟩, data in |+⟩.
    c.x(ancilla).h(ancilla);
    for &q in data {
        c.h(q);
    }
    // Oracle: CNOT from each secret-bit qubit into the ancilla.
    for (bit, &q) in data.iter().enumerate() {
        if (secret >> bit) & 1 == 1 {
            c.cx(q, ancilla);
        }
    }
    for (bit, &q) in data.iter().enumerate() {
        c.h(q);
        c.measure(q, bit as u32);
    }
    c
}

/// A quantum-supremacy-style random circuit on the given qubits of a
/// topology: `depth` layers alternating random single-qubit gates with
/// CNOTs on disjoint coupling edges. Used for scheduler scalability
/// studies (paper Section 9.4); too wide to simulate, never executed.
///
/// # Panics
///
/// Panics if `qubits` repeats a qubit or references one outside the
/// topology.
pub fn supremacy_circuit(topo: &Topology, qubits: &[u32], depth: usize, seed: u64) -> Circuit {
    for (i, q) in qubits.iter().enumerate() {
        assert!((*q as usize) < topo.num_qubits(), "qubit {q} outside topology");
        assert!(!qubits[i + 1..].contains(q), "qubit {q} repeated");
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50f1);
    let mut c = Circuit::new(topo.num_qubits(), qubits.len());
    let in_region = |q: u32| qubits.contains(&q);
    let edges: Vec<_> = topo
        .edges()
        .iter()
        .copied()
        .filter(|e| in_region(e.lo()) && in_region(e.hi()))
        .collect();

    for &q in qubits {
        c.h(q);
    }
    for _ in 0..depth {
        // Random single-qubit layer.
        for &q in qubits {
            match rng.gen_range(0..3) {
                0 => c.rx(std::f64::consts::FRAC_PI_2, q),
                1 => c.ry(std::f64::consts::FRAC_PI_2, q),
                _ => c.t(q),
            };
        }
        // Random maximal-ish matching of coupling edges.
        let mut used = vec![false; topo.num_qubits()];
        let mut order = edges.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for e in order {
            if !used[e.lo() as usize] && !used[e.hi() as usize] && rng.gen_bool(0.8) {
                c.cx(e.lo(), e.hi());
                used[e.lo() as usize] = true;
                used[e.hi() as usize] = true;
            }
        }
    }
    for (bit, &q) in qubits.iter().enumerate() {
        c.measure(q, bit as u32);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_sim::ideal;

    #[test]
    fn qaoa_shape_matches_paper() {
        let c = qaoa_ansatz(20, &[5, 10, 11, 12], 7);
        assert_eq!(c.count_gate("cx"), 9, "paper instances have 9 CNOTs");
        let unitaries =
            c.iter().filter(|i| i.gate().is_unitary()).count();
        assert!(
            (38..=48).contains(&unitaries),
            "paper instances have ~43 gates, got {unitaries}"
        );
        assert_eq!(c.count_gate("measure"), 4);
    }

    #[test]
    fn qaoa_is_deterministic_per_seed() {
        let a = qaoa_ansatz(20, &[5, 10, 11, 12], 3);
        let b = qaoa_ansatz(20, &[5, 10, 11, 12], 3);
        let c = qaoa_ansatz(20, &[5, 10, 11, 12], 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hidden_shift_outputs_shift() {
        for shift in [0b0000u8, 0b1010, 0b0111, 0b1111] {
            let c = hidden_shift(8, &[0, 1, 2, 3], shift, false);
            let p = ideal::distribution(&c);
            assert!(
                (p[shift as usize] - 1.0).abs() < 1e-9,
                "shift {shift:#06b}: p = {}",
                p[shift as usize]
            );
        }
    }

    #[test]
    fn redundant_variant_preserves_output() {
        let shift = 0b0110;
        let c = hidden_shift(8, &[0, 1, 2, 3], shift, true);
        let p = ideal::distribution(&c);
        assert!((p[shift as usize] - 1.0).abs() < 1e-9);
        // Three times the CNOTs of the plain variant.
        let plain = hidden_shift(8, &[0, 1, 2, 3], shift, false);
        assert_eq!(c.count_gate("cx"), 3 * plain.count_gate("cx"));
    }

    #[test]
    fn hidden_shift_layers_are_parallel() {
        let c = hidden_shift(8, &[0, 1, 2, 3], 0, false);
        let dag = c.dag();
        let cx: Vec<usize> = c
            .iter()
            .enumerate()
            .filter(|(_, i)| i.gate().is_two_qubit())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cx.len(), 4);
        // The two CNOTs of the first layer are independent.
        assert!(dag.can_overlap(cx[0], cx[1]));
    }

    #[test]
    fn ghz_is_maximally_correlated() {
        let c = ghz(8, &[1, 2, 3, 4]);
        let p = ideal::distribution(&c);
        assert!((p[0b0000] - 0.5).abs() < 1e-9);
        assert!((p[0b1111] - 0.5).abs() < 1e-9);
        assert_eq!(c.count_gate("cx"), 3);
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for secret in [0b000u64, 0b101, 0b110, 0b111] {
            let c = bernstein_vazirani(8, &[0, 1, 2, 3], secret);
            let p = ideal::distribution(&c);
            assert!(
                (p[secret as usize] - 1.0).abs() < 1e-9,
                "secret {secret:#05b}: p = {}",
                p[secret as usize]
            );
        }
    }

    #[test]
    fn bv_oracle_size_tracks_secret_weight() {
        let light = bernstein_vazirani(8, &[0, 1, 2, 3], 0b001);
        let heavy = bernstein_vazirani(8, &[0, 1, 2, 3], 0b111);
        assert!(heavy.count_gate("cx") > light.count_gate("cx"));
    }

    #[test]
    #[should_panic(expected = "more bits than data")]
    fn bv_secret_width_checked() {
        bernstein_vazirani(8, &[0, 1, 2], 0b1111);
    }

    #[test]
    fn supremacy_scales_with_depth() {
        let topo = Topology::poughkeepsie();
        let qubits: Vec<u32> = (0..12).collect();
        let small = supremacy_circuit(&topo, &qubits, 10, 0);
        let large = supremacy_circuit(&topo, &qubits, 40, 0);
        assert!(large.len() > 2 * small.len());
        assert!(large.count_gate("cx") > 40, "depth 40 should have many CNOTs");
        // Hardware compliant by construction.
        for ins in large.iter().filter(|i| i.gate().is_two_qubit()) {
            let (a, b) = ins.edge().unwrap();
            assert!(topo.are_adjacent(a.raw(), b.raw()));
        }
    }

    #[test]
    #[should_panic(expected = "4 qubits")]
    fn qaoa_region_size_checked() {
        qaoa_ansatz(20, &[0, 1, 2], 0);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn supremacy_rejects_duplicates() {
        supremacy_circuit(&Topology::line(4), &[0, 1, 1], 2, 0);
    }
}
