//! End-to-end flows: schedule → execute → score, with readout-error
//! mitigation — the measurement methodology of the paper's Section 8.4.
//!
//! Execution has one entry point, [`run_scheduled_opts`], parameterized
//! by [`RunOpts`]; the historical `run_scheduled` /
//! `run_scheduled_threads` / `run_scheduled_budgeted` triplet survives
//! as deprecated one-line shims. The metric functions delegate to an
//! ephemeral [`crate::Compiler`] so every stage runs through the pass
//! manager; construct the `Compiler` yourself to share its artifact
//! cache across calls.

use crate::{Compiler, CoreError, Scheduler, SchedulerContext};
use xtalk_budget::Budget;
use xtalk_device::Device;
use xtalk_ir::{Circuit, ScheduledCircuit};
use xtalk_sim::{Counts, Executor, ExecutorConfig, RunOutcome};

/// Execution options for [`run_scheduled_opts`].
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// OS threads to split trajectory sampling across (`0` = available
    /// parallelism). Counts are bit-identical at any thread count.
    pub threads: usize,
    /// Cooperative budget polled at shot-batch boundaries; exhaustion
    /// yields an honest completed-shot prefix, not an error.
    pub budget: Budget,
}

impl Default for RunOpts {
    /// Sequential, unlimited — the behavior of the old `run_scheduled`.
    fn default() -> Self {
        RunOpts { threads: 1, budget: Budget::unlimited() }
    }
}

/// Executes a schedule on a device with the given shot budget. The
/// returned [`RunOutcome`] reports the exact completed-shot prefix; its
/// counts are bit-identical to a fresh run of exactly `shots_completed`
/// shots at any thread count.
pub fn run_scheduled_opts(
    device: &Device,
    sched: &ScheduledCircuit,
    shots: u64,
    seed: u64,
    opts: &RunOpts,
) -> RunOutcome {
    let cfg = ExecutorConfig { shots, seed, ..Default::default() };
    Executor::with_config(device, cfg).run_budgeted(sched, opts.threads, &opts.budget)
}

/// Executes a schedule sequentially with an unlimited budget.
#[deprecated(since = "0.6.0", note = "use `run_scheduled_opts` with `RunOpts::default()`")]
pub fn run_scheduled(device: &Device, sched: &ScheduledCircuit, shots: u64, seed: u64) -> Counts {
    run_scheduled_opts(device, sched, shots, seed, &RunOpts::default()).counts
}

/// Executes a schedule across `threads` OS threads.
#[deprecated(since = "0.6.0", note = "use `run_scheduled_opts` with `RunOpts { threads, .. }`")]
pub fn run_scheduled_threads(
    device: &Device,
    sched: &ScheduledCircuit,
    shots: u64,
    seed: u64,
    threads: usize,
) -> Counts {
    run_scheduled_opts(device, sched, shots, seed, &RunOpts { threads, ..Default::default() })
        .counts
}

/// Executes a schedule under a cooperative [`Budget`].
#[deprecated(since = "0.6.0", note = "use `run_scheduled_opts` with `RunOpts { threads, budget }`")]
pub fn run_scheduled_budgeted(
    device: &Device,
    sched: &ScheduledCircuit,
    shots: u64,
    seed: u64,
    threads: usize,
    budget: &Budget,
) -> RunOutcome {
    run_scheduled_opts(
        device,
        sched,
        shots,
        seed,
        &RunOpts { threads, budget: budget.clone() },
    )
}

/// The SWAP-circuit metric's outcome (Figures 5–7).
pub struct SwapRunOutcome {
    /// `1 − F(ρ, |Φ+⟩)` — lower is better.
    pub error_rate: f64,
    /// Schedule makespan in ns (Figure 5d).
    pub duration_ns: u64,
}

/// The SWAP-circuit metric (Figures 5–7): schedules the meet-in-the-middle
/// benchmark from `a` to `b`, runs two-qubit state tomography on the
/// resulting Bell pair (9 bases × `shots_per_basis` trials, readout-error
/// mitigated) and returns `1 − fidelity` with `|Φ+⟩`.
///
/// # Errors
///
/// Propagates routing/scheduling failures.
pub fn swap_bell_error(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    a: u32,
    b: u32,
    shots_per_basis: u64,
    seed: u64,
) -> Result<SwapRunOutcome, CoreError> {
    swap_bell_error_threads(device, ctx, scheduler, a, b, shots_per_basis, seed, 1)
}

/// [`swap_bell_error`] with the trajectory sampling of each tomography
/// basis split across `threads` OS threads (`0` = available
/// parallelism). Bit-identical to the sequential form.
///
/// # Errors
///
/// Propagates routing/scheduling failures.
#[allow(clippy::too_many_arguments)]
pub fn swap_bell_error_threads(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    a: u32,
    b: u32,
    shots_per_basis: u64,
    seed: u64,
    threads: usize,
) -> Result<SwapRunOutcome, CoreError> {
    Compiler::new(device, ctx.clone())
        .swap_bell_error(scheduler, a, b, shots_per_basis, seed, threads)
}

/// The QAOA metric (Figure 8): cross entropy of the mitigated measured
/// distribution against the noise-free ideal (lower is better; the
/// noise-free floor is the ideal distribution's entropy).
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn qaoa_cross_entropy(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
) -> Result<f64, CoreError> {
    Compiler::new(device, ctx.clone()).qaoa_cross_entropy(scheduler, circuit, shots, seed)
}

/// The Hidden Shift metric (Figure 9): fraction of (mitigated) trials
/// that did *not* return the correct bitstring.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn hidden_shift_error(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    circuit: &Circuit,
    target: u64,
    shots: u64,
    seed: u64,
) -> Result<f64, CoreError> {
    Compiler::new(device, ctx.clone())
        .hidden_shift_error(scheduler, circuit, target, shots, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_circuits::{hidden_shift, qaoa_ansatz};
    use crate::{ParSched, SerialSched, XtalkSched};
    use xtalk_sim::{ideal, metrics};

    #[test]
    #[allow(deprecated)] // the shims must stay bit-identical to the new entry point
    fn budgeted_run_matches_plain_run_when_unlimited() {
        let device = Device::line(3, 2);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = ParSched::new().schedule(&c, &ctx).unwrap();
        let plain = run_scheduled(&device, &sched, 300, 9);
        let out = run_scheduled_budgeted(&device, &sched, 300, 9, 2, &Budget::unlimited());
        assert!(out.complete);
        assert_eq!(out.shots_completed, 300);
        assert_eq!(out.counts, plain);
        let via_opts = run_scheduled_opts(
            &device,
            &sched,
            300,
            9,
            &RunOpts { threads: 4, ..Default::default() },
        );
        assert_eq!(via_opts.counts, plain);
        // A cancelled budget yields an honest empty prefix.
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let out = run_scheduled_budgeted(&device, &sched, 300, 9, 2, &budget);
        assert!(!out.complete);
        assert_eq!(out.shots_completed, 0);
    }

    #[test]
    fn swap_error_is_sane_on_clean_line() {
        let device = Device::line(5, 4);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let out =
            swap_bell_error(&device, &ctx, &ParSched::new(), 0, 4, 256, 1).unwrap();
        assert!(out.error_rate > 0.0 && out.error_rate < 0.5, "error {}", out.error_rate);
        assert!(out.duration_ns > 0);
    }

    #[test]
    fn xtalksched_beats_parsched_on_hot_path() {
        // The paper's marquee comparison, miniature edition: route across
        // the Poughkeepsie 11x hot spot and compare measured Bell error.
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let par =
            swap_bell_error(&device, &ctx, &ParSched::new(), 0, 13, 384, 7).unwrap();
        let xt = swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), 0, 13, 384, 7)
            .unwrap();
        assert!(
            xt.error_rate < par.error_rate,
            "XtalkSched {} should beat ParSched {}",
            xt.error_rate,
            par.error_rate
        );
        // Modest duration increase only (paper: ≤1.7x).
        assert!(xt.duration_ns <= 2 * par.duration_ns);
    }

    #[test]
    fn qaoa_cross_entropy_ranks_schedulers() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let circuit = qaoa_ansatz(20, &[5, 10, 11, 12], 3);
        let ce_par =
            qaoa_cross_entropy(&device, &ctx, &ParSched::new(), &circuit, 2048, 11).unwrap();
        let ce_xt =
            qaoa_cross_entropy(&device, &ctx, &XtalkSched::new(0.1), &circuit, 2048, 11)
                .unwrap();
        let ideal = ideal::distribution(&circuit);
        let floor = metrics::entropy(&ideal);
        assert!(ce_par > floor && ce_xt > floor, "noisy CE must exceed the floor");
        assert!(
            ce_xt <= ce_par + 0.05,
            "XtalkSched CE {ce_xt} should not lose to ParSched {ce_par}"
        );
    }

    #[test]
    fn hidden_shift_error_detects_serialization_cost() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        // Region aligned with the planted (5,10)|(11,12) pair.
        let circuit = hidden_shift(20, &[5, 10, 11, 12], 0b1001, true);
        let serial =
            hidden_shift_error(&device, &ctx, &SerialSched::new(), &circuit, 0b1001, 2048, 5)
                .unwrap();
        let xt =
            hidden_shift_error(&device, &ctx, &XtalkSched::new(0.3), &circuit, 0b1001, 2048, 5)
                .unwrap();
        assert!(serial > 0.0 && serial < 1.0);
        assert!(xt <= serial + 0.05, "xtalk {xt} vs serial {serial}");
    }
}
