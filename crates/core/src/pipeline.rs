//! End-to-end flows: schedule → execute → score, with readout-error
//! mitigation — the measurement methodology of the paper's Section 8.4.

use crate::{CoreError, Scheduler, SchedulerContext};
use xtalk_budget::Budget;
use xtalk_device::Device;
use xtalk_ir::{Circuit, Qubit, ScheduledCircuit};
use xtalk_sim::mitigation::CalibrationMatrix;
use xtalk_sim::tomography::{
    bell_phi_plus, expectations_from_distributions, tomography_circuits, DensityMatrix2,
};
use xtalk_sim::{ideal, metrics, Counts, Executor, ExecutorConfig, RunOutcome};

/// Executes a schedule on a device with the given shot budget.
pub fn run_scheduled(device: &Device, sched: &ScheduledCircuit, shots: u64, seed: u64) -> Counts {
    run_scheduled_threads(device, sched, shots, seed, 1)
}

/// [`run_scheduled`] with the Monte-Carlo trials split across `threads`
/// OS threads (`0` = all available parallelism). Bit-identical to the
/// sequential form for a fixed seed.
pub fn run_scheduled_threads(
    device: &Device,
    sched: &ScheduledCircuit,
    shots: u64,
    seed: u64,
    threads: usize,
) -> Counts {
    let cfg = ExecutorConfig { shots, seed, ..Default::default() };
    Executor::with_config(device, cfg).run_parallel(sched, threads)
}

/// [`run_scheduled_threads`] under a cooperative [`Budget`], polled at
/// shot-batch boundaries. The returned [`RunOutcome`] reports the exact
/// completed-shot prefix; its counts are bit-identical to a fresh run of
/// exactly `shots_completed` shots at any thread count.
pub fn run_scheduled_budgeted(
    device: &Device,
    sched: &ScheduledCircuit,
    shots: u64,
    seed: u64,
    threads: usize,
    budget: &Budget,
) -> RunOutcome {
    let cfg = ExecutorConfig { shots, seed, ..Default::default() };
    Executor::with_config(device, cfg).run_budgeted(sched, threads, budget)
}

/// The SWAP-circuit metric (Figures 5–7): schedules the meet-in-the-middle
/// benchmark from `a` to `b`, runs two-qubit state tomography on the
/// resulting Bell pair (9 bases × `shots_per_basis` trials, readout-error
/// mitigated) and returns `1 − fidelity` with `|Φ+⟩`.
///
/// # Errors
///
/// Propagates routing/scheduling failures.
pub struct SwapRunOutcome {
    /// `1 − F(ρ, |Φ+⟩)` — lower is better.
    pub error_rate: f64,
    /// Schedule makespan in ns (Figure 5d).
    pub duration_ns: u64,
}

/// See [`SwapRunOutcome`].
pub fn swap_bell_error(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    a: u32,
    b: u32,
    shots_per_basis: u64,
    seed: u64,
) -> Result<SwapRunOutcome, CoreError> {
    swap_bell_error_threads(device, ctx, scheduler, a, b, shots_per_basis, seed, 1)
}

/// [`swap_bell_error`] with the trajectory sampling of each tomography
/// basis split across `threads` OS threads (`0` = available
/// parallelism). Bit-identical to the sequential form.
///
/// # Errors
///
/// Propagates routing/scheduling failures.
#[allow(clippy::too_many_arguments)]
pub fn swap_bell_error_threads(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    a: u32,
    b: u32,
    shots_per_basis: u64,
    seed: u64,
    threads: usize,
) -> Result<SwapRunOutcome, CoreError> {
    let _span = xtalk_obs::span("pipeline.swap_bell");
    let bench = crate::routing::swap_benchmark(device.topology(), a, b)?;
    let (qa, qb) = bench.bell_pair;

    let cal_matrix = {
        let _cal = xtalk_obs::span("readout_cal");
        CalibrationMatrix::measure(device, &[qa.raw(), qb.raw()], shots_per_basis.max(512), seed)
    };

    let mut duration = 0;
    let mut data = Vec::new();
    for (idx, (setting, circuit)) in
        tomography_circuits(&bench.circuit, qa, qb).into_iter().enumerate()
    {
        let sched = scheduler.schedule(&circuit, ctx)?;
        duration = duration.max(sched.makespan());
        let counts = {
            let _exec = xtalk_obs::span("execute");
            run_scheduled_threads(
                device,
                &sched,
                shots_per_basis,
                seed ^ ((idx as u64 + 1) << 32),
                threads,
            )
        };
        data.push((setting, cal_matrix.mitigate(&counts)));
    }
    let rho = DensityMatrix2::from_expectations(&expectations_from_distributions(&data));
    Ok(SwapRunOutcome {
        error_rate: (1.0 - rho.fidelity_with(&bell_phi_plus())).clamp(0.0, 1.0),
        duration_ns: duration,
    })
}

/// The QAOA metric (Figure 8): cross entropy of the mitigated measured
/// distribution against the noise-free ideal (lower is better; the
/// noise-free floor is the ideal distribution's entropy).
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn qaoa_cross_entropy(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
) -> Result<f64, CoreError> {
    let sched = scheduler.schedule(circuit, ctx)?;
    let counts = run_scheduled(device, &sched, shots, seed);
    let measured_qubits = measured_qubits(circuit);
    let cal = CalibrationMatrix::measure(device, &measured_qubits, shots.max(1024), seed ^ 0xfe);
    let mitigated = cal.mitigate(&counts);
    let ideal = ideal::distribution(circuit);
    Ok(metrics::cross_entropy(&ideal, &mitigated, 0.5 / shots as f64))
}

/// The Hidden Shift metric (Figure 9): fraction of (mitigated) trials
/// that did *not* return the correct bitstring.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn hidden_shift_error(
    device: &Device,
    ctx: &SchedulerContext,
    scheduler: &dyn Scheduler,
    circuit: &Circuit,
    target: u64,
    shots: u64,
    seed: u64,
) -> Result<f64, CoreError> {
    let sched = scheduler.schedule(circuit, ctx)?;
    let counts = run_scheduled(device, &sched, shots, seed);
    let measured = measured_qubits(circuit);
    let cal = CalibrationMatrix::measure(device, &measured, shots.max(1024), seed ^ 0xfd);
    let mitigated = cal.mitigate(&counts);
    Ok((1.0 - mitigated[target as usize]).clamp(0.0, 1.0))
}

/// The physical qubits measured by a circuit, ordered by classical bit.
///
/// # Panics
///
/// Panics if two measurements target the same classical bit.
fn measured_qubits(circuit: &Circuit) -> Vec<u32> {
    let mut by_clbit: Vec<Option<Qubit>> = vec![None; circuit.num_clbits()];
    for ins in circuit.iter().filter(|i| i.gate().is_measurement()) {
        let c = ins.clbit().expect("measure carries clbit").index();
        assert!(by_clbit[c].is_none(), "clbit {c} written twice");
        by_clbit[c] = Some(ins.qubits()[0]);
    }
    by_clbit
        .into_iter()
        .map(|q| q.expect("every clbit is written").raw())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_circuits::{hidden_shift, qaoa_ansatz};
    use crate::{ParSched, SerialSched, XtalkSched};

    #[test]
    fn budgeted_run_matches_plain_run_when_unlimited() {
        let device = Device::line(3, 2);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let sched = ParSched::new().schedule(&c, &ctx).unwrap();
        let plain = run_scheduled(&device, &sched, 300, 9);
        let out = run_scheduled_budgeted(&device, &sched, 300, 9, 2, &Budget::unlimited());
        assert!(out.complete);
        assert_eq!(out.shots_completed, 300);
        assert_eq!(out.counts, plain);
        // A cancelled budget yields an honest empty prefix.
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let out = run_scheduled_budgeted(&device, &sched, 300, 9, 2, &budget);
        assert!(!out.complete);
        assert_eq!(out.shots_completed, 0);
    }

    #[test]
    fn swap_error_is_sane_on_clean_line() {
        let device = Device::line(5, 4);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let out =
            swap_bell_error(&device, &ctx, &ParSched::new(), 0, 4, 256, 1).unwrap();
        assert!(out.error_rate > 0.0 && out.error_rate < 0.5, "error {}", out.error_rate);
        assert!(out.duration_ns > 0);
    }

    #[test]
    fn xtalksched_beats_parsched_on_hot_path() {
        // The paper's marquee comparison, miniature edition: route across
        // the Poughkeepsie 11x hot spot and compare measured Bell error.
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let par =
            swap_bell_error(&device, &ctx, &ParSched::new(), 0, 13, 384, 7).unwrap();
        let xt = swap_bell_error(&device, &ctx, &XtalkSched::new(0.5), 0, 13, 384, 7)
            .unwrap();
        assert!(
            xt.error_rate < par.error_rate,
            "XtalkSched {} should beat ParSched {}",
            xt.error_rate,
            par.error_rate
        );
        // Modest duration increase only (paper: ≤1.7x).
        assert!(xt.duration_ns <= 2 * par.duration_ns);
    }

    #[test]
    fn qaoa_cross_entropy_ranks_schedulers() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        let circuit = qaoa_ansatz(20, &[5, 10, 11, 12], 3);
        let ce_par =
            qaoa_cross_entropy(&device, &ctx, &ParSched::new(), &circuit, 2048, 11).unwrap();
        let ce_xt =
            qaoa_cross_entropy(&device, &ctx, &XtalkSched::new(0.1), &circuit, 2048, 11)
                .unwrap();
        let ideal = ideal::distribution(&circuit);
        let floor = metrics::entropy(&ideal);
        assert!(ce_par > floor && ce_xt > floor, "noisy CE must exceed the floor");
        assert!(
            ce_xt <= ce_par + 0.05,
            "XtalkSched CE {ce_xt} should not lose to ParSched {ce_par}"
        );
    }

    #[test]
    fn hidden_shift_error_detects_serialization_cost() {
        let device = Device::poughkeepsie(1);
        let ctx = SchedulerContext::from_ground_truth(&device);
        // Region aligned with the planted (5,10)|(11,12) pair.
        let circuit = hidden_shift(20, &[5, 10, 11, 12], 0b1001, true);
        let serial =
            hidden_shift_error(&device, &ctx, &SerialSched::new(), &circuit, 0b1001, 2048, 5)
                .unwrap();
        let xt =
            hidden_shift_error(&device, &ctx, &XtalkSched::new(0.3), &circuit, 0b1001, 2048, 5)
                .unwrap();
        assert!(serial > 0.0 && serial < 1.0);
        assert!(xt <= serial + 0.05, "xtalk {xt} vs serial {serial}");
    }
}
