//! End-to-end tests of the job service over real TCP sockets.
//!
//! Every test starts its own server on an ephemeral port so tests run in
//! parallel without interference.

use std::sync::{Arc, Barrier};
use std::time::Duration;
use xtalk_serve::json::{obj, Json};
use xtalk_serve::{is_busy, Client, ServeConfig, Server};

const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

fn start(configure: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    Server::start(config).expect("server binds an ephemeral port")
}

fn counts_map(resp: &Json) -> Vec<(String, u64)> {
    match resp.get("counts") {
        Some(Json::Obj(pairs)) => {
            pairs.iter().map(|(k, v)| (k.clone(), v.as_u64().unwrap())).collect()
        }
        other => panic!("no counts object in {other:?}"),
    }
}

#[test]
fn served_run_matches_direct_execution() {
    let server = start(|_| {});
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client.run_qasm(BELL, "poughkeepsie", "par", 512, 9).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());

    // Reproduce the exact pipeline locally: same device seed (the
    // config default), same preparation, same scheduler, same executor
    // seed — the counts must agree bit for bit.
    let device = xtalk_device::Device::poughkeepsie(ServeConfig::default().device_seed);
    let ctx = xtalk_core::SchedulerContext::from_ground_truth(&device);
    let compiler = xtalk_core::Compiler::new(&device, ctx.clone());
    let circuit = xtalk_serve::jobs::prepare_circuit(BELL, &compiler).unwrap();
    let sched = xtalk_serve::jobs::scheduler_by_name("par", 0.5)
        .unwrap()
        .schedule(&circuit, &ctx)
        .unwrap();
    let direct = xtalk_core::pipeline::run_scheduled_opts(
        &device,
        &sched,
        512,
        9,
        &xtalk_core::RunOpts::default(),
    )
    .counts;

    let served = counts_map(&resp);
    assert_eq!(served.iter().map(|(_, n)| n).sum::<u64>(), direct.shots());
    for (bits, n) in &served {
        let outcome = u64::from_str_radix(bits, 2).unwrap();
        assert_eq!(direct.count(outcome), *n, "mismatch at outcome {bits}");
    }

    client.shutdown().unwrap();
    let summary = server.join();
    assert!(summary.contains("jobs ok"), "summary: {summary}");
}

#[test]
fn concurrent_clients_get_identical_deterministic_results() {
    let server = start(|c| c.workers = 4);
    let addr = server.local_addr();
    let barrier = Arc::new(Barrier::new(3));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            barrier.wait();
            client.run_qasm(BELL, "boeblingen", "xtalk", 256, 21).unwrap()
        }));
    }
    let responses: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for resp in &responses {
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        assert_eq!(counts_map(resp), counts_map(&responses[0]), "non-deterministic result");
    }
    // `threads` must not change the counts either.
    let mut client = Client::connect(addr).unwrap();
    let resp = client
        .request(&obj([
            ("type", "run".into()),
            ("qasm", BELL.into()),
            ("device", "boeblingen".into()),
            ("scheduler", "xtalk".into()),
            ("shots", 256u64.into()),
            ("seed", 21u64.into()),
            ("threads", 4u64.into()),
        ]))
        .unwrap();
    assert_eq!(counts_map(&resp), counts_map(&responses[0]));
    server.shutdown();
    server.join();
}

#[test]
fn full_queue_sheds_load_and_recovers() {
    let server = start(|c| {
        c.workers = 1;
        c.queue_cap = 1;
    });
    let addr = server.local_addr();
    let barrier = Arc::new(Barrier::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            barrier.wait();
            client.request(&obj([("type", "sleep".into()), ("ms", 600u64.into())])).unwrap()
        }));
    }
    let responses: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let busy = responses.iter().filter(|r| is_busy(r)).count();
    let ok = responses
        .iter()
        .filter(|r| r.get("ok").and_then(Json::as_bool) == Some(true))
        .count();
    assert!(busy >= 1, "no request was shed: {responses:?}");
    assert!(ok >= 1, "no request got through: {responses:?}");
    assert_eq!(busy + ok, 4);

    // After the backlog drains the server accepts work again and the
    // stats expose the shed requests.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request(&obj([("type", "sleep".into()), ("ms", 1u64.into())])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let stats = client.stats().unwrap();
    assert!(stats.get("busy_rejections").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(
        stats.get("busy_rejections").and_then(Json::as_u64).unwrap() as usize,
        busy
    );
    server.shutdown();
    let summary = server.join();
    assert!(summary.contains("shed"), "summary: {summary}");
}

#[test]
fn characterization_cache_hits_and_drift_invalidation() {
    let server = start(|_| {});
    let mut client = Client::connect(server.local_addr()).unwrap();
    let schedule_req = obj([
        ("type", "schedule".into()),
        ("qasm", BELL.into()),
        ("device", "johannesburg".into()),
        ("scheduler", "xtalk".into()),
        ("policy", "truth".into()),
        ("seed", 5u64.into()),
    ]);

    let first = client.request(&schedule_req).unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true), "{}", first.dump());
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));

    let second = client.request(&schedule_req).unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        first.get("makespan_ns").and_then(Json::as_u64),
        second.get("makespan_ns").and_then(Json::as_u64)
    );

    let stats = client.stats().unwrap();
    assert!(stats.get("cache_hits").and_then(Json::as_u64).unwrap() >= 1);
    assert!(stats.get("cache_misses").and_then(Json::as_u64).unwrap() >= 1);

    // A new calibration day drifts the device and invalidates the cache.
    let epoch = client.advance_day().unwrap();
    assert_eq!(epoch, 1);
    let third = client.request(&schedule_req).unwrap();
    assert_eq!(third.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(third.get("epoch").and_then(Json::as_u64), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn slow_jobs_time_out_without_wedging_the_connection() {
    let server = start(|c| {
        c.job_timeout = Duration::from_millis(100);
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp =
        client.request(&obj([("type", "sleep".into()), ("ms", 800u64.into())])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("timed out"));
    // Connection still serves follow-ups.
    assert!(client.ping().unwrap());
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs_timed_out").and_then(Json::as_u64), Some(1));
    server.shutdown();
    server.join();
}

#[test]
fn malformed_lines_do_not_break_framing() {
    use std::io::{BufRead, BufReader, Write};
    let server = start(|_| {});
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"{this is not json\n{\"type\":\"ping\"}\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let err = Json::parse(line.trim()).unwrap();
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    line.clear();
    reader.read_line(&mut line).unwrap();
    let pong = Json::parse(line.trim()).unwrap();
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
    server.join();
}

#[test]
fn unknown_device_and_scheduler_are_reported() {
    let server = start(|_| {});
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client.run_qasm(BELL, "narnia", "par", 16, 1).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("unknown device"));
    let resp = client.run_qasm(BELL, "poughkeepsie", "warp", 16, 1).unwrap();
    assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("unknown scheduler"));
    server.shutdown();
    server.join();
}
