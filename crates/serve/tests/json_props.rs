//! Property tests for the hand-rolled JSON codec.
//!
//! Two families:
//!
//! * **Round trips** — any generated `Json` value survives
//!   `dump -> parse` bit-for-bit (the writer emits Rust's shortest
//!   float form, which `f64::from_str` recovers exactly), the dump is a
//!   single line (the framing invariant), and dumping is idempotent.
//! * **Malformed input** — truncated frames and a corpus of hostile
//!   documents must return `Err`, never panic. The parser is the first
//!   thing untrusted network bytes hit, so "errors cleanly" is a
//!   security property, not a nicety.

use proptest::prelude::*;
use rand::Rng;
use xtalk_serve::json::JsonError;
use xtalk_serve::Json;

/// Generates an arbitrary `Json` value, depth-limited so documents stay
/// well inside the parser's nesting bound.
#[derive(Clone, Copy, Debug)]
struct ArbJson {
    max_depth: usize,
}

impl proptest::strategy::Strategy for ArbJson {
    type Value = Json;

    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, self.max_depth)
    }
}

fn gen_json(rng: &mut TestRng, depth: usize) -> Json {
    // Leaves only at the depth floor; containers otherwise allowed.
    let top = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 1),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..4);
            Json::Arr((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            Json::Obj((0..n).map(|_| (gen_string(rng), gen_json(rng, depth - 1))).collect())
        }
    }
}

fn gen_number(rng: &mut TestRng) -> f64 {
    match rng.gen_range(0u32..4) {
        // Small and large integers (within exact-f64 range).
        0 => rng.gen_range(-1_000i64..1_000) as f64,
        1 => rng.gen_range(-9_007_199_254_740_992i64..9_007_199_254_740_992) as f64,
        // Dyadic fractions (exact in binary, readable in failures).
        2 => rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0,
        // Anything finite.
        _ => rng.gen_range(-1e30f64..1e30),
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    let n = rng.gen_range(0usize..12);
    (0..n)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => char::from(rng.gen_range(0x20u32..0x7f) as u8), // printable ASCII
            1 => ['"', '\\', '/', '\n', '\r', '\t'][rng.gen_range(0usize..6)],
            2 => char::from(rng.gen_range(0u32..0x20) as u8), // control chars
            3 => char::from_u32(rng.gen_range(0xa0u32..0x2000)).unwrap_or('x'),
            4 => char::from_u32(rng.gen_range(0x2600u32..0x27c0)).unwrap_or('x'), // symbols
            _ => char::from_u32(rng.gen_range(0x1_f300u32..0x1_f600)).unwrap_or('x'), // emoji
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dump_then_parse_roundtrips(v in ArbJson { max_depth: 4 }) {
        let text = v.dump();
        prop_assert!(!text.contains('\n'), "dump broke the one-line framing: {text:?}");
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "reparse failed on {text:?}: {back:?}");
        prop_assert_eq!(back.unwrap(), v);
    }

    #[test]
    fn dump_is_idempotent(v in ArbJson { max_depth: 3 }) {
        let once = v.dump();
        let twice = Json::parse(&once).unwrap().dump();
        prop_assert_eq!(&once, &twice, "dump not canonical");
    }

    #[test]
    fn escape_heavy_strings_roundtrip(s in ArbJson { max_depth: 0 }.prop_map(|v| {
        // Reuse the leaf generator but force the string variant.
        match v { Json::Str(s) => s, other => other.dump() }
    })) {
        let v = Json::Str(s.clone());
        prop_assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn truncated_frames_error_cleanly(
        v in ArbJson { max_depth: 3 },
        cut_frac in 0.0f64..1.0,
    ) {
        // Wrap in an object so the document only balances at its final
        // byte: every strict prefix is then guaranteed-invalid, and the
        // parser must say so via Err — not panic, not hang.
        let text = Json::Obj(vec![("k".to_string(), v)]).dump();
        let mut cut = (text.len() as f64 * cut_frac) as usize;
        while cut < text.len() && !text.is_char_boundary(cut) {
            cut += 1;
        }
        if cut < text.len() {
            let res: Result<Json, JsonError> = Json::parse(&text[..cut]);
            prop_assert!(res.is_err(), "accepted truncated frame {:?}", &text[..cut]);
        }
    }

    #[test]
    fn mutated_frames_never_panic(
        v in ArbJson { max_depth: 2 },
        pos_frac in 0.0f64..1.0,
        junk in 0u32..128,
    ) {
        // Splice one arbitrary ASCII byte into a valid document. The
        // result may or may not parse — either way the parser must
        // return, not panic.
        let mut text = v.dump();
        let mut pos = (text.len() as f64 * pos_frac) as usize;
        while pos < text.len() && !text.is_char_boundary(pos) {
            pos += 1;
        }
        text.insert(pos.min(text.len()), char::from(junk as u8));
        let _ = Json::parse(&text); // must not panic
    }
}

/// Hand-picked hostile frames: every one must error, none may panic.
#[test]
fn malformed_corpus_errors_cleanly() {
    let corpus: &[&str] = &[
        "",
        " ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "[1,]",
        "[,1]",
        "{\"a\":}",
        "{\"a\":1,}",
        "{:1}",
        "{1:2}",
        "{\"a\" 1}",
        "tru",
        "truee",
        "nul",
        "nulll",
        "falsy",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"\\u12\"",
        "\"\\ud800\"",
        "\"\\ud800x\"",
        "\"\\ud800\\u0041\"",
        "\"\\udc00\"",
        "\u{1}",
        "\"raw \u{1} control\"",
        "1 2",
        "[1] []",
        "--1",
        "+1",
        "1..2",
        "1e",
        "NaN",
        "Infinity",
        "-",
        ".5",
        "{\"a\":1}}",
        "[[[" ,
        "\\",
    ];
    for bad in corpus {
        assert!(Json::parse(bad).is_err(), "accepted hostile frame {bad:?}");
    }
    // Nesting bomb: far past MAX_DEPTH, must be rejected without
    // exhausting the stack.
    let bomb = "[".repeat(100_000);
    assert!(Json::parse(&bomb).is_err());
    let balanced_bomb = "[".repeat(5_000) + &"]".repeat(5_000);
    assert!(Json::parse(&balanced_bomb).is_err());
}
