//! Chaos tests: the serve stack under deterministic fault injection.
//!
//! Every test installs a seeded `xtalk-fault` plan, drives the server (or
//! the pool directly) through failures, and asserts the robustness
//! contract: no silent drops, bit-identical results for surviving jobs,
//! explicit flagged degradation, and clean thread teardown.
//!
//! The fault plan is process-global, so the tests serialize on one gate
//! and clear the plan through an RAII guard (even on assertion panic).

use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;
use xtalk_serve::json::{obj, Json};
use xtalk_serve::pool::{Job, Pool, Submit};
use xtalk_serve::protocol::Request;
use xtalk_serve::{Client, RetryPolicy, ServeConfig, ServeState, Server};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a plan for the test body and clears it on drop, so a failing
/// assertion cannot leak faults into the next test.
struct FaultGuard;

impl FaultGuard {
    fn install(spec: &str, seed: u64) -> FaultGuard {
        xtalk_fault::install_spec(spec, seed).expect("valid fault spec");
        FaultGuard
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        xtalk_fault::clear();
    }
}

const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

fn test_config(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 16,
        job_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

fn run_request(seed: u64) -> Json {
    obj([
        ("type", "run".into()),
        ("qasm", BELL.into()),
        ("device", "poughkeepsie".into()),
        ("scheduler", "par".into()),
        ("policy", "truth".into()),
        ("shots", 64u64.into()),
        ("seed", seed.into()),
        ("threads", 1u64.into()),
    ])
}

fn retry_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: 99,
    }
}

/// Collects the counts of several `run` jobs through a retrying client,
/// plus the server's final respawn tally.
fn chaos_run_counts(seeds: &[u64], attempts: u32) -> (Vec<Json>, u64) {
    let server = Server::start(test_config(1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let policy = retry_policy(attempts);
    let counts: Vec<Json> = seeds
        .iter()
        .map(|&seed| {
            let resp = client.request_with_retry(&run_request(seed), &policy).unwrap();
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "job with seed {seed} never completed: {}",
                resp.dump()
            );
            resp.get("counts").cloned().unwrap()
        })
        .collect();
    let respawned = server
        .state()
        .metrics
        .workers_respawned
        .load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();
    let summary = server.join();
    assert!(summary.contains("requests"), "summary must render: {summary}");
    (counts, respawned)
}

/// (a) Worker panics kill jobs mid-flight; retried jobs on respawned
/// workers produce counts bit-identical to a fault-free run, and the
/// whole chaos run replays identically from its seed.
#[test]
fn worker_panics_preserve_determinism() {
    let _gate = gate();
    let seeds = [11u64, 12, 13];
    // Fault-free baseline.
    xtalk_fault::clear();
    let (baseline, respawned) = chaos_run_counts(&seeds, 1);
    assert_eq!(respawned, 0, "baseline must not respawn workers");

    // Chaos: half of all dequeues kill the worker with the job in
    // flight. Fresh plan per run resets the decision stream, so both
    // chaos runs consume identical decisions.
    let chaos = {
        let _faults = FaultGuard::install("pool.job:panic:0.5", 42);
        chaos_run_counts(&seeds, 20)
    };
    let replay = {
        let _faults = FaultGuard::install("pool.job:panic:0.5", 42);
        chaos_run_counts(&seeds, 20)
    };
    assert!(chaos.1 >= 1, "seed 42 at p=0.5 must kill at least one worker");
    assert_eq!(chaos.0, baseline, "surviving jobs must match the fault-free counts");
    assert_eq!(replay.0, chaos.0, "chaos run must replay bit-identically");
    assert_eq!(replay.1, chaos.1, "respawn count must replay too");
}

/// (b) Retry/backoff converges under 20% injected codec read errors:
/// every request eventually gets an answer, through reconnects.
#[test]
fn retries_converge_under_codec_errors() {
    let _gate = gate();
    let _faults = FaultGuard::install("codec.read:err:0.2", 7);
    let server = Server::start(test_config(2)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_io_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30)))
        .unwrap();
    let policy = retry_policy(12);
    for i in 0..12u64 {
        let req = obj([("type", "sleep".into()), ("ms", 1u64.into())]);
        let resp = client
            .request_with_retry(&req, &policy)
            .unwrap_or_else(|e| panic!("request {i} exhausted retries: {e}"));
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed: {}",
            resp.dump()
        );
    }
    xtalk_fault::clear();
    server.shutdown();
    server.join();
}

/// (c) The degradation ladder end to end: a failed rebuild serves the
/// stale last-known-good characterization (flagged), and past the TTL
/// the scheduler degrades to the independent-error model with `par`
/// forced — all as valid, honestly-labelled responses.
#[test]
fn characterization_failure_degrades_gracefully() {
    let _gate = gate();
    let mut config = test_config(1);
    config.stale_ttl_epochs = 2;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Epoch 0: a real characterization, remembered as last-known-good.
    let charac_req = obj([
        ("type", "characterize".into()),
        ("device", "poughkeepsie".into()),
        ("policy", "binpacked".into()),
        ("seed", 7u64.into()),
        ("seqs", 1u64.into()),
        ("shots", 32u64.into()),
    ]);
    let resp = client.request(&charac_req).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("degraded"), None);

    // Epoch 1: every rebuild fails; characterize and schedule both ride
    // the stale rung, flagged with the old epoch.
    client.advance_day().unwrap();
    let _faults = FaultGuard::install("charac.run:err:1.0,cache.lookup:err:0.0", 1);
    let resp = client.request(&charac_req).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("degraded").and_then(Json::as_str), Some("stale_characterization"));
    assert_eq!(resp.get("charac_epoch").and_then(Json::as_u64), Some(0));

    let sched_req = obj([
        ("type", "schedule".into()),
        ("qasm", BELL.into()),
        ("device", "poughkeepsie".into()),
        ("scheduler", "xtalk".into()),
        ("policy", "binpacked".into()),
        ("seed", 7u64.into()),
    ]);
    let resp = client.request(&sched_req).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("degraded").and_then(Json::as_str), Some("stale_characterization"));
    assert!(resp.get("makespan_ns").and_then(Json::as_u64).unwrap() > 0);

    // Epochs 2-3: past the TTL the last-known-good is refused and the
    // scheduler falls to the independent-error model with `par` forced.
    client.advance_day().unwrap();
    client.advance_day().unwrap();
    let resp = client.request(&sched_req).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("degraded").and_then(Json::as_str), Some("independent_fallback"));
    assert_eq!(resp.get("scheduler").and_then(Json::as_str), Some("ParSched"));
    assert!(resp.get("makespan_ns").and_then(Json::as_u64).unwrap() > 0);

    let stats = client.stats().unwrap();
    assert!(stats.get("degraded_stale").and_then(Json::as_u64).unwrap() >= 1);
    assert!(stats.get("degraded_independent").and_then(Json::as_u64).unwrap() >= 1);
    assert!(stats.get("charac_failures").and_then(Json::as_u64).unwrap() >= 2);

    xtalk_fault::clear();
    server.shutdown();
    server.join();
}

/// (d) Satellite 2 at the pool level: shutdown with a poisoned queue
/// quarantines the in-flight job and answers the rest explicitly —
/// nothing is silently dropped, and no thread is left alive.
#[test]
fn shutdown_drains_with_explicit_responses() {
    let _gate = gate();
    xtalk_fault::clear();
    let state = ServeState::new(ServeConfig::default());
    let pool = Pool::new(1, 8, state.clone());
    let handle = pool.handle();

    // j1 occupies the single worker; j2 and j3 queue behind it.
    let (tx1, rx1) = mpsc::channel();
    let (tx2, rx2) = mpsc::channel();
    let (tx3, rx3) = mpsc::channel();
    state.metrics.job_enqueued();
    assert_eq!(
        handle.try_submit(Job::new(Request::Sleep { ms: 400 }, tx1)),
        Submit::Accepted
    );
    // Give the worker time to dequeue j1 *before* the fault plan lands
    // (its `pool.job` crossing must not fire).
    std::thread::sleep(Duration::from_millis(100));
    let _faults = FaultGuard::install("pool.job:panic:1.0", 5);
    for tx in [tx2, tx3] {
        state.metrics.job_enqueued();
        assert_eq!(
            handle.try_submit(Job::new(Request::Sleep { ms: 1 }, tx)),
            Submit::Accepted
        );
    }

    // Stop sentinels queue behind j2/j3; the worker finishes j1, dies on
    // j2 (quarantining it), is not respawned (stopping), and the drain
    // answers j3. `shutdown` returning proves every thread was joined.
    pool.shutdown();

    let r1 = rx1.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true), "{}", r1.dump());
    let r2 = rx2.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(r2.get("quarantined").and_then(Json::as_bool), Some(true), "{}", r2.dump());
    let r3 = rx3.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(r3.get("shutting_down").and_then(Json::as_bool), Some(true), "{}", r3.dump());
    for r in [&r2, &r3] {
        assert_eq!(r.get("retryable").and_then(Json::as_bool), Some(true));
    }

    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(load(&state.metrics.jobs_quarantined), 1);
    assert_eq!(load(&state.metrics.jobs_drained), 1);
    assert_eq!(load(&state.metrics.queue_depth), 0, "gauge must return to zero");

    // New submissions are refused explicitly.
    let (tx4, _rx4) = mpsc::channel();
    assert_eq!(
        handle.try_submit(Job::new(Request::Sleep { ms: 1 }, tx4)),
        Submit::ShuttingDown
    );
}

/// (g) Acceptance smoke: a mixed plan at the issue's rates (>=1% worker
/// panics, 5% codec errors) across every job kind — each submission
/// completes with an explicit outcome, and the server tears down clean
/// while faults are still active.
#[test]
fn mixed_fault_plan_leaves_no_silent_drops() {
    let _gate = gate();
    let _faults = FaultGuard::install("pool.job:panic:0.02,codec.read:err:0.05", 1234);
    let server = Server::start(test_config(2)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let policy = retry_policy(15);
    let requests: Vec<Json> = vec![
        obj([("type", "ping".into())]),
        obj([("type", "sleep".into()), ("ms", 1u64.into())]),
        run_request(21),
        obj([
            ("type", "characterize".into()),
            ("device", "boeblingen".into()),
            ("policy", "truth".into()),
            ("seed", 3u64.into()),
        ]),
        obj([
            ("type", "schedule".into()),
            ("qasm", BELL.into()),
            ("device", "johannesburg".into()),
            ("scheduler", "xtalk".into()),
            ("policy", "truth".into()),
            ("seed", 3u64.into()),
        ]),
        obj([("type", "stats".into())]),
    ];
    for (i, req) in requests.iter().enumerate() {
        let resp = client
            .request_with_retry(req, &policy)
            .unwrap_or_else(|e| panic!("request {i} got no explicit outcome: {e}"));
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed: {}",
            resp.dump()
        );
    }
    // Shut down from the server handle (not the faulty connection) and
    // join: returning proves the acceptor, every connection thread
    // spawned, the supervisor, and all workers (dead or alive) are gone.
    server.shutdown();
    let summary = server.join();
    assert!(summary.contains("requests"), "{summary}");
}
