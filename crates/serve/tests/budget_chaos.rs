//! Budget chaos tests: end-to-end deadlines under deterministic fault
//! injection.
//!
//! The acceptance contract of the deadline work, proven over a real
//! server with `sim.batch` delay faults stalling the executor:
//!
//! * a job whose budget is smaller than its runtime answers a flagged
//!   partial (`budget_exhausted`) well before ~2x its deadline, on a
//!   worker that survives and is immediately reusable (no respawn);
//! * partial counts are a *prefix*: bit-identical to a fresh run of
//!   exactly `shots_completed` shots, and the whole chaos run replays
//!   bit-identically from its fault seed;
//! * `cancel` reaches an in-flight job by label and the submitter gets
//!   a flagged partial with progress provenance;
//! * under saturation, short-deadline requests are refused at admission
//!   (retryable) while ample-deadline requests still run — and the
//!   metrics account for every job (zero silent drops).
//!
//! The fault plan is process-global, so tests serialize on one gate and
//! clear the plan through an RAII guard (idiom shared with `chaos.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use xtalk_serve::json::{obj, Json};
use xtalk_serve::{Client, ServeConfig, Server};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

struct FaultGuard;

impl FaultGuard {
    fn install(spec: &str, seed: u64) -> FaultGuard {
        xtalk_fault::install_spec(spec, seed).expect("valid fault spec");
        FaultGuard
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        xtalk_fault::clear();
    }
}

const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

fn test_config(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 16,
        job_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

/// A `run` request (optionally budgeted/labelled): `truth` policy so no
/// characterization shots compete with the executor for `sim.batch`
/// crossings, one executor thread so batch claiming is strictly ordered.
fn run_request(shots: u64, seed: u64, deadline_ms: Option<u64>, job: Option<&str>) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::from("run")),
        ("qasm".to_string(), BELL.into()),
        ("device".to_string(), "poughkeepsie".into()),
        ("scheduler".to_string(), "par".into()),
        ("policy".to_string(), "truth".into()),
        ("shots".to_string(), shots.into()),
        ("seed".to_string(), seed.into()),
        ("threads".to_string(), 1u64.into()),
    ];
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".to_string(), ms.into()));
    }
    if let Some(label) = job {
        fields.push(("job".to_string(), label.into()));
    }
    Json::Obj(fields)
}

fn load(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// One budget-chaos episode: a 450 ms-per-batch delay against a 400 ms
/// deadline, so exactly one 64-shot batch completes before the budget
/// trips. Returns (response, elapsed, respawned, partials).
fn expired_run_episode(seed: u64) -> (Json, Duration, u64, u64) {
    let _faults = FaultGuard::install("sim.batch:delay:1.0:450", 9);
    let server = Server::start(test_config(1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let started = Instant::now();
    let resp = client.request(&run_request(256, seed, Some(400), None)).unwrap();
    let elapsed = started.elapsed();

    // The worker that just expired must be immediately reusable: the very
    // next job on the same (only) worker completes normally.
    assert!(client.ping().unwrap());
    let again = client
        .request(&obj([("type", "sleep".into()), ("ms", 1u64.into())]))
        .unwrap();
    assert_eq!(again.get("ok").and_then(Json::as_bool), Some(true), "{}", again.dump());

    let respawned = load(&server.state().metrics.workers_respawned);
    let partials = load(&server.state().metrics.partial_results);
    server.shutdown();
    server.join();
    (resp, elapsed, respawned, partials)
}

/// (a) Deadline smaller than runtime: flagged partial before ~2x the
/// deadline, no respawn, worker reused — and the partial's counts equal
/// a fresh, unbudgeted run of exactly `shots_completed` shots.
#[test]
fn expired_deadline_returns_prefix_partial_fast_without_respawn() {
    let _gate = gate();
    let (resp, elapsed, respawned, partials) = expired_run_episode(77);

    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("budget_reason").and_then(Json::as_str), Some("deadline"));
    let completed = resp.get("shots_completed").and_then(Json::as_u64).unwrap();
    assert_eq!(completed, 64, "450ms delay vs 400ms budget admits exactly one batch");
    assert_eq!(resp.get("shots_requested").and_then(Json::as_u64), Some(256));
    assert!(
        elapsed < Duration::from_millis(800),
        "partial must arrive before ~2x the 400ms deadline, took {elapsed:?}"
    );
    assert_eq!(respawned, 0, "budget expiry is cooperative — no worker died");
    assert_eq!(partials, 1, "the flagged partial must be counted");

    // Prefix determinism: a fault-free run of exactly `completed` shots
    // reproduces the partial's counts bit-for-bit.
    xtalk_fault::clear();
    let server = Server::start(test_config(1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fresh = client.request(&run_request(completed, 77, None, None)).unwrap();
    assert_eq!(fresh.get("ok").and_then(Json::as_bool), Some(true), "{}", fresh.dump());
    assert_eq!(fresh.get("budget_exhausted"), None);
    assert_eq!(
        resp.get("counts"),
        fresh.get("counts"),
        "partial counts must be the exact {completed}-shot prefix"
    );
    server.shutdown();
    server.join();
}

/// (b) The whole chaos episode replays bit-identically from its fault
/// seed: same flagged response, same provenance, same counts.
#[test]
fn expired_deadline_episode_replays_bit_identically() {
    let _gate = gate();
    let (first, _, _, _) = expired_run_episode(31);
    let (second, _, _, _) = expired_run_episode(31);
    assert_eq!(first.get("counts"), second.get("counts"));
    assert_eq!(first.get("shots_completed"), second.get("shots_completed"));
    assert_eq!(first.get("budget_exhausted"), second.get("budget_exhausted"));
    assert_eq!(first.get("budget_reason"), second.get("budget_reason"));
}

/// (c) `cancel` by label reaches an in-flight job: the submitter gets a
/// flagged partial with progress provenance, and the cancel is counted.
#[test]
fn cancel_interrupts_an_inflight_job_with_a_flagged_partial() {
    let _gate = gate();
    xtalk_fault::clear();
    let server = Server::start(test_config(1)).unwrap();
    let addr = server.local_addr();

    // The victim: a 30s sleep labelled for cancellation, submitted from
    // its own thread because the client API is synchronous.
    let victim = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&obj([
                ("type", "sleep".into()),
                ("ms", 30_000u64.into()),
                ("job", "victim".into()),
            ]))
            .unwrap()
    });

    // Give the job time to be admitted and start sleeping, then cancel.
    let mut canceller = Client::connect(addr).unwrap();
    let started = Instant::now();
    let cancelled = loop {
        if canceller.cancel("victim").unwrap() {
            break true;
        }
        if started.elapsed() > Duration::from_secs(10) {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(cancelled, "the labelled job must be reachable by cancel");

    let resp = victim.join().unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
    assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("budget_reason").and_then(Json::as_str), Some("cancelled"));
    let slept = resp.get("slept_ms").and_then(Json::as_u64).unwrap();
    assert!(slept < 30_000, "the sleep must have been cut short, slept {slept}ms");

    assert_eq!(load(&server.state().metrics.jobs_cancelled), 1);
    assert_eq!(load(&server.state().metrics.partial_results), 1);
    server.shutdown();
    server.join();
}

/// (d) Admission control under saturation: after a queue backlog pushes
/// the observed queue-wait p90 up, a short-deadline request is refused
/// up front (retryable, explicit) while an ample-deadline request still
/// runs — and every submitted job is accounted for in the metrics.
#[test]
fn saturation_rejects_short_deadlines_at_admission_with_full_accounting() {
    let _gate = gate();
    xtalk_fault::clear();
    let server = Server::start(test_config(1)).unwrap();
    let addr = server.local_addr();

    // Saturate the single worker: four concurrent 250ms sleeps, three of
    // which must queue — their dequeues record queue waits >= 250ms.
    let sleepers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .request(&obj([("type", "sleep".into()), ("ms", 250u64.into())]))
                    .unwrap()
            })
        })
        .collect();
    let mut ok_jobs = 0u64;
    for sleeper in sleepers {
        let resp = sleeper.join().unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        ok_jobs += 1;
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let p90 = stats.get("queue_wait_p90_ms").and_then(Json::as_u64).unwrap();
    assert!(p90 >= 250, "three jobs queued behind 250ms sleeps, p90 was {p90}ms");

    // A deadline below the observed wait can only come back expired —
    // the server refuses it before it wastes a worker.
    let rejected = client.request(&run_request(64, 7, Some(10), None)).unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(rejected.get("rejected_admission").and_then(Json::as_bool), Some(true));
    assert_eq!(rejected.get("retryable").and_then(Json::as_bool), Some(true));
    assert!(rejected.get("queue_wait_p90_ms").and_then(Json::as_u64).unwrap() >= 250);

    // An ample deadline clears admission and completes normally.
    let admitted = client.request(&run_request(64, 7, Some(60_000), None)).unwrap();
    assert_eq!(admitted.get("ok").and_then(Json::as_bool), Some(true), "{}", admitted.dump());
    assert_eq!(admitted.get("budget_exhausted"), None);
    ok_jobs += 1;

    // Zero silent drops: every submission is either served or explicitly
    // rejected, and the counters add up.
    let metrics = &server.state().metrics;
    assert_eq!(load(&metrics.jobs_ok), ok_jobs);
    assert_eq!(load(&metrics.rejected_admission), 1);
    assert_eq!(load(&metrics.jobs_failed), 0);
    assert_eq!(load(&metrics.jobs_quarantined), 0);
    assert_eq!(load(&metrics.queue_depth), 0, "gauge must return to zero");

    server.shutdown();
    let summary = server.join();
    assert!(summary.contains("admission-rejected"), "{summary}");
}
