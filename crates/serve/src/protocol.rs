//! Wire protocol: line-delimited JSON requests and responses.
//!
//! Every frame is one JSON document followed by `\n`. Requests are
//! objects with a `"type"` discriminator; responses always carry an
//! `"ok"` boolean, plus `"error"` when `ok` is false.
//!
//! # Error taxonomy
//!
//! Failure responses fall into two classes, distinguished by a
//! `"retryable"` flag so clients can decide mechanically:
//!
//! * **Retryable** — transient server conditions a backoff-and-retry is
//!   expected to clear: `"busy": true` (queue full), `"shutting_down":
//!   true` (drained at shutdown), `"quarantined": true` (the worker
//!   executing the job died; a respawned worker can take the retry), and
//!   caught job panics. All carry `"retryable": true`.
//! * **Fatal** — the request itself is wrong (unknown device, bad QASM,
//!   unparseable frame); retrying the same bytes cannot succeed. These
//!   omit the flag ([`is_retryable`] reads that as `false`).
//!
//! The codec functions [`read_frame`]/[`write_frame`] carry the
//! `codec.read`/`codec.write` fault-injection points; an injected fault
//! surfaces as [`io::ErrorKind::ConnectionReset`], exactly like a peer
//! vanishing mid-frame.
//!
//! # Budget envelope
//!
//! Any heavy request may additionally carry a [`JobEnvelope`]:
//! `"deadline_ms"` (an end-to-end budget measured from arrival, queue
//! wait included) and `"job"` (a client-chosen label a later
//! `{"type":"cancel","job":...}` can name). Deadline-bounded requests
//! whose budget expires mid-job come back `ok: true` with
//! `"budget_exhausted": true` plus provenance (`shots_completed`,
//! `leaves`, `slept_ms`, ...) describing the best-effort partial result.
//! Requests refused on arrival because the observed queue wait already
//! exceeds their budget get [`rejected_admission_response`] (retryable).

use crate::json::{obj, Json};
use std::io::{self, BufRead, Read, Write};

/// Upper bound on one frame, to keep a misbehaving peer from ballooning
/// memory. Generous enough for any QASM payload this toolchain emits.
pub const MAX_FRAME_BYTES: u64 = 8 * 1024 * 1024;

/// A decoded job request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Metrics snapshot.
    Stats,
    /// Graceful server shutdown.
    Shutdown,
    /// Advances the simulated calibration day: drifts every device's
    /// calibration and invalidates the characterization cache.
    AdvanceDay {
        /// Drift seed (deterministic drift per day).
        seed: u64,
    },
    /// Sleeps on a worker for `ms` milliseconds — a deterministic stand-in
    /// for a slow job, used to exercise backpressure and timeouts.
    Sleep {
        /// How long to hold the worker.
        ms: u64,
    },
    /// Runs (or fetches from cache) a crosstalk characterization.
    Characterize {
        /// Device name (`poughkeepsie` | `johannesburg` | `boeblingen`).
        device: String,
        /// Policy name (`truth` | `all` | `onehop` | `binpacked`).
        policy: String,
        /// RB seed (part of the cache key).
        seed: u64,
        /// Random sequences per RB length.
        seqs: usize,
        /// Shots per RB circuit.
        shots: u64,
    },
    /// Schedules a QASM circuit and reports the schedule.
    Schedule {
        /// Device name.
        device: String,
        /// OpenQASM 2.0 source.
        qasm: String,
        /// Scheduler (`xtalk` | `par` | `serial`).
        scheduler: String,
        /// XtalkSched's crosstalk/decoherence weight ω.
        omega: f64,
        /// Characterization policy feeding the scheduler.
        policy: String,
        /// Characterization seed (cache key).
        seed: u64,
    },
    /// Schedules and executes a QASM circuit, returning counts.
    Run {
        /// Device name.
        device: String,
        /// OpenQASM 2.0 source.
        qasm: String,
        /// Scheduler (`xtalk` | `par` | `serial`).
        scheduler: String,
        /// XtalkSched's ω.
        omega: f64,
        /// Characterization policy feeding the scheduler.
        policy: String,
        /// Trajectories to sample.
        shots: u64,
        /// Executor base seed.
        seed: u64,
        /// Executor threads (0 = all available parallelism).
        threads: usize,
    },
    /// Cancels an in-flight (queued or running) job by its client-chosen
    /// `"job"` label, tripping the cancel token its budget polls.
    Cancel {
        /// The label the job was submitted with.
        job: String,
    },
    /// The SWAP-circuit benchmark between two qubits, comparing all three
    /// schedulers (the paper's Figure 5 demo).
    SwapDemo {
        /// Device name.
        device: String,
        /// Source qubit.
        from: u32,
        /// Destination qubit.
        to: u32,
        /// Shots per tomography basis.
        shots: u64,
        /// Base seed.
        seed: u64,
    },
}

impl Request {
    /// Decodes a request object, validating the `"type"` discriminator.
    pub fn parse(v: &Json) -> Result<Request, String> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request needs a string `type` field")?;
        let str_field = |key: &str, default: &str| -> String {
            v.get(key).and_then(Json::as_str).unwrap_or(default).to_string()
        };
        let u64_field = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(x) => x.as_u64().ok_or(format!("`{key}` must be a non-negative integer")),
            }
        };
        let f64_field = |key: &str, default: f64| -> Result<f64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(x) => x.as_f64().ok_or(format!("`{key}` must be a number")),
            }
        };
        match kind {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "advance_day" => Ok(Request::AdvanceDay { seed: u64_field("seed", 1)? }),
            "sleep" => Ok(Request::Sleep { ms: u64_field("ms", 10)?.min(60_000) }),
            "characterize" => Ok(Request::Characterize {
                device: str_field("device", "poughkeepsie"),
                policy: str_field("policy", "binpacked"),
                seed: u64_field("seed", 7)?,
                seqs: u64_field("seqs", 3)? as usize,
                shots: u64_field("shots", 96)?,
            }),
            "schedule" => Ok(Request::Schedule {
                device: str_field("device", "poughkeepsie"),
                qasm: v
                    .get("qasm")
                    .and_then(Json::as_str)
                    .ok_or("`schedule` needs a `qasm` string")?
                    .to_string(),
                scheduler: str_field("scheduler", "xtalk"),
                omega: f64_field("omega", 0.5)?,
                policy: str_field("policy", "truth"),
                seed: u64_field("seed", 7)?,
            }),
            "run" => Ok(Request::Run {
                device: str_field("device", "poughkeepsie"),
                qasm: v
                    .get("qasm")
                    .and_then(Json::as_str)
                    .ok_or("`run` needs a `qasm` string")?
                    .to_string(),
                scheduler: str_field("scheduler", "xtalk"),
                omega: f64_field("omega", 0.5)?,
                policy: str_field("policy", "truth"),
                shots: u64_field("shots", 2048)?,
                seed: u64_field("seed", 7)?,
                threads: u64_field("threads", 0)? as usize,
            }),
            "cancel" => Ok(Request::Cancel {
                job: v
                    .get("job")
                    .and_then(Json::as_str)
                    .ok_or("`cancel` needs a `job` string")?
                    .to_string(),
            }),
            "swap_demo" => Ok(Request::SwapDemo {
                device: str_field("device", "poughkeepsie"),
                from: u64_field("from", 0)? as u32,
                to: u64_field("to", 13)? as u32,
                shots: u64_field("shots", 256)?,
                seed: u64_field("seed", 42)?,
            }),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Stable label used for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::AdvanceDay { .. } => "advance_day",
            Request::Sleep { .. } => "sleep",
            Request::Characterize { .. } => "characterize",
            Request::Schedule { .. } => "schedule",
            Request::Run { .. } => "run",
            Request::Cancel { .. } => "cancel",
            Request::SwapDemo { .. } => "swap_demo",
        }
    }

    /// `true` if the request must go through the worker pool (may take
    /// seconds); light requests are answered on the connection thread.
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            Request::Sleep { .. }
                | Request::Characterize { .. }
                | Request::Schedule { .. }
                | Request::Run { .. }
                | Request::SwapDemo { .. }
        )
    }
}

/// Budget/cancellation envelope accepted alongside any heavy request,
/// parsed separately from the request body so every job type carries it
/// uniformly (see the module docs).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct JobEnvelope {
    /// End-to-end deadline in milliseconds, measured from request
    /// arrival — queue wait counts against it.
    pub deadline_ms: Option<u64>,
    /// Client-chosen label a `cancel` request can name while the job is
    /// queued or running. Labels are expected to be unique among
    /// in-flight jobs; a duplicate simply retargets `cancel` at the
    /// newest holder.
    pub job: Option<String>,
}

impl JobEnvelope {
    /// Decodes the envelope fields from a request object. Absent fields
    /// are fine; present fields must be well-typed.
    pub fn parse(v: &Json) -> Result<JobEnvelope, String> {
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(x) => {
                Some(x.as_u64().ok_or("`deadline_ms` must be a non-negative integer")?)
            }
        };
        let job = match v.get("job") {
            None => None,
            Some(x) => Some(x.as_str().ok_or("`job` must be a string")?.to_string()),
        };
        Ok(JobEnvelope { deadline_ms, job })
    }
}

/// A successful response carrying extra fields.
pub fn ok_response<const N: usize>(fields: [(&str, Json); N]) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs)
}

/// A fatal failure response: the request itself cannot succeed.
pub fn err_response(message: impl Into<String>) -> Json {
    obj([("ok", false.into()), ("error", Json::Str(message.into()))])
}

/// A retryable failure response: a transient server condition.
pub fn retryable_err_response(message: impl Into<String>) -> Json {
    obj([
        ("ok", false.into()),
        ("retryable", true.into()),
        ("error", Json::Str(message.into())),
    ])
}

/// The backpressure response: queue full, try again later.
pub fn busy_response() -> Json {
    obj([
        ("ok", false.into()),
        ("busy", true.into()),
        ("retryable", true.into()),
        ("error", "server busy: job queue full".into()),
    ])
}

/// The shutdown response: the job was accepted but the pool is draining;
/// resubmit elsewhere (or to the restarted server).
pub fn shutting_down_response() -> Json {
    obj([
        ("ok", false.into()),
        ("shutting_down", true.into()),
        ("retryable", true.into()),
        ("error", "server shutting down: job not executed".into()),
    ])
}

/// The admission-control rejection: the queue's observed wait already
/// exceeds the request's deadline, so executing it could only yield an
/// expired result. Retryable — the queue may drain, or the client can
/// resubmit with a larger budget.
pub fn rejected_admission_response(deadline_ms: u64, wait_p90_ms: u64) -> Json {
    obj([
        ("ok", false.into()),
        ("rejected_admission", true.into()),
        ("retryable", true.into()),
        ("deadline_ms", deadline_ms.into()),
        ("queue_wait_p90_ms", wait_p90_ms.into()),
        (
            "error",
            Json::Str(format!(
                "admission control: observed queue wait (p90 {wait_p90_ms} ms) \
                 already exceeds the {deadline_ms} ms deadline"
            )),
        ),
    ])
}

/// The quarantine response: the worker executing this job died; the job
/// is *not* silently retried server-side (it may be the poison that
/// killed the worker) but a client retry lands on a fresh worker.
pub fn quarantined_response(kind: &str, reason: &str) -> Json {
    obj([
        ("ok", false.into()),
        ("quarantined", true.into()),
        ("retryable", true.into()),
        ("error", Json::Str(format!("worker died executing `{kind}` job: {reason}"))),
    ])
}

/// `true` if a failure response is flagged as retryable. Successful
/// responses are never retryable.
pub fn is_retryable(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(false)
        && resp.get("retryable").and_then(Json::as_bool) == Some(true)
}

/// Writes one frame. Carries the `codec.write` injection point.
pub fn write_frame(w: &mut impl Write, v: &Json) -> io::Result<()> {
    if let Some(msg) = xtalk_fault::fire("codec.write") {
        return Err(io::Error::new(io::ErrorKind::ConnectionReset, msg));
    }
    let mut line = v.dump();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF; malformed JSON is an
/// `InvalidData` error (the line framing survives, so the connection can
/// keep going). Carries the `codec.read` injection point.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    if let Some(msg) = xtalk_fault::fire("codec.read") {
        return Err(io::Error::new(io::ErrorKind::ConnectionReset, msg));
    }
    let mut line = String::new();
    let n = r.by_ref().take(MAX_FRAME_BYTES).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n as u64 >= MAX_FRAME_BYTES && !line.ends_with('\n') {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        // Tolerate blank keep-alive lines.
        return read_frame(r);
    }
    Json::parse(trimmed)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_request_with_defaults() {
        let v = Json::parse(r#"{"type":"run","qasm":"OPENQASM 2.0;"}"#).unwrap();
        let req = Request::parse(&v).unwrap();
        match req {
            Request::Run { device, scheduler, shots, threads, .. } => {
                assert_eq!(device, "poughkeepsie");
                assert_eq!(scheduler, "xtalk");
                assert_eq!(shots, 2048);
                assert_eq!(threads, 0);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            r#"{"no_type":1}"#,
            r#"{"type":"frobnicate"}"#,
            r#"{"type":"run"}"#,
            r#"{"type":"sleep","ms":-3}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::parse(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn heavy_classification() {
        assert!(!Request::Ping.is_heavy());
        assert!(!Request::Stats.is_heavy());
        assert!(!Request::Cancel { job: "j".into() }.is_heavy());
        assert!(Request::Sleep { ms: 1 }.is_heavy());
    }

    #[test]
    fn envelope_parses_and_validates() {
        let v = Json::parse(r#"{"type":"run","qasm":"x","deadline_ms":250,"job":"bell-1"}"#)
            .unwrap();
        let env = JobEnvelope::parse(&v).unwrap();
        assert_eq!(env.deadline_ms, Some(250));
        assert_eq!(env.job.as_deref(), Some("bell-1"));
        // Absent fields are fine.
        let bare = Json::parse(r#"{"type":"ping"}"#).unwrap();
        assert_eq!(JobEnvelope::parse(&bare).unwrap(), JobEnvelope::default());
        // Mis-typed fields are loud.
        let bad = Json::parse(r#"{"deadline_ms":"soon"}"#).unwrap();
        assert!(JobEnvelope::parse(&bad).is_err());
        let bad = Json::parse(r#"{"job":3}"#).unwrap();
        assert!(JobEnvelope::parse(&bad).is_err());
    }

    #[test]
    fn cancel_request_needs_a_job_label() {
        let v = Json::parse(r#"{"type":"cancel","job":"bell-1"}"#).unwrap();
        assert_eq!(Request::parse(&v).unwrap(), Request::Cancel { job: "bell-1".into() });
        let v = Json::parse(r#"{"type":"cancel"}"#).unwrap();
        assert!(Request::parse(&v).is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let v = ok_response([("answer", 42u64.into())]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &busy_response()).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        let busy = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(busy.get("busy").and_then(Json::as_bool), Some(true));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let buf = b"\n  \n{\"type\":\"ping\"}\n".to_vec();
        let mut r = std::io::BufReader::new(&buf[..]);
        let v = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("ping"));
    }

    #[test]
    fn taxonomy_separates_retryable_from_fatal() {
        assert!(is_retryable(&busy_response()));
        assert!(is_retryable(&shutting_down_response()));
        assert!(is_retryable(&rejected_admission_response(50, 120)));
        assert!(is_retryable(&quarantined_response("run", "injected")));
        assert!(is_retryable(&retryable_err_response("worker hiccup")));
        assert!(!is_retryable(&err_response("unknown device")));
        assert!(!is_retryable(&ok_response([])));
        let q = quarantined_response("run", "boom");
        assert!(q.get("error").and_then(Json::as_str).unwrap().contains("`run`"));
        assert_eq!(
            shutting_down_response().get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn malformed_frame_is_invalid_data() {
        let buf = b"{nope\n".to_vec();
        let mut r = std::io::BufReader::new(&buf[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
