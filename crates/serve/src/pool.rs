//! Fixed worker pool with a bounded queue and explicit backpressure.

use crate::jobs;
use crate::json::Json;
use crate::protocol::{err_response, Request};
use crate::state::ServeState;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work: the decoded request plus the channel the connection
/// thread is waiting on.
pub struct Job {
    /// The request to execute.
    pub request: Request,
    /// Where the response goes; the send is allowed to fail (the caller
    /// may have timed out and hung up).
    pub reply: mpsc::Sender<Json>,
}

/// What flows through the queue: work, or a stop sentinel consumed by
/// exactly one worker during shutdown.
pub enum WorkItem {
    /// A request to execute.
    Job(Job),
    /// Terminate the receiving worker.
    Stop,
}

/// A fixed set of worker threads pulling jobs from one bounded channel.
pub struct Pool {
    tx: SyncSender<WorkItem>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads with room for `queue_cap` waiting jobs.
    pub fn new(workers: usize, queue_cap: usize, state: Arc<ServeState>) -> Pool {
        let (tx, rx) = mpsc::sync_channel::<WorkItem>(queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("xtalk-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool { tx, workers }
    }

    /// A submission handle for connection threads.
    pub fn sender(&self) -> SyncSender<WorkItem> {
        self.tx.clone()
    }

    /// Drains queued jobs, then stops and joins the workers. One `Stop`
    /// per worker is queued *behind* any outstanding work (blocking on
    /// queue space), so accepted jobs still complete. Lingering
    /// connection threads may hold sender clones; their submissions after
    /// this simply never get picked up, which is fine — the server only
    /// shuts the pool down on its way out of the process.
    pub fn shutdown(self) {
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(WorkItem::Stop);
        }
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Outcome of a non-blocking submission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Submit {
    /// Job accepted into the queue.
    Accepted,
    /// Queue full — the caller should answer busy.
    Full,
    /// The pool is shut down.
    Disconnected,
}

/// Submits without blocking.
pub fn try_submit(tx: &SyncSender<WorkItem>, job: Job) -> Submit {
    match tx.try_send(WorkItem::Job(job)) {
        Ok(()) => Submit::Accepted,
        Err(TrySendError::Full(_)) => Submit::Full,
        Err(TrySendError::Disconnected(_)) => Submit::Disconnected,
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<WorkItem>>>, state: &Arc<ServeState>) {
    loop {
        // Hold the lock only for the dequeue, not the job.
        let job = match rx.lock().unwrap().recv() {
            Ok(WorkItem::Job(job)) => job,
            Ok(WorkItem::Stop) | Err(_) => return,
        };
        let start = Instant::now();
        let response = {
            // Per-job span: formats the path only when profiling is on.
            let _job_span = if xtalk_obs::enabled() {
                Some(xtalk_obs::span(&format!("serve.job.{}", job.request.kind())))
            } else {
                None
            };
            catch_unwind(AssertUnwindSafe(|| jobs::handle(state, &job.request)))
                .unwrap_or_else(|panic| {
                    err_response(format!("job panicked: {}", panic_text(&panic)))
                })
        };
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        state.metrics.job_finished(start.elapsed().as_micros() as u64, ok);
        let _ = job.reply.send(response);
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;
    use std::time::Duration;

    fn sleep_job(ms: u64, reply: mpsc::Sender<Json>) -> Job {
        Job { request: Request::Sleep { ms }, reply }
    }

    #[test]
    fn executes_jobs_and_counts_latency() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(2, 4, state.clone());
        let (tx, rx) = mpsc::channel();
        state.metrics.job_enqueued();
        assert_eq!(try_submit(&pool.sender(), sleep_job(1, tx)), Submit::Accepted);
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        pool.shutdown();
        assert_eq!(state.metrics.jobs_ok.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_reports_backpressure() {
        let state = ServeState::new(ServeConfig::default());
        // One worker, queue of one: the third submission must shed.
        let pool = Pool::new(1, 1, state.clone());
        let sender = pool.sender();
        let (tx, rx) = mpsc::channel();
        // Submit back-to-back until the bounded queue sheds: the worker
        // needs 200 ms per job, the submissions are instantaneous, so
        // only worker + queue slot (≈2) can be accepted.
        let mut accepted = 0;
        let mut shed = false;
        for _ in 0..10 {
            match try_submit(&sender, sleep_job(200, tx.clone())) {
                Submit::Accepted => accepted += 1,
                Submit::Full => {
                    shed = true;
                    break;
                }
                Submit::Disconnected => panic!("pool disconnected"),
            }
        }
        assert!(shed, "bounded queue never filled after {accepted} accepts");
        assert!((1..=3).contains(&accepted), "accepted {accepted}");
        // Accepted jobs still complete.
        drop(tx);
        drop(sender);
        for _ in 0..accepted {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        }
        pool.shutdown();
    }

    #[test]
    fn panicking_job_yields_error_response() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(1, 2, state.clone());
        let (tx, rx) = mpsc::channel();
        state.metrics.job_enqueued();
        // `Stats` is a light request; handing it to the pool is a coding
        // error that `jobs::handle` turns into an error response (not a
        // panic) — exercise the error path end to end.
        assert_eq!(
            try_submit(&pool.sender(), Job { request: Request::Stats, reply: tx }),
            Submit::Accepted
        );
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        pool.shutdown();
    }
}
