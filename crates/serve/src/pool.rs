//! Supervised worker pool with a bounded queue, explicit backpressure,
//! panic containment and graceful drain.
//!
//! # Failure model
//!
//! A job-level panic is caught inside the worker and converted to a
//! retryable error response — the worker survives. A *worker-level*
//! panic (anything escaping the job boundary: a fault injected at
//! `pool.job`/`pool.spawn`, a poisoned dequeue, a bug in the loop
//! itself) kills the thread; the supervisor then
//!
//! 1. **quarantines** the in-flight job — its caller gets an explicit
//!    `quarantined` (retryable) response instead of a silent drop, and
//!    the job is *not* re-executed server-side in case it is the poison
//!    that killed the worker, and
//! 2. **respawns** a replacement worker into the same slot (with a small
//!    backoff against crash loops), so pool capacity never decays.
//!
//! On shutdown the pool stops accepting work (`Submit::ShuttingDown`),
//! queues one stop sentinel per worker *behind* outstanding jobs so
//! accepted work completes, joins every thread (dead or alive — no
//! leaked handles), and finally drains whatever still sits in the queue
//! with explicit `shutting_down` responses.
//!
//! # Injection points
//!
//! * `pool.spawn` — fires as a worker thread enters its loop; a panic
//!   here simulates a worker that dies on arrival (the supervisor keeps
//!   respawning until one survives).
//! * `pool.job` — fires after a job is dequeued but *outside* the
//!   job-level `catch_unwind`; any action kills the worker with the job
//!   in flight, exercising quarantine + respawn.

use crate::jobs;
use crate::json::Json;
use crate::protocol::{quarantined_response, retryable_err_response, shutting_down_response, Request};
use crate::state::ServeState;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xtalk_budget::{Budget, CancelToken};

/// A unit of work: the decoded request plus the channel the connection
/// thread is waiting on.
pub struct Job {
    /// The request to execute.
    pub request: Request,
    /// Where the response goes; the send is allowed to fail (the caller
    /// may have timed out and hung up).
    pub reply: mpsc::Sender<Json>,
    /// When the request was admitted; the gap to dequeue is the queue
    /// wait, recorded into the admission-control histogram.
    pub enqueued_at: Instant,
    /// Absolute deadline (arrival + `deadline_ms`), if the request
    /// carried one. Queue wait counts against it: the worker hands the
    /// job only the remainder.
    pub deadline: Option<Instant>,
    /// Cancel token a `cancel` request can trip while the job is queued
    /// or running.
    pub cancel: CancelToken,
}

impl Job {
    /// An unbudgeted job admitted now — the common case for light tests
    /// and requests without a deadline envelope.
    pub fn new(request: Request, reply: mpsc::Sender<Json>) -> Job {
        Job {
            request,
            reply,
            enqueued_at: Instant::now(),
            deadline: None,
            cancel: CancelToken::new(),
        }
    }
}

/// What flows through the queue: work, or a stop sentinel consumed by
/// exactly one worker during shutdown.
pub enum WorkItem {
    /// A request to execute.
    Job(Job),
    /// Terminate the receiving worker.
    Stop,
}

/// Lifecycle notifications from workers to the supervisor.
enum Event {
    /// The worker in this slot panicked out of its loop.
    Died(usize),
    /// The worker in this slot exited cleanly (stop sentinel).
    Stopped(usize),
}

/// A worker slot's currently-executing job: its kind and a clone of
/// its reply channel, reachable from the supervisor's quarantine path
/// when the worker dies mid-job.
type InflightSlot = Mutex<Option<(&'static str, mpsc::Sender<Json>)>>;

/// State shared between workers, the supervisor and submission handles.
struct Shared {
    rx: Mutex<Receiver<WorkItem>>,
    state: Arc<ServeState>,
    /// Per-worker-slot record of the job currently executing.
    inflight: Vec<InflightSlot>,
    /// Set once shutdown begins; gates submission and respawning.
    stopping: AtomicBool,
}

/// A fixed set of supervised worker threads pulling jobs from one
/// bounded channel.
pub struct Pool {
    tx: SyncSender<WorkItem>,
    shared: Arc<Shared>,
    supervisor: JoinHandle<()>,
}

impl Pool {
    /// Spawns `workers` threads with room for `queue_cap` waiting jobs,
    /// plus a supervisor that respawns workers that die.
    pub fn new(workers: usize, queue_cap: usize, state: Arc<ServeState>) -> Pool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<WorkItem>(queue_cap.max(1));
        let shared = Arc::new(Shared {
            rx: Mutex::new(rx),
            state,
            inflight: (0..workers).map(|_| Mutex::new(None)).collect(),
            stopping: AtomicBool::new(false),
        });
        let (events_tx, events_rx) = mpsc::channel::<Event>();
        let handles: Vec<Option<JoinHandle<()>>> = (0..workers)
            .map(|i| Some(spawn_worker(i, shared.clone(), events_tx.clone())))
            .collect();
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("xtalk-supervisor".to_string())
                .spawn(move || supervise(&shared, &events_rx, &events_tx, handles))
                .expect("spawn supervisor thread")
        };
        Pool { tx, shared, supervisor }
    }

    /// A submission handle for connection threads.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle { tx: self.tx.clone(), shared: self.shared.clone() }
    }

    /// Graceful drain: refuses new submissions, queues one `Stop` per
    /// worker *behind* any outstanding work (blocking on queue space) so
    /// accepted jobs still complete, joins every worker thread, and
    /// answers anything left in the queue with an explicit
    /// `shutting_down` response instead of dropping it.
    pub fn shutdown(self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for _ in 0..self.shared.inflight.len() {
            let _ = self.tx.send(WorkItem::Stop);
        }
        drop(self.tx);
        let _ = self.supervisor.join();
    }
}

/// A clonable submission handle that knows when the pool is draining.
#[derive(Clone)]
pub struct PoolHandle {
    tx: SyncSender<WorkItem>,
    shared: Arc<Shared>,
}

impl PoolHandle {
    /// Submits without blocking.
    pub fn try_submit(&self, job: Job) -> Submit {
        if self.shared.stopping.load(Ordering::SeqCst) {
            return Submit::ShuttingDown;
        }
        match self.tx.try_send(WorkItem::Job(job)) {
            Ok(()) => Submit::Accepted,
            Err(TrySendError::Full(_)) => Submit::Full,
            Err(TrySendError::Disconnected(_)) => Submit::ShuttingDown,
        }
    }
}

/// Outcome of a non-blocking submission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Submit {
    /// Job accepted into the queue.
    Accepted,
    /// Queue full — the caller should answer busy.
    Full,
    /// The pool is draining or gone — the caller should answer
    /// `shutting_down`.
    ShuttingDown,
}

fn spawn_worker(slot: usize, shared: Arc<Shared>, events: Sender<Event>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("xtalk-worker-{slot}"))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, slot)));
            match outcome {
                Ok(()) => {
                    let _ = events.send(Event::Stopped(slot));
                }
                Err(panic) => {
                    quarantine_inflight(&shared, slot, panic_text(&panic));
                    let _ = events.send(Event::Died(slot));
                }
            }
        })
        .expect("spawn worker thread")
}

/// Supervisor: joins dead workers, respawns them (unless the pool is
/// stopping), and drains the queue once every worker has exited.
fn supervise(
    shared: &Arc<Shared>,
    events_rx: &Receiver<Event>,
    events_tx: &Sender<Event>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    let mut alive = handles.len();
    let mut consecutive_deaths: u64 = 0;
    while alive > 0 {
        let Ok(event) = events_rx.recv() else { break };
        match event {
            Event::Stopped(slot) => {
                if let Some(h) = handles[slot].take() {
                    let _ = h.join();
                }
                alive -= 1;
            }
            Event::Died(slot) => {
                if let Some(h) = handles[slot].take() {
                    let _ = h.join();
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    // Its stop sentinel stays queued; the drain below
                    // discards it.
                    alive -= 1;
                    continue;
                }
                crate::metrics::Metrics::inc(&shared.state.metrics.workers_respawned);
                xtalk_obs::counter!("serve.pool.respawn");
                // Back off a little against crash loops (e.g. a
                // `pool.spawn` fault killing every replacement).
                consecutive_deaths += 1;
                if consecutive_deaths > 1 {
                    std::thread::sleep(Duration::from_millis(
                        (5 * consecutive_deaths).min(100),
                    ));
                }
                handles[slot] = Some(spawn_worker(slot, shared.clone(), events_tx.clone()));
            }
        }
    }
    drain_queue(shared);
}

/// Answers every job still queued after the workers exited with an
/// explicit `shutting_down` response, and discards leftover sentinels.
/// A short grace timeout covers submissions that raced the stopping
/// flag.
fn drain_queue(shared: &Shared) {
    let rx = shared.rx.lock().unwrap();
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(WorkItem::Job(job)) => {
                crate::metrics::Metrics::inc(&shared.state.metrics.jobs_drained);
                xtalk_obs::counter!("serve.pool.drained");
                // Reverse the submitter's `job_enqueued` gauge bump.
                shared.state.metrics.job_rejected();
                let _ = job.reply.send(shutting_down_response());
            }
            Ok(WorkItem::Stop) => {}
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    // A worker may be configured to die on arrival; the supervisor keeps
    // respawning until one survives.
    if let Some(msg) = xtalk_fault::fire("pool.spawn") {
        panic!("{msg}");
    }
    loop {
        // Hold the lock only for the dequeue, not the job.
        let job = match shared.rx.lock().unwrap().recv() {
            Ok(WorkItem::Job(job)) => job,
            Ok(WorkItem::Stop) | Err(_) => return,
        };
        // Record the job before anything fallible: if this worker dies
        // with the job in flight, the supervisor quarantines it.
        *shared.inflight[slot].lock().unwrap() =
            Some((job.request.kind(), job.reply.clone()));
        // Worker-killing fault: fires *outside* the job-level
        // catch_unwind, so any action takes the whole worker down.
        if let Some(msg) = xtalk_fault::fire("pool.job") {
            panic!("{msg}");
        }
        // Queue wait is over: record it (it feeds admission control) and
        // hand the job only the budget remainder. The deadline is
        // absolute, so the deduction is implicit; an already-expired job
        // still runs its handler, which sees a dead budget at its first
        // checkpoint and answers with a zero-progress partial.
        shared
            .state
            .metrics
            .queue_wait_recorded(job.enqueued_at.elapsed().as_micros() as u64);
        let budget = match job.deadline {
            Some(deadline) => Budget::with_deadline_at(deadline),
            None => Budget::unlimited(),
        }
        .with_cancel_token(job.cancel.clone());
        let start = Instant::now();
        let response = {
            // Per-job span: formats the path only when profiling is on.
            let _job_span = if xtalk_obs::enabled() {
                Some(xtalk_obs::span(&format!("serve.job.{}", job.request.kind())))
            } else {
                None
            };
            catch_unwind(AssertUnwindSafe(|| jobs::handle(&shared.state, &job.request, &budget)))
                .unwrap_or_else(|panic| {
                    // A panic under fault injection (or any other
                    // transient) may not recur: let the client retry.
                    retryable_err_response(format!(
                        "job panicked: {}",
                        panic_text(&panic)
                    ))
                })
        };
        if response.get("budget_exhausted").and_then(Json::as_bool) == Some(true) {
            crate::metrics::Metrics::inc(&shared.state.metrics.partial_results);
            xtalk_obs::counter!("serve.job.partial");
        }
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        shared.state.metrics.job_finished(start.elapsed().as_micros() as u64, ok);
        *shared.inflight[slot].lock().unwrap() = None;
        let _ = job.reply.send(response);
    }
}

/// Replies to (and clears) the job that was executing in `slot` when its
/// worker died.
fn quarantine_inflight(shared: &Shared, slot: usize, reason: &str) {
    if let Some((kind, reply)) = shared.inflight[slot].lock().unwrap().take() {
        crate::metrics::Metrics::inc(&shared.state.metrics.jobs_quarantined);
        xtalk_obs::counter!("serve.pool.quarantined");
        shared.state.metrics.job_finished(0, false);
        let _ = reply.send(quarantined_response(kind, reason));
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServeConfig;

    fn sleep_job(ms: u64, reply: mpsc::Sender<Json>) -> Job {
        Job::new(Request::Sleep { ms }, reply)
    }

    #[test]
    fn executes_jobs_and_counts_latency() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(2, 4, state.clone());
        let (tx, rx) = mpsc::channel();
        state.metrics.job_enqueued();
        assert_eq!(pool.handle().try_submit(sleep_job(1, tx)), Submit::Accepted);
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        pool.shutdown();
        assert_eq!(state.metrics.jobs_ok.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_reports_backpressure() {
        let state = ServeState::new(ServeConfig::default());
        // One worker, queue of one: the third submission must shed.
        let pool = Pool::new(1, 1, state.clone());
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        // Submit back-to-back until the bounded queue sheds: the worker
        // needs 200 ms per job, the submissions are instantaneous, so
        // only worker + queue slot (≈2) can be accepted.
        let mut accepted = 0;
        let mut shed = false;
        for _ in 0..10 {
            match handle.try_submit(sleep_job(200, tx.clone())) {
                Submit::Accepted => accepted += 1,
                Submit::Full => {
                    shed = true;
                    break;
                }
                Submit::ShuttingDown => panic!("pool is not shutting down"),
            }
        }
        assert!(shed, "bounded queue never filled after {accepted} accepts");
        assert!((1..=3).contains(&accepted), "accepted {accepted}");
        // Accepted jobs still complete.
        drop(tx);
        drop(handle);
        for _ in 0..accepted {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        }
        pool.shutdown();
    }

    #[test]
    fn panicking_job_yields_retryable_error_response() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(1, 2, state.clone());
        let (tx, rx) = mpsc::channel();
        state.metrics.job_enqueued();
        // `Stats` is a light request; handing it to the pool is a coding
        // error that `jobs::handle` turns into an error response (not a
        // panic) — exercise the error path end to end.
        assert_eq!(
            pool.handle().try_submit(Job::new(Request::Stats, tx)),
            Submit::Accepted
        );
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        pool.shutdown();
    }

    #[test]
    fn expired_deadline_yields_partial_and_worker_survives() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(1, 4, state.clone());
        let (tx, rx) = mpsc::channel();
        // Queue wait ate the whole budget: the handler sees a dead budget
        // at its first checkpoint and answers a zero-progress partial.
        state.metrics.job_enqueued();
        let mut job = Job::new(Request::Sleep { ms: 5_000 }, tx.clone());
        job.deadline = Some(Instant::now() - Duration::from_millis(1));
        assert_eq!(pool.handle().try_submit(job), Submit::Accepted);
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("slept_ms").and_then(Json::as_u64), Some(0));
        // The same worker slot takes the next job — no quarantine, no
        // respawn.
        state.metrics.job_enqueued();
        assert_eq!(pool.handle().try_submit(sleep_job(1, tx)), Submit::Accepted);
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("budget_exhausted"), None);
        pool.shutdown();
        let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        assert_eq!(load(&state.metrics.workers_respawned), 0);
        assert_eq!(load(&state.metrics.partial_results), 1);
        assert_eq!(load(&state.metrics.jobs_ok), 2, "partials still count as served");
        assert!(state.metrics.queue_wait_micros.count() >= 2);
    }

    #[test]
    fn queued_jobs_complete_during_shutdown() {
        // One worker, several queued jobs: shutdown's stop sentinel
        // queues *behind* them, so all of them complete (nothing is
        // silently dropped).
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(1, 8, state.clone());
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            state.metrics.job_enqueued();
            assert_eq!(handle.try_submit(sleep_job(30, tx.clone())), Submit::Accepted);
        }
        pool.shutdown();
        drop(tx);
        let mut ok = 0;
        while let Ok(resp) = rx.recv_timeout(Duration::from_secs(5)) {
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
            ok += 1;
        }
        assert_eq!(ok, 4, "every queued job must complete before shutdown");
        assert_eq!(state.metrics.jobs_drained.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn submissions_after_shutdown_get_shutting_down() {
        let state = ServeState::new(ServeConfig::default());
        let pool = Pool::new(1, 4, state.clone());
        let handle = pool.handle();
        pool.shutdown();
        let (tx, _rx) = mpsc::channel();
        assert_eq!(handle.try_submit(sleep_job(1, tx)), Submit::ShuttingDown);
    }
}
