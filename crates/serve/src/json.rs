//! Minimal JSON value, parser and writer.
//!
//! The workspace builds without crates.io access, so the wire format is
//! hand-rolled: a recursive-descent parser over UTF-8 text and a canonical
//! writer. Supported per RFC 8259: objects, arrays, strings (with escape
//! sequences including `\uXXXX` and surrogate pairs), numbers (stored as
//! `f64`), booleans and `null`. Object key order is preserved.

use std::fmt;

/// Parser nesting limit — a job request never needs deep structure, and a
/// bound keeps hostile input from overflowing the stack.
const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serializes to a single line (no embedded newlines, so a dumped
    /// value is always a valid line-delimited frame).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Field lookup on objects (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n)).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds an object from `(key, value)` pairs — the idiom for responses.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by
                    // construction — it came in as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("bad number `{text}`"), offset: start })
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-surprising mapping.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"s":"hi\nthere"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\nthere"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(2048.0).dump(), "2048");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""\u0041\u00e9 \"q\" \\ \u2603 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé \"q\" \\ ☃ 😀"));
        // Dump of a newline-bearing string stays on one line.
        assert!(!Json::Str("a\nb".into()).dump().contains('\n'));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}",
            "\"\\ud800x\"", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn obj_builder_and_froms() {
        let v = obj([("ok", true.into()), ("n", 3u64.into()), ("s", "x".into())]);
        assert_eq!(v.dump(), r#"{"ok":true,"n":3,"s":"x"}"#);
    }
}
