//! Job handlers: the worker-pool side of every heavy request.
//!
//! Scheduling jobs ride the degradation ladder of
//! [`ServeState::characterization`]: a failed characterization build
//! degrades first to a stale last-known-good entry (response flagged
//! `"degraded": "stale_characterization"`), then to an
//! independent-error-only model built from the live calibration with the
//! crosstalk-oblivious `par` scheduler forced
//! (`"degraded": "independent_fallback"`) — the service answers with a
//! valid, honestly-labelled schedule instead of an error.
//!
//! # Budgets
//!
//! Every handler receives the job's [`Budget`] (remaining deadline +
//! cancel token) and threads it into the budget-aware library layers:
//! `sleep` slices its wait into checked chunks, `schedule` and `run` go
//! through a budgeted [`Compiler`] whose anytime schedule/execute passes
//! feed the budget into the crosstalk search and the shot loop, and
//! `characterize` treats a truncated sweep as a failed build riding the
//! degradation ladder. Truncated jobs still answer `ok: true`, flagged
//! `"budget_exhausted": true` with provenance (`shots_completed`,
//! `leaves`, `slept_ms`) saying exactly how far they got.
//!
//! # Artifact sharing
//!
//! All compilers are built over the server's one content-addressed
//! artifact store ([`ServeState::cache`]'s underlying
//! [`xtalk_pass::ArtifactCache`]), keyed to the device's current
//! calibration epoch — so two jobs compiling the same source for the
//! same device share the lower/place/route prefix even across different
//! schedulers, and `advance_day` invalidates compile artifacts together
//! with characterizations.

use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::protocol::{err_response, Request};
use crate::state::{CharacSource, ServeState};
use std::sync::Arc;
use xtalk_budget::Budget;
use xtalk_charac::Characterization;
use xtalk_core::{
    Compiler, ParSched, Scheduler, SchedulerContext, ScheduledArtifact, SerialSched,
    XtalkSched, XtalkSchedReport,
};
use xtalk_device::Device;
use xtalk_ir::{qasm, Circuit};
use xtalk_pass::EpochToken;

/// Executes one heavy request to completion under the job's [`Budget`].
/// Light requests (`ping`, `stats`, `shutdown`, `advance_day`, `cancel`)
/// are answered on the connection thread and never reach this function.
pub fn handle(state: &ServeState, req: &Request, budget: &Budget) -> Json {
    match run(state, req, budget) {
        Ok(response) => response,
        Err(message) => {
            let mut resp = err_response(message);
            // A job that failed *because* its budget died (e.g. a
            // truncated characterization with the ladder exhausted) is
            // labelled so the caller can tell it from a bad request.
            if let (Some(reason), Json::Obj(pairs)) = (budget.exhausted(), &mut resp) {
                pairs.push(("budget_exhausted".to_string(), true.into()));
                pairs.push(("budget_reason".to_string(), reason.as_str().into()));
            }
            resp
        }
    }
}

/// Appends the `budget_exhausted` flag (plus the reason) when `truncated`
/// says the job stopped early.
fn annotate_budget(fields: &mut Vec<(String, Json)>, budget: &Budget, truncated: bool) {
    if !truncated {
        return;
    }
    fields.push(("budget_exhausted".to_string(), true.into()));
    if let Some(reason) = budget.exhausted() {
        fields.push(("budget_reason".to_string(), reason.as_str().into()));
    }
}

fn run(state: &ServeState, req: &Request, budget: &Budget) -> Result<Json, String> {
    match req {
        Request::Sleep { ms } => {
            // Sliced so a deadline or cancel lands within ~10 ms instead
            // of after the full wait; reports how far it actually got.
            let mut slept = 0u64;
            while slept < *ms && budget.exhausted().is_none() {
                let chunk = (*ms - slept).min(10);
                std::thread::sleep(std::time::Duration::from_millis(chunk));
                slept += chunk;
            }
            let mut fields = vec![
                ("slept_ms".to_string(), slept.into()),
                ("requested_ms".to_string(), (*ms).into()),
            ];
            annotate_budget(&mut fields, budget, slept < *ms);
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields);
            Ok(Json::Obj(pairs))
        }
        Request::Characterize { device, policy, seed, seqs, shots } => {
            let (entry, source) =
                state.characterization_budgeted(device, policy, *seed, *seqs, *shots, budget)?;
            let high: Vec<Json> = entry
                .charac
                .high_pairs(3.0)
                .into_iter()
                .map(|(a, b)| Json::Arr(vec![a.to_string().into(), b.to_string().into()]))
                .collect();
            let mut fields = vec![
                ("device".to_string(), Json::Str(device.clone())),
                ("policy".to_string(), Json::Str(policy.clone())),
                ("epoch".to_string(), state.epoch().into()),
                (
                    "cached".to_string(),
                    matches!(source, CharacSource::Fresh { cached: true }).into(),
                ),
                ("high_pairs".to_string(), Json::Arr(high)),
            ];
            if let CharacSource::StaleLkg { epoch, age } = source {
                fields.push(("degraded".to_string(), "stale_characterization".into()));
                fields.push(("charac_epoch".to_string(), epoch.into()));
                fields.push(("stale_epochs".to_string(), age.into()));
            }
            if let Some(report) = &entry.report {
                fields.push((
                    "report".to_string(),
                    obj([
                        ("experiments", report.num_experiments.into()),
                        ("pairs", report.num_pairs.into()),
                        ("executions", report.executions.into()),
                        ("machine_time_hours", Json::Num(report.machine_time_hours)),
                    ]),
                ));
            }
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields);
            Ok(Json::Obj(pairs))
        }
        Request::Schedule { device, qasm, scheduler, omega, policy, seed } => {
            let (dev, ctx, meta) = context_for(state, device, policy, *seed, budget)?;
            let (prep, budgeted) = compilers(state, &dev, &ctx, budget);
            let circuit = prepare_circuit(qasm, &prep)?;
            let (artifact, sched_name) =
                schedule_budget_aware(scheduler, *omega, &meta, &circuit, &budgeted)?;
            let sched = &artifact.sched;
            let mut fields = vec![
                ("device".to_string(), dev.name().into()),
                ("scheduler".to_string(), sched_name.into()),
                ("makespan_ns".to_string(), sched.makespan().into()),
                ("instructions".to_string(), sched.circuit().len().into()),
                ("cached".to_string(), meta.cached.into()),
                ("epoch".to_string(), state.epoch().into()),
            ];
            let truncated = annotate_search(&mut fields, &artifact.report);
            annotate_budget(&mut fields, budget, truncated);
            meta.annotate(&mut fields);
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields);
            Ok(Json::Obj(pairs))
        }
        Request::Run { device, qasm, scheduler, omega, policy, shots, seed, threads } => {
            let (dev, ctx, meta) = context_for(state, device, policy, *seed, budget)?;
            let (prep, budgeted) = compilers(state, &dev, &ctx, budget);
            let circuit = prepare_circuit(qasm, &prep)?;
            let (artifact, sched_name) =
                schedule_budget_aware(scheduler, *omega, &meta, &circuit, &budgeted)?;
            let sched = &artifact.sched;
            let outcome =
                budgeted.run(sched, *shots, *seed, *threads).map_err(|e| e.to_string())?;
            let counts = &outcome.counts;
            let mut entries: Vec<(u64, u64)> = counts.iter().collect();
            entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let counts_obj = Json::Obj(
                entries
                    .into_iter()
                    .map(|(outcome, n)| {
                        (format!("{outcome:0width$b}", width = counts.num_bits()), n.into())
                    })
                    .collect(),
            );
            let mut fields = vec![
                ("device".to_string(), dev.name().into()),
                ("scheduler".to_string(), sched_name.into()),
                ("makespan_ns".to_string(), sched.makespan().into()),
                ("shots".to_string(), counts.shots().into()),
                ("shots_requested".to_string(), outcome.shots_requested.into()),
                ("shots_completed".to_string(), outcome.shots_completed.into()),
                ("cached".to_string(), meta.cached.into()),
                ("counts".to_string(), counts_obj),
            ];
            let search_truncated = annotate_search(&mut fields, &artifact.report);
            annotate_budget(&mut fields, budget, search_truncated || !outcome.complete);
            meta.annotate(&mut fields);
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields);
            Ok(Json::Obj(pairs))
        }
        Request::SwapDemo { device, from, to, shots, seed } => {
            let (dev, ctx, _meta) = context_for(state, device, "truth", *seed, budget)?;
            let (prep, _) = compilers(state, &dev, &ctx, budget);
            let schedulers: Vec<Box<dyn Scheduler>> = vec![
                Box::new(SerialSched::new()),
                Box::new(ParSched::new()),
                Box::new(XtalkSched::new(0.5)),
            ];
            // Budget checkpoint between schedulers: each leg is a full
            // tomography run, so a partial demo returns the legs it
            // finished instead of nothing. One shared compiler means the
            // tomography circuits' prefix artifacts are reused per leg.
            let mut rows = Vec::new();
            for s in &schedulers {
                if budget.exhausted().is_some() {
                    break;
                }
                let out = prep
                    .swap_bell_error(s.as_ref(), *from, *to, *shots, *seed, 1)
                    .map_err(|e| e.to_string())?;
                rows.push(obj([
                    ("scheduler", s.name().into()),
                    ("error_rate", Json::Num(out.error_rate)),
                    ("duration_ns", out.duration_ns.into()),
                ]));
            }
            let truncated = rows.len() < schedulers.len();
            let mut fields = vec![
                ("device".to_string(), dev.name().into()),
                ("from".to_string(), (*from).into()),
                ("to".to_string(), (*to).into()),
                ("results".to_string(), Json::Arr(rows)),
            ];
            annotate_budget(&mut fields, budget, truncated);
            let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
            pairs.extend(fields);
            Ok(Json::Obj(pairs))
        }
        light => Err(format!("`{}` is not a pooled job", light.kind())),
    }
}

/// Appends search provenance (`leaves`, `search_complete`, `fallback`)
/// when the crosstalk search ran; returns `true` if it was truncated.
fn annotate_search(fields: &mut Vec<(String, Json)>, report: &Option<XtalkSchedReport>) -> bool {
    let Some(report) = report else { return false };
    fields.push(("leaves".to_string(), report.leaves.into()));
    fields.push(("search_complete".to_string(), report.complete.into()));
    if report.fallback {
        fields.push(("fallback".to_string(), true.into()));
    }
    !report.complete
}

/// How the scheduler context for a job was obtained.
pub struct ContextMeta {
    /// Characterization cache hit.
    pub cached: bool,
    /// `None` on the happy path; the degradation label otherwise
    /// (`"stale_characterization"` or `"independent_fallback"`).
    pub degraded: Option<&'static str>,
    /// For stale fallbacks, the epoch the tables were built for.
    pub charac_epoch: Option<u64>,
    /// Rung 3: the context has no conditional terms, so the
    /// crosstalk-aware scheduler must be replaced by `par`.
    pub force_par: bool,
}

impl ContextMeta {
    /// Appends the degradation fields to a response under construction.
    fn annotate(&self, fields: &mut Vec<(String, Json)>) {
        if let Some(label) = self.degraded {
            fields.push(("degraded".to_string(), label.into()));
        }
        if let Some(epoch) = self.charac_epoch {
            fields.push(("charac_epoch".to_string(), epoch.into()));
        }
    }
}

/// Builds the device snapshot plus a scheduler context fed from the
/// characterization cache, riding the degradation ladder: a failed build
/// yields a stale last-known-good context when one exists, else an
/// independent-error-only context with the `par` scheduler forced.
fn context_for(
    state: &ServeState,
    device: &str,
    policy: &str,
    seed: u64,
    budget: &Budget,
) -> Result<(Device, SchedulerContext, ContextMeta), String> {
    let dev = state.device(device)?;
    if !matches!(policy, "truth" | "all" | "onehop" | "binpacked") {
        return Err(format!("unknown policy `{policy}`"));
    }
    match state.characterization_budgeted(device, policy, seed, 3, 96, budget) {
        Ok((entry, source)) => {
            let ctx = SchedulerContext::new(&dev, entry.charac.clone());
            let meta = match source {
                CharacSource::Fresh { cached } => ContextMeta {
                    cached,
                    degraded: None,
                    charac_epoch: None,
                    force_par: false,
                },
                CharacSource::StaleLkg { epoch, .. } => ContextMeta {
                    cached: false,
                    degraded: Some("stale_characterization"),
                    charac_epoch: Some(epoch),
                    force_par: false,
                },
            };
            Ok((dev, ctx, meta))
        }
        Err(_) => {
            // Rung 3: parameters are known-good (device and policy were
            // validated above), so this is a build failure with no usable
            // last-known-good. Degrade to the independent rates the daily
            // calibration always provides — no conditional terms — and
            // force the scheduler that never consults them.
            Metrics::inc(&state.metrics.degraded_independent);
            xtalk_obs::counter!("serve.charac.independent_fallback");
            let mut charac = Characterization::new();
            for &e in dev.topology().edges() {
                charac.set_independent(e, dev.calibration().cx_error(e));
            }
            let ctx = SchedulerContext::new(&dev, charac);
            let meta = ContextMeta {
                cached: false,
                degraded: Some("independent_fallback"),
                charac_epoch: None,
                force_par: true,
            };
            Ok((dev, ctx, meta))
        }
    }
}

/// The two compilers a job runs through, both over the server's shared
/// artifact store keyed to the device's current calibration epoch: an
/// *unbudgeted* one for preparation (lower/place/route always complete,
/// so even a cancelled job has a valid circuit to answer honestly about)
/// and a *budgeted* one whose anytime schedule/execute passes thread the
/// job's [`Budget`] into the crosstalk search and the shot loop.
fn compilers<'d>(
    state: &ServeState,
    dev: &'d Device,
    ctx: &SchedulerContext,
    budget: &Budget,
) -> (Compiler<'d>, Compiler<'d>) {
    let epoch = EpochToken::new(dev.name(), state.epoch());
    let artifacts = Arc::clone(state.cache.artifacts());
    let prep =
        Compiler::with_cache(dev, ctx.clone(), Arc::clone(&artifacts), epoch.clone());
    let budgeted = Compiler::with_cache(dev, ctx.clone(), artifacts, epoch)
        .with_budget(budget.clone());
    (prep, budgeted)
}

/// Schedules with the scheduler a job actually runs with: the requested
/// one, unless the context degraded to rung 3 (no conditional terms), in
/// which case the crosstalk-oblivious `par` replaces it. The requested
/// name is still validated so a typo fails loudly rather than being
/// masked by the degradation. Scheduling goes through the budgeted
/// [`Compiler`], so the crosstalk scheduler's anytime search sees the
/// job's budget (and its report rides along in the artifact), while
/// complete schedules land in the shared artifact cache.
fn schedule_budget_aware(
    name: &str,
    omega: f64,
    meta: &ContextMeta,
    circuit: &Circuit,
    compiler: &Compiler<'_>,
) -> Result<(Arc<ScheduledArtifact>, String), String> {
    let requested = scheduler_by_name(name, omega)?;
    let actual: Box<dyn Scheduler> =
        if meta.force_par { Box::new(ParSched::new()) } else { requested };
    let artifact = compiler.schedule(circuit, actual.as_ref()).map_err(|e| e.to_string())?;
    Ok((artifact, actual.name().to_string()))
}

/// Names a scheduler the same way the CLI does.
pub fn scheduler_by_name(name: &str, omega: f64) -> Result<Box<dyn Scheduler>, String> {
    if !(0.0..=1.0).contains(&omega) {
        return Err(format!("omega must be in [0,1], got {omega}"));
    }
    Ok(match name {
        "xtalk" => Box::new(XtalkSched::new(omega)),
        "par" => Box::new(ParSched::new()),
        "serial" => Box::new(SerialSched::new()),
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

/// Parses QASM and makes it hardware-compliant for the compiler's
/// device: the shared lower → place → route prefix of the pass pipeline
/// (cached in the compiler's artifact store, so repeat jobs and sibling
/// schedulers skip it). This is the same preparation the `xtalk run` CLI
/// applies, so a served job and a local run of the same source produce
/// the same scheduled circuit.
pub fn prepare_circuit(source: &str, compiler: &Compiler<'_>) -> Result<Circuit, String> {
    let circuit = qasm::parse(source).map_err(|e| format!("qasm: {e}"))?;
    let routed = compiler.prepare(&circuit).map_err(|e| e.to_string())?;
    Ok(routed.circuit.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ServeConfig, ServeState};

    const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";

    fn handle(state: &ServeState, req: &Request) -> Json {
        super::handle(state, req, &Budget::unlimited())
    }

    fn cancelled_budget() -> Budget {
        let b = Budget::unlimited();
        b.cancel_token().cancel();
        b
    }

    #[test]
    fn run_job_returns_counts() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Run {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "par".into(),
            omega: 0.5,
            policy: "truth".into(),
            shots: 128,
            seed: 3,
            threads: 1,
        };
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("shots").and_then(Json::as_u64), Some(128));
        let counts = resp.get("counts").unwrap();
        let total: u64 = match counts {
            Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
            _ => panic!("counts must be an object"),
        };
        assert_eq!(total, 128);
    }

    #[test]
    fn schedule_job_reports_makespan_and_cache() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Schedule {
            device: "boeblingen".into(),
            qasm: BELL.into(),
            scheduler: "xtalk".into(),
            omega: 0.5,
            policy: "truth".into(),
            seed: 3,
        };
        let first = handle(&state, &req);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        assert!(first.get("makespan_ns").and_then(Json::as_u64).unwrap() > 0);
        let second = handle(&state, &req);
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn bad_inputs_produce_error_responses() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Run {
            device: "poughkeepsie".into(),
            qasm: "this is not qasm".into(),
            scheduler: "par".into(),
            omega: 0.5,
            policy: "truth".into(),
            shots: 8,
            seed: 3,
            threads: 1,
        };
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert!(resp.get("error").and_then(Json::as_str).unwrap().contains("qasm"));
        assert!(scheduler_by_name("quantum-leap", 0.5).is_err());
        assert!(scheduler_by_name("xtalk", 1.5).is_err());
    }

    #[test]
    fn charac_failure_degrades_to_independent_par_schedule() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        // No last-known-good exists, so a total characterization failure
        // must ride rung 3: independent-only context, `par` forced.
        xtalk_fault::install_spec("charac.run:err:1.0", 5).unwrap();
        let req = Request::Schedule {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "xtalk".into(),
            omega: 0.5,
            policy: "truth".into(),
            seed: 11,
        };
        let resp = handle(&state, &req);
        xtalk_fault::clear();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        assert_eq!(resp.get("degraded").and_then(Json::as_str), Some("independent_fallback"));
        assert_eq!(resp.get("scheduler").and_then(Json::as_str), Some("ParSched"));
        assert!(resp.get("makespan_ns").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(
            state.metrics.degraded_independent.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // A bad scheduler name still fails loudly even while degraded.
        let bad = Request::Schedule {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "quantum-leap".into(),
            omega: 0.5,
            policy: "truth".into(),
            seed: 11,
        };
        let resp = handle(&state, &bad);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn cancelled_run_returns_flagged_empty_partial() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Run {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "par".into(),
            omega: 0.5,
            policy: "truth".into(),
            shots: 128,
            seed: 3,
            threads: 1,
        };
        let resp = super::handle(&state, &req, &cancelled_budget());
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("budget_reason").and_then(Json::as_str), Some("cancelled"));
        assert_eq!(resp.get("shots_completed").and_then(Json::as_u64), Some(0));
        assert_eq!(resp.get("shots_requested").and_then(Json::as_u64), Some(128));
        assert_eq!(resp.get("shots").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn complete_run_reports_full_provenance_without_flag() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Run {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "xtalk".into(),
            omega: 0.5,
            policy: "truth".into(),
            shots: 128,
            seed: 3,
            threads: 1,
        };
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        assert_eq!(resp.get("budget_exhausted"), None);
        assert_eq!(resp.get("shots_completed").and_then(Json::as_u64), Some(128));
        assert_eq!(resp.get("search_complete").and_then(Json::as_bool), Some(true));
        assert!(resp.get("leaves").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn cancelled_sleep_reports_progress() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let resp =
            super::handle(&state, &Request::Sleep { ms: 60_000 }, &cancelled_budget());
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("slept_ms").and_then(Json::as_u64), Some(0));
        assert_eq!(resp.get("requested_ms").and_then(Json::as_u64), Some(60_000));
    }

    #[test]
    fn cancelled_xtalk_schedule_falls_back_and_is_flagged() {
        let _gate = crate::testutil::fault_gate();
        let state = ServeState::new(ServeConfig::default());
        let req = Request::Schedule {
            device: "poughkeepsie".into(),
            qasm: BELL.into(),
            scheduler: "xtalk".into(),
            omega: 0.5,
            policy: "truth".into(),
            seed: 3,
        };
        let resp = super::handle(&state, &req, &cancelled_budget());
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{}", resp.dump());
        assert_eq!(resp.get("budget_exhausted").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("search_complete").and_then(Json::as_bool), Some(false));
        assert!(resp.get("makespan_ns").and_then(Json::as_u64).unwrap() > 0);
    }
}
